#!/usr/bin/env python3
"""Serial vs. parallel wall-clock scaling of the compression pipeline.

For each workload the script encodes the network once, runs the pipeline
with the serial executor, then with a worker pool, checks that the two runs
produce bit-identical per-class output, and reports the wall-clock speedup.
The JSON report is uploaded as a CI artifact so the performance trajectory
can be tracked across PRs.

Run directly (pytest is not involved)::

    PYTHONPATH=src python benchmarks/bench_pipeline_scaling.py \
        --workers 4 --out pipeline_scaling.json

``--quick`` shrinks every workload for smoke runs.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Dict, List, Optional

from repro.netgen.families import TOPOLOGY_FAMILIES, build_topology
from repro.pipeline.core import CompressionPipeline
from repro.pipeline.encoded import EncodedNetwork

#: (family, size, quick_size) benchmark workloads.
WORKLOADS = [
    ("fattree", 8, 4),
    ("mesh", 16, 8),
    ("wan", 6, 3),
]


def bench_workload(
    family: str,
    size: int,
    workers: int,
    executor: str,
    batch_size: Optional[int],
    repeat: int,
) -> Dict:
    network = build_topology(family, size)
    artifact = EncodedNetwork.build(network)
    # Freeze the one-time artifact once: every timed run below unpickles a
    # fresh copy, so no arm benefits from caches warmed by an earlier arm
    # (the encoder's specialize cache and BDD store are mutable).
    payload = artifact.to_bytes()

    def timed(run_executor: str, run_workers: int) -> Dict:
        best = None
        canonical = None
        for _ in range(repeat):
            pipeline = CompressionPipeline(
                artifact=EncodedNetwork.from_bytes(payload),
                executor=run_executor,
                workers=run_workers,
                batch_size=batch_size,
            )
            start = time.perf_counter()
            run = pipeline.run()
            elapsed = time.perf_counter() - start
            if best is None or elapsed < best:
                best = elapsed
                canonical = run.report.canonical_records()
        return {"seconds": best, "canonical": canonical}

    serial = timed("serial", 1)
    parallel = timed(executor, workers)
    speedup = serial["seconds"] / parallel["seconds"] if parallel["seconds"] else None
    return {
        "family": family,
        "size": size,
        "devices": network.graph.num_nodes(),
        "classes": len(artifact.classes),
        "encode_seconds": artifact.encode_seconds,
        "executor": executor,
        "workers": workers,
        "serial_seconds": serial["seconds"],
        "parallel_seconds": parallel["seconds"],
        "speedup": speedup,
        "identical": serial["canonical"] == parallel["canonical"],
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--topos",
        default=",".join(family for family, _, _ in WORKLOADS),
        help="comma-separated topology families to run",
    )
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--executor", choices=("process", "thread"), default="process")
    parser.add_argument("--batch-size", type=int, default=None)
    parser.add_argument("--repeat", type=int, default=1, help="keep the best of N runs")
    parser.add_argument("--quick", action="store_true", help="shrink every workload")
    parser.add_argument("--out", default=None, help="write the JSON report here")
    args = parser.parse_args(argv)

    requested = [name.strip() for name in args.topos.split(",") if name.strip()]
    unknown = [name for name in requested if name not in TOPOLOGY_FAMILIES]
    if unknown:
        print(f"unknown topology families: {', '.join(unknown)}", file=sys.stderr)
        return 2

    results = []
    for family, size, quick_size in WORKLOADS:
        if family not in requested:
            continue
        result = bench_workload(
            family,
            quick_size if args.quick else size,
            workers=args.workers,
            executor=args.executor,
            batch_size=args.batch_size,
            repeat=args.repeat,
        )
        results.append(result)
        print(
            f"{result['family']}({result['size']}): "
            f"{result['devices']} devices, {result['classes']} classes | "
            f"serial {result['serial_seconds']:.3f}s, "
            f"{result['executor']}x{result['workers']} "
            f"{result['parallel_seconds']:.3f}s | "
            f"speedup {result['speedup']:.2f}x | "
            f"identical: {result['identical']}"
        )

    report = {
        "benchmark": "pipeline_scaling",
        "version": 1,
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
        "workers": args.workers,
        "executor": args.executor,
        "quick": args.quick,
        "results": results,
    }
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"report written to {args.out}")

    if not all(result["identical"] for result in results):
        print("FAIL: parallel output differs from serial output", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
