"""Figure 12: all-pairs reachability verification time, with vs without Bonsai.

The paper runs Minesweeper on an all-pairs reachability query for growing
Fattree, Full Mesh and Ring topologies, with a 10-minute timeout, and shows
that verifying the Bonsai-compressed network (including the time to
partition, build BDDs and compress) is orders of magnitude faster and keeps
scaling after the concrete verification times out.

The verifier here is the explicit-state substitute described in DESIGN.md;
absolute times differ from SMT but the comparison (abstract ≪ concrete, gap
widening with size) is the figure's point.  Sizes are reduced by default;
``REPRO_BENCH_FULL=1`` enables larger sweeps.
"""

import pytest

from conftest import full_scale, record_row
from repro import fattree_network, full_mesh_network, ring_network
from repro.analysis import verify_all_pairs_reachability, verify_with_abstraction

FIGURE = "Figure 12: all-pairs reachability verification time"

#: Per-run timeout (the paper used 600 s; scaled down for the substitute).
TIMEOUT_SECONDS = 120.0


def _sizes():
    if full_scale():
        return {
            "fattree": [4, 6, 8, 10, 12],
            "mesh": [10, 20, 40, 60],
            "ring": [10, 20, 40, 80],
        }
    return {"fattree": [4, 6, 8], "mesh": [10, 20, 30], "ring": [10, 20, 40]}


def _build(family, size):
    if family == "fattree":
        return fattree_network(size)
    if family == "mesh":
        return full_mesh_network(size)
    return ring_network(size)


@pytest.mark.parametrize("family", ["fattree", "mesh", "ring"])
def test_fig12_verification_speedup(benchmark, family):
    sizes = _sizes()[family]
    rows = []

    def run():
        measurements = []
        for size in sizes:
            network = _build(family, size)
            concrete = verify_all_pairs_reachability(
                network, timeout_seconds=TIMEOUT_SECONDS
            )
            abstract = verify_with_abstraction(
                network, timeout_seconds=TIMEOUT_SECONDS
            )
            measurements.append((size, network.graph.num_nodes(), concrete, abstract))
        return measurements

    measurements = benchmark.pedantic(run, rounds=1, iterations=1)

    for size, nodes, concrete, abstract in measurements:
        concrete_time = "timeout" if concrete.timed_out else f"{concrete.seconds:7.2f}s"
        abstract_time = "timeout" if abstract.timed_out else f"{abstract.total_seconds:7.2f}s"
        speedup = (
            concrete.seconds / max(abstract.total_seconds, 1e-9)
            if not concrete.timed_out and not abstract.timed_out
            else float("inf")
        )
        rows.append(
            f"{family:>8} n={nodes:<5} concrete {concrete_time:>9}  "
            f"with-Bonsai {abstract_time:>9}  speedup {speedup:6.1f}x"
        )
        benchmark.extra_info[f"{family}_{nodes}"] = {
            "concrete_s": round(concrete.seconds, 3),
            "abstract_s": round(abstract.total_seconds, 3),
            "concrete_timeout": concrete.timed_out,
            "abstract_timeout": abstract.timed_out,
        }
        # Soundness: both sides agree that everything is reachable.
        if not concrete.timed_out and not abstract.timed_out:
            assert concrete.unreachable_pairs == 0
            assert abstract.unreachable_pairs == 0

    for row in rows:
        record_row(FIGURE, row)

    # Shape: at the largest size the compressed verification is faster.
    # Rings are excluded from the assertion: they compress only ~2x, and
    # with the explicit-state verifier substitute (whose per-class cost is
    # near-linear in network size, unlike Minesweeper's SMT cost) the
    # compression overhead roughly cancels the 2x saving, so the paper's
    # ring crossover needs the super-linear backend to materialise.  The
    # measured times are still reported above for comparison.
    largest = measurements[-1]
    _, _, concrete, abstract = largest
    if not concrete.timed_out and family != "ring":
        assert abstract.total_seconds < concrete.seconds
