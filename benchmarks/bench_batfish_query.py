"""§8's Batfish experiment: one reachability query, with and without Bonsai.

The paper runs a single device-to-device reachability query in Batfish on
the operational datacenter: with Bonsai the query takes 77 seconds, without
it Batfish runs out of memory after more than an hour.  Here the query runs
against the synthetic datacenter substitute with the explicit-state
simulation backend; the expected shape is simply that the query on the
compressed network (including compression time) is not slower than on the
concrete network, with the gap growing with network size.
"""


from conftest import full_scale, record_row
from repro import datacenter_network
from repro.abstraction import routable_equivalence_classes
from repro.analysis import single_reachability_query

FIGURE = "Section 8: single reachability query (Batfish-style)"


def test_single_query_with_and_without_bonsai(benchmark):
    network = datacenter_network() if full_scale() else datacenter_network()
    destination = routable_equivalence_classes(network)[0].prefix
    source = "core0"

    def run():
        plain, plain_seconds = single_reachability_query(
            network, source, destination, use_abstraction=False
        )
        compressed, compressed_seconds = single_reachability_query(
            network, source, destination, use_abstraction=True
        )
        return plain, plain_seconds, compressed, compressed_seconds

    plain, plain_seconds, compressed, compressed_seconds = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    record_row(
        FIGURE,
        f"datacenter ({network.graph.num_nodes()} nodes), {source} -> {destination}: "
        f"concrete {plain_seconds:6.3f}s, with Bonsai {compressed_seconds:6.3f}s "
        f"(answers agree: {plain == compressed})",
    )
    benchmark.extra_info.update(
        {"concrete_s": plain_seconds, "with_bonsai_s": compressed_seconds}
    )
    assert plain == compressed is True
