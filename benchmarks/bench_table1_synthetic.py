"""Table 1(a): compression of synthetic networks (Fattree, Ring, Full Mesh).

For each topology family and size the paper reports the concrete and
abstract node/edge counts, the compression ratios, the number of
destination equivalence classes, the time to build the BDDs, and the
per-class compression time.  This harness regenerates every row.

The paper's sizes (Fattree 180/500/1125, Ring 100/500/1000, Mesh
50/150/250) are all enabled by default except the two largest, which are
gated behind ``REPRO_BENCH_FULL=1`` so the default run stays quick.

Expected shape (matching the paper):

* Fattree and Full Mesh compress to a constant-size abstraction (6 nodes /
  5 edges and 2 nodes / 1 edge) regardless of concrete size;
* Ring compresses by roughly 2x, growing with the diameter;
* compression time per class grows with topology size and is largest for
  the densest topology (Full Mesh).
"""

import pytest

from conftest import full_scale, record_row
from repro import Bonsai, fattree_network, full_mesh_network, ring_network

TABLE = "Table 1(a): synthetic networks"

#: (label, builder, sample classes, heavy)
CASES = [
    ("fattree-180", lambda: fattree_network(12), 3, False),
    ("fattree-500", lambda: fattree_network(20), 2, False),
    ("fattree-1125", lambda: fattree_network(30), 1, True),
    ("ring-100", lambda: ring_network(100), 3, False),
    ("ring-500", lambda: ring_network(500), 2, False),
    ("ring-1000", lambda: ring_network(1000), 1, True),
    ("mesh-50", lambda: full_mesh_network(50), 3, False),
    ("mesh-150", lambda: full_mesh_network(150), 2, False),
    ("mesh-250", lambda: full_mesh_network(250), 1, True),
]


@pytest.mark.parametrize("label,builder,sample,heavy", CASES, ids=[c[0] for c in CASES])
def test_table1_synthetic_compression(benchmark, label, builder, sample, heavy):
    if heavy and not full_scale():
        pytest.skip("paper-scale instance; set REPRO_BENCH_FULL=1 to run")
    network = builder()
    bonsai = Bonsai(network)
    classes = bonsai.equivalence_classes()[:sample]

    def run():
        return [bonsai.compress(ec, build_network=False) for ec in classes]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    summary = bonsai.summarize(results, name=label)
    row = summary.as_row()
    benchmark.extra_info.update(row)

    record_row(
        TABLE,
        f"{label:>13}: {row['nodes']:>5} / {row['edges']:>6} -> "
        f"{row['abs_nodes']:>6} / {row['abs_edges']:>6}  "
        f"ratio {row['node_ratio']:>7}x / {row['edge_ratio']:>8}x  "
        f"ECs {row['num_ecs']:>4}  BDD {row['bdd_time_s']:>6}s  "
        f"per-EC {row['compression_time_per_ec_s']:>7}s",
    )

    # Shape assertions from the paper.
    if label.startswith("fattree"):
        assert row["abs_nodes"] == 6 and row["abs_edges"] == 5
    elif label.startswith("mesh"):
        assert row["abs_nodes"] == 2 and row["abs_edges"] == 1
    elif label.startswith("ring"):
        size = network.graph.num_nodes()
        assert row["abs_nodes"] == size // 2 + 1
        assert 1.9 <= row["node_ratio"] <= 2.1
