"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
(§8).  Benchmarks report their numbers two ways:

* through ``benchmark.extra_info`` (visible with ``--benchmark-verbose`` or
  in saved benchmark JSON), and
* as a printed row, collected per table and echoed at the end of the run so
  that ``pytest benchmarks/ --benchmark-only -s`` produces the paper-style
  tables directly.

Set ``REPRO_BENCH_FULL=1`` to run the largest (paper-scale) instances; the
default keeps every instance at a size that finishes in seconds.
"""

from __future__ import annotations

import os
from collections import defaultdict
from typing import Dict, List

import pytest

#: Rows accumulated by the benchmarks, keyed by table/figure name.
_REPORT: Dict[str, List[str]] = defaultdict(list)


def full_scale() -> bool:
    """Whether to run paper-scale instances (opt-in via REPRO_BENCH_FULL=1)."""
    return os.environ.get("REPRO_BENCH_FULL", "0") not in ("", "0", "false")


def record_row(table: str, row: str) -> None:
    """Record one formatted row for the end-of-run report."""
    _REPORT[table].append(row)


@pytest.fixture
def report_row():
    return record_row


def pytest_terminal_summary(terminalreporter, exitstatus, config):  # noqa: D401
    """Print the collected paper-style tables after the benchmark run."""
    if not _REPORT:
        return
    terminalreporter.write_sep("=", "paper-style results")
    for table in sorted(_REPORT):
        terminalreporter.write_line("")
        terminalreporter.write_line(f"--- {table} ---")
        for row in _REPORT[table]:
            terminalreporter.write_line(row)
