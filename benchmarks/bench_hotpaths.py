#!/usr/bin/env python
"""Hot-path benchmark: per-stage wall-clock for the compression pipeline.

This benchmark times the four single-core hot paths of the system --
SRP solving, BDD operations, abstraction refinement, and the end-to-end
per-class pipeline (compress + differential verify) -- and writes a JSON
report that CI regresses against (``BENCH_pr3.json``).

Stages
------
* ``srp_solve``      -- control-plane simulation (``srp.solver.solve``)
  over every destination equivalence class of each family network;
* ``bdd_ops``        -- a BDD micro-workload (conjunction chains, xor
  ladders, restrict/exists) on a dedicated manager;
* ``bdd_backend``    -- the same micro-workload on the array-backed
  manager (``repro.bdd.arrays``); the report additionally records
  ``bdd_backend_speedup``, the dict/array wall-clock ratio, which
  ``--min-bdd-speedup`` gates in CI.  Always run at the full workload
  size: the comparison is size-sensitive (the dict manager's naive
  folds are O(n^2)) and the array arm is cheap enough for quick mode;
* ``refinement``     -- ``compute_abstraction`` over every class with
  policy keys prepared outside the timed region;
* ``compress``       -- the serial :class:`CompressionPipeline` end to end;
* ``verify``         -- the serial :class:`BatchVerifier` end to end;
* ``pipeline``       -- compress + verify (the acceptance metric);
* ``failure_sweep``  -- single-link :class:`FailureSweep` runs (incremental
  re-solve vs the scratch oracle); the report additionally records
  ``failure_incremental_speedup``, the scratch/incremental wall-clock
  ratio on the fat-tree sweep.
* ``obs_overhead``   -- the ``srp_solve`` workload timed twice, metrics
  registry enabled (the default) vs disabled; the report records
  ``obs_overhead_ratio`` (enabled/disabled wall clock), which
  ``--max-obs-overhead`` gates in CI -- instrumentation must stay
  within a few percent of the uninstrumented hot path;
* ``delta_sweep``    -- single-change :class:`DeltaSweep` runs (a
  compression-invariant change plus a route-map tightening on a
  fat-tree); the report additionally records
  ``delta_incremental_speedup``, the full-rebuild/incremental
  wall-clock ratio of the invariant-change sweep, and the run fails if
  that sweep re-compresses any class (abstraction reuse is the point).

Every stage is run ``--repeat`` times and the *minimum* is reported, so
scheduler noise cannot manufacture a regression.

Usage
-----
Run the full benchmark and write the report::

    python benchmarks/bench_hotpaths.py --out bench_hotpaths.json

CI quick mode with the regression gate (exit 1 when any stage is more
than 25% slower than the committed baseline's ``after`` numbers)::

    python benchmarks/bench_hotpaths.py --quick \
        --baseline BENCH_pr3.json --max-regression 0.25

Correctness cross-check (also run in CI): the optimized solver and
refinement are compared against their reference oracles on every family
and the verify report's soundness oracle must hold::

    python benchmarks/bench_hotpaths.py --quick --check
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional

from repro.abstraction.refinement import compute_abstraction
from repro.analysis.batch import BatchVerifier
from repro.bdd import make_manager
from repro.bdd.manager import FALSE, BddManager
from repro.config.transfer import build_srp_from_network
from repro.failures import FailureSweep
from repro.netgen.families import build_topology
from repro.pipeline.core import CompressionPipeline
from repro.srp import solver as srp_solver

#: (family, size) pairs per mode.  The fat-tree family carries the
#: acceptance criterion (>=3x on compress+verify); the ring is the
#: worst case for sweep-style solvers (diameter ~ n/2).
FULL_WORKLOADS = [
    ("fattree", 4),
    ("fattree", 6),
    ("fattree", 8),
    ("ring", 16),
    ("mesh", 8),
    ("datacenter", 2),
    ("wan", 2),
]
QUICK_WORKLOADS = [
    ("fattree", 4),
    ("ring", 12),
]

#: BDD micro-workload size per mode.
FULL_BDD_VARS = 600
QUICK_BDD_VARS = 200

#: The backend comparison always runs one fixed, larger-than-full
#: workload, in quick mode too: the dict manager's naive conjoin /
#: disjoin folds are O(n^2) in the chain length, so the ratio is
#: size-sensitive and only representative at policy-chain scale.  The
#: array arm is ~0.2s at this size; the dict arm ~1.5s.
BACKEND_BDD_VARS = 800

#: (family, size) pairs the cross-backend parity check always runs on
#: (every netgen family, bench-sized): both backends must induce the
#: same specialized-key equivalence classes, per-edge sat counts and
#: final abstraction partitions.  Node *ids* are backend-specific
#: (complement edges share more structure), so only node-id-insensitive
#: properties are compared.
BACKEND_CHECK_WORKLOADS = [
    ("fattree", 4),
    ("ring", 8),
    ("mesh", 4),
    ("datacenter", 2),
    ("wan", 2),
]

#: (family, size, class limit) triples for the failure-sweep stage.  The
#: fat-tree entry carries the PR-4 acceptance criterion (incremental
#: re-solve >=2x over scratch); the class limit keeps the stage's
#: wall-clock bench-sized without changing the per-scenario work.
FULL_FAILURE_WORKLOADS = [
    ("fattree", 6, 6),
    ("ring", 16, None),
]
QUICK_FAILURE_WORKLOADS = [
    ("fattree", 4, 4),
    ("ring", 12, None),
]

#: (family, size, class limit) pairs for the delta-sweep stage.  Each
#: network runs two single-change sweeps: the compression-invariant
#: change (zero re-compressed classes expected; carries the PR-5
#: acceptance criterion of >=2x incremental vs full rebuild) and the
#: per-class route-map tightening.
FULL_DELTA_WORKLOADS = [
    ("fattree", 6, 6),
]
QUICK_DELTA_WORKLOADS = [
    ("fattree", 4, 4),
]

#: Flat grace added to every per-stage regression check.  Baselines are
#: recorded on whatever machine cut the PR while the gate runs on CI
#: hardware; at the quick mode's millisecond scale a purely relative
#: threshold would flag scheduler noise as a regression.
ABSOLUTE_SLACK_SECONDS = 0.02


def _classes_and_srps(network):
    from repro.abstraction.ec import routable_equivalence_classes

    classes = routable_equivalence_classes(network)
    srps = [
        build_srp_from_network(network, ec.prefix, set(ec.origins)) for ec in classes
    ]
    return classes, srps


# ----------------------------------------------------------------------
# Stages
# ----------------------------------------------------------------------
def stage_srp_solve(workloads) -> float:
    """Solve the SRP of every class of every workload network."""
    prepared = []
    for family, size in workloads:
        network = build_topology(family, size)
        _, srps = _classes_and_srps(network)
        prepared.append(srps)
    start = time.perf_counter()
    for srps in prepared:
        for srp in srps:
            srp_solver.solve(srp)
    return time.perf_counter() - start


def _bdd_workload(manager, num_vars: int) -> None:
    """The ``bdd_ops`` micro-workload, parameterized over the manager."""
    # Deep conjunction / disjunction chains (the ACL/route-map shape).
    conj = manager.conjoin(manager.var(i) for i in range(num_vars))
    disj = manager.disjoin(manager.nvar(i) for i in range(num_vars))
    # A xor ladder (worst case for node growth).
    ladder = FALSE
    for i in range(0, num_vars, 3):
        ladder = manager.apply_xor(ladder, manager.var(i))
    # ite mixing the three.
    mixed = manager.ite(ladder, conj, disj)
    # Restrict / quantify over a quarter of the support.
    quarter = list(range(0, num_vars, 4))
    manager.restrict(mixed, {v: bool(v % 2) for v in quarter})
    manager.exists(ladder, quarter[: min(12, len(quarter))])
    assert manager.evaluate(conj, {i: True for i in range(num_vars)})


def stage_bdd_ops(num_vars: int) -> float:
    """Conjunction chains, xor ladders and quantification on one manager."""
    manager = BddManager(num_vars)
    start = time.perf_counter()
    _bdd_workload(manager, num_vars)
    return time.perf_counter() - start


def stage_bdd_backend(num_vars: int):
    """The same micro-workload on both backends, freshly constructed.

    Returns ``(array_seconds, dict_seconds)``; the stage time recorded
    in the report is the array arm, and the ratio becomes
    ``bdd_backend_speedup``.
    """
    seconds = {}
    for name in ("dict", "array"):
        manager = make_manager(num_vars, backend=name)
        start = time.perf_counter()
        _bdd_workload(manager, num_vars)
        seconds[name] = time.perf_counter() - start
    return seconds["array"], seconds["dict"]


def stage_refinement(workloads) -> float:
    """Abstraction refinement with inputs prepared outside the timer."""
    prepared = []
    for family, size in workloads:
        network = build_topology(family, size)
        _, srps = _classes_and_srps(network)
        prepared.append(srps)
    start = time.perf_counter()
    for srps in prepared:
        for srp in srps:
            compute_abstraction(srp)
    return time.perf_counter() - start


def stage_compress(workloads) -> float:
    networks = [build_topology(family, size) for family, size in workloads]
    start = time.perf_counter()
    for network in networks:
        CompressionPipeline(network, executor="serial").run()
    return time.perf_counter() - start


def stage_verify(workloads) -> float:
    networks = [build_topology(family, size) for family, size in workloads]
    start = time.perf_counter()
    for network in networks:
        BatchVerifier(network, executor="serial").run()
    return time.perf_counter() - start


def stage_failure_sweep(failure_workloads):
    """Single-link failure sweeps with the scratch oracle enabled.

    Returns ``(seconds, fattree_speedup)``: the timed stage plus the
    incremental-vs-scratch wall-clock ratio of the fat-tree sweep (the
    acceptance metric recorded as ``failure_incremental_speedup``).
    """
    networks = [
        (family, build_topology(family, size), limit)
        for family, size, limit in failure_workloads
    ]
    speedup = None
    start = time.perf_counter()
    for family, network, limit in networks:
        report = FailureSweep(
            network,
            k=1,
            executor="serial",
            soundness=False,
            oracle=True,
            limit=limit,
        ).run()
        if not report.incremental_all_match():
            raise RuntimeError(
                f"incremental re-solve diverged from the scratch oracle on "
                f"{network.name}: {report.incremental_divergences()}"
            )
        if family == "fattree":
            speedup = report.incremental_speedup
    return time.perf_counter() - start, speedup


def stage_obs_overhead(workloads, repeat: int):
    """Metrics-registry overhead on the ``srp_solve`` hot path.

    Times the same prepared solve workload with the registry enabled
    (the instrumented default; tracing stays off) and with it disabled
    (every lookup returns the shared null instrument).  Each arm keeps
    its own minimum over ``repeat`` runs, so noise in one arm cannot
    manufacture (or hide) overhead.  Returns ``(enabled_best,
    disabled_best)``.
    """
    from repro.obs import metrics as obs_metrics

    prepared = []
    for family, size in workloads:
        network = build_topology(family, size)
        _, srps = _classes_and_srps(network)
        prepared.append(srps)

    def timed() -> float:
        start = time.perf_counter()
        for srps in prepared:
            for srp in srps:
                srp_solver.solve(srp)
        return time.perf_counter() - start

    was_enabled = obs_metrics.enabled()
    try:
        obs_metrics.enable()
        enabled_best = min(timed() for _ in range(repeat))
        obs_metrics.disable()
        disabled_best = min(timed() for _ in range(repeat))
    finally:
        if was_enabled:
            obs_metrics.enable()
        else:
            obs_metrics.disable()
    return enabled_best, disabled_best


def _delta_scripts(network):
    """The two single-change scripts a delta workload runs."""
    import random

    from repro.netgen.changes import invariant_acl_change, tighten_export_change

    rng = random.Random(0)
    return [
        ("invariant", invariant_acl_change(network, rng)),
        ("tighten", tighten_export_change(network, random.Random(0))),
    ]


def stage_delta_sweep(delta_workloads):
    """Single-change what-if sweeps with both oracles enabled.

    Returns ``(seconds, invariant_speedup)``: the timed stage plus the
    incremental-vs-full-rebuild wall-clock ratio of the fat-tree
    invariant-change sweep (the acceptance metric recorded as
    ``delta_incremental_speedup``).  Raises if the invariant sweep
    re-compresses any class or any oracle disagrees.
    """
    from repro.delta import DeltaSweep

    networks = [
        (family, build_topology(family, size), limit)
        for family, size, limit in delta_workloads
    ]
    speedup = None
    start = time.perf_counter()
    for family, network, limit in networks:
        for label, changeset in _delta_scripts(network):
            if changeset is None:
                continue
            report = DeltaSweep(
                network,
                script=[changeset],
                executor="serial",
                oracle=True,
                revalidate=True,
                rebuild_oracle=True,
                limit=limit,
            ).run()
            if not report.ok():
                raise RuntimeError(
                    f"delta sweep diverged on {network.name} ({label}): "
                    f"{report.incremental_divergences()} "
                    f"{report.abstract_disagreements()}"
                )
            if label == "invariant":
                counts = report.reuse_counts()
                if counts["recompressed"]:
                    raise RuntimeError(
                        f"compression-invariant change re-compressed "
                        f"{counts['recompressed']} classes on {network.name}"
                    )
                if family == "fattree":
                    speedup = report.incremental_speedup
    return time.perf_counter() - start, speedup


# ----------------------------------------------------------------------
# Correctness cross-checks (reference oracles)
# ----------------------------------------------------------------------
def _backend_parity_failures(family: str, size: int) -> List[str]:
    """Node-id-insensitive parity of the two BDD backends on one network.

    For every destination equivalence class, both backends must produce
    the same per-edge specialized sat counts, the same specialized-key
    equivalence classes (edges grouped by key, compared as partitions --
    the keys themselves embed backend-specific node ids), and the same
    final abstraction partition out of :class:`Bonsai`.
    """
    from repro.abstraction.bonsai import Bonsai
    from repro.bdd import PolicyBddEncoder
    from repro.config.transfer import compile_edges

    network = build_topology(family, size)
    failures: List[str] = []
    per_backend = {}
    for backend in ("dict", "array"):
        encoder = PolicyBddEncoder(network, backend=backend)
        encoder.encode_all_edges()
        bonsai = Bonsai(network, encoder=encoder)
        observed = {}
        for ec in bonsai.equivalence_classes():
            compiled = compile_edges(network, ec.prefix)
            sat = {}
            for edge, info in compiled.items():
                bdd = encoder.encode_edge(info)
                specialized = encoder.specialize(bdd, ec.prefix)
                sat[edge] = encoder.manager.sat_count(specialized)
            key_classes: Dict[object, set] = {}
            for edge, key in encoder.specialized_policy_keys(
                ec.prefix, compiled
            ).items():
                key_classes.setdefault(key, set()).add(edge)
            partition = frozenset(
                frozenset(members) for members in key_classes.values()
            )
            result = bonsai.compress(ec, build_network=False)
            groups = frozenset(result.abstraction.groups())
            observed[ec.prefix] = (
                encoder.manager.num_vars,
                sat,
                partition,
                groups,
            )
        per_backend[backend] = observed
    reference, candidate = per_backend["dict"], per_backend["array"]
    if set(reference) != set(candidate):
        return [f"{family}({size}): backends saw different equivalence classes"]
    for prefix, (num_vars, sat, partition, groups) in reference.items():
        a_num_vars, a_sat, a_partition, a_groups = candidate[prefix]
        if num_vars != a_num_vars:
            failures.append(
                f"{family}({size}) {prefix}: variable universes differ "
                f"(dict {num_vars} vs array {a_num_vars})"
            )
        if sat != a_sat:
            diff = [e for e in sat if sat[e] != a_sat.get(e)]
            failures.append(
                f"{family}({size}) {prefix}: specialized sat counts differ "
                f"on edges {diff[:3]}"
            )
        if partition != a_partition:
            failures.append(
                f"{family}({size}) {prefix}: specialized-key equivalence "
                "classes differ between backends"
            )
        if groups != a_groups:
            failures.append(
                f"{family}({size}) {prefix}: final abstraction partitions "
                "differ between backends"
            )
    return failures


def run_checks(workloads, failure_workloads=(), delta_workloads=()) -> List[str]:
    """Compare the optimized hot paths against their reference oracles.

    Returns a list of human-readable failures (empty = all good).
    """
    from repro.abstraction import refinement as refinement_mod

    failures: List[str] = []
    solve_sweep = getattr(srp_solver, "solve_sweep", None)
    partition_reference = getattr(
        refinement_mod, "find_abstraction_partition_reference", None
    )
    for family, size in workloads:
        network = build_topology(family, size)
        classes, srps = _classes_and_srps(network)
        for ec, srp in zip(classes, srps):
            fast = srp_solver.solve(srp)
            if solve_sweep is not None:
                reference = solve_sweep(srp)
                if fast.labeling != reference.labeling:
                    failures.append(
                        f"{family}({size}) {ec.prefix}: worklist labeling "
                        "diverges from sweep oracle"
                    )
            if partition_reference is not None:
                new_partition, _ = refinement_mod.find_abstraction_partition(srp)
                ref_partition, _ = partition_reference(srp)
                if set(new_partition.partitions()) != set(ref_partition.partitions()):
                    failures.append(
                        f"{family}({size}) {ec.prefix}: dirty-group partition "
                        "diverges from full-rescan oracle"
                    )
        report = BatchVerifier(network, executor="serial").run()
        if not report.verdicts_agree():
            failures.append(
                f"{family}({size}): abstract and concrete verdicts diverge: "
                f"{report.mismatches()}"
            )
    for family, size, limit in failure_workloads:
        network = build_topology(family, size)
        sweep = FailureSweep(
            network,
            k=1,
            executor="serial",
            oracle=True,
            soundness=True,
            limit=limit,
        ).run()
        if not sweep.incremental_all_match():
            failures.append(
                f"{family}({size}): incremental re-solve diverges from the "
                f"scratch oracle: {sweep.incremental_divergences()}"
            )
        if sweep.soundness_disagreements():
            failures.append(
                f"{family}({size}): abstract verdicts disagree under failures: "
                f"{sweep.soundness_disagreements()}"
            )
    from repro.delta import DeltaSweep
    from repro.netgen.changes import generated_change_script

    for family, size, limit in delta_workloads:
        network = build_topology(family, size)
        script = generated_change_script(network, family)
        sweep = DeltaSweep(
            network,
            script=script,
            executor="serial",
            oracle=True,
            revalidate=True,
            # The check only reads the divergence/disagreement verdicts;
            # the rebuild arm exists for the timing stage's speedup.
            rebuild_oracle=False,
            limit=limit,
        ).run()
        if not sweep.incremental_all_match():
            failures.append(
                f"{family}({size}): change-incremental re-solve diverges from "
                f"the scratch oracle: {sweep.incremental_divergences()}"
            )
        if sweep.abstract_disagreements():
            failures.append(
                f"{family}({size}): abstract verdicts disagree under changes: "
                f"{sweep.abstract_disagreements()}"
            )
    # Backend parity runs on every netgen family regardless of mode: the
    # networks are bench-sized, and the array backend must never be the
    # thing that changes a verdict or a partition.
    for family, size in BACKEND_CHECK_WORKLOADS:
        failures.extend(_backend_parity_failures(family, size))
    return failures


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
STAGES = (
    "srp_solve",
    "bdd_ops",
    "bdd_backend",
    "refinement",
    "compress",
    "verify",
    "pipeline",
    "failure_sweep",
    "delta_sweep",
    "obs_overhead",
)


def run_benchmark(quick: bool, repeat: int):
    """Returns ``(stages, extras)``: per-stage seconds plus non-time metrics."""
    workloads = QUICK_WORKLOADS if quick else FULL_WORKLOADS
    bdd_vars = QUICK_BDD_VARS if quick else FULL_BDD_VARS
    failure_workloads = QUICK_FAILURE_WORKLOADS if quick else FULL_FAILURE_WORKLOADS
    delta_workloads = QUICK_DELTA_WORKLOADS if quick else FULL_DELTA_WORKLOADS
    fattree_only = [(f, s) for f, s in workloads if f == "fattree"]

    def best(fn, *args) -> float:
        return min(fn(*args) for _ in range(repeat))

    stages = {
        "srp_solve": best(stage_srp_solve, workloads),
        "bdd_ops": best(stage_bdd_ops, bdd_vars),
        "refinement": best(stage_refinement, workloads),
        "compress": best(stage_compress, workloads),
        "verify": best(stage_verify, workloads),
    }
    stages["pipeline"] = stages["compress"] + stages["verify"]
    # The acceptance metric: compress+verify restricted to the fat-tree
    # family, measured in one timed arm so the number is directly
    # comparable before/after.
    stages["pipeline_fattree"] = best(stage_compress, fattree_only) + best(
        stage_verify, fattree_only
    )
    # Both backend arms keep their own minimum over the repeats, so noise
    # in either arm cannot manufacture (or hide) the headline speedup.
    backend_runs = [stage_bdd_backend(BACKEND_BDD_VARS) for _ in range(repeat)]
    array_best = min(array_s for array_s, _ in backend_runs)
    dict_best = min(dict_s for _, dict_s in backend_runs)
    stages["bdd_backend"] = array_best
    failure_runs = [stage_failure_sweep(failure_workloads) for _ in range(repeat)]
    stages["failure_sweep"] = min(seconds for seconds, _ in failure_runs)
    speedups = [speedup for _, speedup in failure_runs if speedup]
    delta_runs = [stage_delta_sweep(delta_workloads) for _ in range(repeat)]
    stages["delta_sweep"] = min(seconds for seconds, _ in delta_runs)
    delta_speedups = [speedup for _, speedup in delta_runs if speedup]
    obs_enabled, obs_disabled = stage_obs_overhead(workloads, repeat)
    stages["obs_overhead"] = obs_enabled
    extras = {
        "obs_disabled_seconds": obs_disabled,
        "obs_overhead_ratio": obs_enabled / obs_disabled if obs_disabled else None,
        # min(), like the timing stages: scheduler noise in a scratch arm
        # must not be able to manufacture the headline speedup.
        "failure_incremental_speedup": min(speedups) if speedups else None,
        "delta_incremental_speedup": min(delta_speedups) if delta_speedups else None,
        "bdd_backend_dict_seconds": dict_best,
        "bdd_backend_speedup": dict_best / array_best if array_best else None,
    }
    return stages, extras


def compare_to_baseline(
    stages: Dict[str, float], baseline: Dict, max_regression: float, mode: str
) -> List[str]:
    """Regressions of the current run vs the baseline's ``after`` stages.

    The baseline's ``after`` section may be flat (``{stage: seconds}``) or
    keyed by mode (``{"full": {...}, "quick": {...}}``); quick CI runs are
    compared against quick baselines so the gate actually bites.
    """
    reference: Optional[Dict] = baseline.get("after") or baseline.get("stages")
    if isinstance(reference, dict) and mode in reference:
        reference = reference[mode]
    if not reference:
        return [f"baseline file has no 'after' (or 'stages') section for {mode!r}"]
    problems = []
    for name, ref_seconds in reference.items():
        now = stages.get(name)
        if now is None or ref_seconds <= 0:
            continue
        # Absolute slack on top of the relative limit: quick-mode stages
        # are tens of milliseconds, and baselines are recorded on a
        # different machine than CI runs on -- without a floor, scheduler
        # noise alone would trip the gate on an unchanged tree.
        if now <= ref_seconds * (1.0 + max_regression) + ABSOLUTE_SLACK_SECONDS:
            continue
        problems.append(
            f"stage {name}: {now:.3f}s vs baseline {ref_seconds:.3f}s "
            f"({now / ref_seconds:.2f}x, limit {1.0 + max_regression:.2f}x "
            f"+ {ABSOLUTE_SLACK_SECONDS:.2f}s slack)"
        )
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small CI workloads")
    parser.add_argument("--repeat", type=int, default=3, help="repeats per stage (min is kept)")
    parser.add_argument("--out", default=None, help="write the JSON report here")
    parser.add_argument(
        "--baseline", default=None, help="compare against this BENCH_*.json file"
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="allowed fractional slowdown per stage vs the baseline (default 0.25)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="also cross-check optimized paths against the reference oracles "
        "(including cross-backend BDD parity on every netgen family)",
    )
    parser.add_argument(
        "--min-bdd-speedup",
        type=float,
        default=None,
        help="fail unless the array BDD backend is at least this many times "
        "faster than the dict backend on the bdd_ops workload",
    )
    parser.add_argument(
        "--max-obs-overhead",
        type=float,
        default=None,
        help="fail if the metrics-instrumented srp_solve hot path is more "
        "than this fraction slower than the metrics-disabled arm "
        "(e.g. 0.03 = 3%%)",
    )
    parser.add_argument(
        "--history",
        default=None,
        help="append this run to the given bench-history file "
        "(default: $REPRO_OBS_HISTORY or ./BENCH_HISTORY.jsonl)",
    )
    parser.add_argument(
        "--no-history",
        action="store_true",
        help="skip the bench-history append",
    )
    args = parser.parse_args(argv)
    if args.repeat < 1:
        parser.error("--repeat must be >= 1")

    mode = "quick" if args.quick else "full"
    print(f"hot-path benchmark ({mode}, repeat={args.repeat})")
    stages, extras = run_benchmark(args.quick, args.repeat)
    for name in sorted(stages):
        print(f"  {name:18s} {stages[name]:8.3f}s")
    speedup = extras.get("failure_incremental_speedup")
    if speedup is not None:
        print(f"  failure-sweep incremental re-solve speedup: {speedup:.2f}x")
    delta_speedup = extras.get("delta_incremental_speedup")
    if delta_speedup is not None:
        print(
            f"  delta-sweep incremental vs full-rebuild speedup: "
            f"{delta_speedup:.2f}x"
        )
    bdd_speedup = extras.get("bdd_backend_speedup")
    if bdd_speedup is not None:
        print(
            f"  array vs dict BDD backend speedup "
            f"({BACKEND_BDD_VARS} vars): {bdd_speedup:.2f}x"
        )

    obs_ratio = extras.get("obs_overhead_ratio")
    if obs_ratio is not None:
        print(
            f"  metrics instrumentation overhead on srp_solve: "
            f"{(obs_ratio - 1.0) * 100.0:+.1f}%"
        )

    status = 0
    if args.max_obs_overhead is not None:
        enabled_s = stages["obs_overhead"]
        disabled_s = extras["obs_disabled_seconds"]
        # The same absolute slack as the baseline gate: quick-mode arms
        # are tens of milliseconds, where scheduler noise alone exceeds
        # any relative threshold.
        limit = disabled_s * (1.0 + args.max_obs_overhead) + ABSOLUTE_SLACK_SECONDS
        if enabled_s > limit:
            status = 1
            print(
                f"OBS OVERHEAD TOO HIGH: instrumented srp_solve {enabled_s:.3f}s "
                f"vs disabled {disabled_s:.3f}s "
                f"({(enabled_s / disabled_s - 1.0) * 100.0:+.1f}%, limit "
                f"{args.max_obs_overhead:.0%} + {ABSOLUTE_SLACK_SECONDS:.2f}s slack)",
                file=sys.stderr,
            )
    if args.min_bdd_speedup is not None and (
        bdd_speedup is None or bdd_speedup < args.min_bdd_speedup
    ):
        status = 1
        print(
            f"BDD BACKEND TOO SLOW: array backend speedup "
            f"{bdd_speedup if bdd_speedup is not None else 0:.2f}x is below the "
            f"--min-bdd-speedup {args.min_bdd_speedup:.1f}x gate",
            file=sys.stderr,
        )
    if args.check:
        workloads = QUICK_WORKLOADS if args.quick else FULL_WORKLOADS
        failure_workloads = (
            QUICK_FAILURE_WORKLOADS if args.quick else FULL_FAILURE_WORKLOADS
        )
        delta_workloads = (
            QUICK_DELTA_WORKLOADS if args.quick else FULL_DELTA_WORKLOADS
        )
        failures = run_checks(workloads, failure_workloads, delta_workloads)
        if failures:
            status = 1
            for failure in failures:
                print(f"CHECK FAILED: {failure}", file=sys.stderr)
        else:
            print("  oracle cross-checks: ok")

    if args.baseline:
        with open(args.baseline, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        problems = compare_to_baseline(stages, baseline, args.max_regression, mode)
        if problems:
            status = 1
            for problem in problems:
                print(f"REGRESSION: {problem}", file=sys.stderr)
        else:
            print(f"  no stage regressed >{args.max_regression:.0%} vs {args.baseline}")

    if args.out:
        from repro.perfutil import peak_rss_mb

        report = {
            "benchmark": "hotpaths",
            "mode": mode,
            "repeat": args.repeat,
            "stages": stages,
            "peak_rss_mb": peak_rss_mb(),
            **extras,
        }
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"  report written to {args.out}")

    if not args.no_history:
        from repro.obs import history as bench_history
        from repro.perfutil import peak_rss_mb

        path = bench_history.default_history_path(args.history)
        bench_history.append(
            path,
            "hotpaths",
            stages,
            peak_rss_mb=peak_rss_mb(),
            meta={
                "mode": mode,
                "repeat": args.repeat,
                **{k: v for k, v in extras.items() if v is not None},
            },
        )
        print(f"  history appended to {path}")
    return status


if __name__ == "__main__":
    sys.exit(main())
