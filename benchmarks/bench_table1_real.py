"""Table 1(b): compression of the "real" networks (datacenter and WAN).

The paper's operational datacenter (197 routers, eBGP + statics, heavy use
of communities and filters) and WAN (1086 devices, eBGP/iBGP/OSPF/static)
are proprietary; the synthetic substitutes in :mod:`repro.netgen` carry the
same structural ingredients (see DESIGN.md §2).  This harness reports the
same row format as Table 1(b): node/edge counts, mean abstract size over
sampled equivalence classes, compression ratios, BDD time and per-class
compression time.

Expected shape: both networks compress by well over the paper's ~5-6x node
ratio (the substitutes are more symmetric than the operational networks,
so they compress more, not less).
"""

import pytest

from conftest import full_scale, record_row
from repro import Bonsai, datacenter_network, wan_network
from repro.netgen import DATACENTER_SMALL_SCALE

TABLE = "Table 1(b): real-network substitutes"


def _datacenter():
    return datacenter_network() if full_scale() or True else datacenter_network(DATACENTER_SMALL_SCALE)


CASES = [
    ("datacenter-197", lambda: datacenter_network(), 4),
    ("wan-1086", lambda: wan_network(), 3),
]


@pytest.mark.parametrize("label,builder,sample", CASES, ids=[c[0] for c in CASES])
def test_table1_real_compression(benchmark, label, builder, sample):
    network = builder()
    bonsai = Bonsai(network)
    classes = bonsai.equivalence_classes()[:sample]

    def run():
        return [bonsai.compress(ec, build_network=False) for ec in classes]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    summary = bonsai.summarize(results, name=label)
    row = summary.as_row()
    row["config_lines"] = network.total_config_lines()
    benchmark.extra_info.update(row)

    record_row(
        TABLE,
        f"{label:>15}: {row['nodes']:>5} nodes / {row['edges']:>5} edges "
        f"({row['config_lines']} config lines) -> {row['abs_nodes']:>6} / {row['abs_edges']:>6}  "
        f"ratio {row['node_ratio']:>6}x / {row['edge_ratio']:>7}x  ECs {row['num_ecs']:>5}  "
        f"BDD {row['bdd_time_s']}s  per-EC {row['compression_time_per_ec_s']}s",
    )

    # Shape: substantial compression, as in the paper (>5x nodes there).
    assert row["node_ratio"] > 5
    assert row["edge_ratio"] > 5
