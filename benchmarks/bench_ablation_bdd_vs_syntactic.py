"""Ablation: BDD policy keys versus syntactic (structural) policy keys.

Bonsai's design encodes per-interface policy as BDDs so that semantically
identical but syntactically different configurations compare equal (§5.1).
The ablation compares the full BDD pipeline against a purely syntactic
canonicalisation of specialized route maps on two workloads:

* the regular fat-tree, where both give the same abstraction (the
  configurations are syntactically uniform), and
* a network whose devices express the same policy in different ways, where
  only the BDD keys recover the smaller abstraction.
"""


from conftest import record_row
from repro import Bonsai, fattree_network
from repro.config import parse_network

FIGURE = "Ablation: BDD vs syntactic policy keys"

#: Two transit leaves (leaf2, leaf3) whose export policies are semantically
#: identical but written differently -- leaf3 splits the unconditional
#: "set local-preference 200" into a redundant community-guarded clause plus
#: a catch-all -- and one genuinely different leaf (odd, lp 300).  leaf1
#: originates the destination.
DIVERSE = """
device hub
  community-list dept 65001:1
  bgp-neighbor leaf1 import IN
  bgp-neighbor leaf2 import IN
  bgp-neighbor leaf3 import IN
  bgp-neighbor odd import IN
  route-map IN 10 permit

device leaf1
  network 10.0.1.0/24
  bgp-neighbor hub export OUT
  route-map OUT 10 permit

device leaf2
  bgp-neighbor hub export OUT
  route-map OUT 10 permit
    set local-preference 200

device leaf3
  community-list dept 65001:1
  bgp-neighbor hub export OUT
  route-map OUT 10 permit
    match community dept
    set local-preference 200
  route-map OUT 20 permit
    set local-preference 200

device odd
  bgp-neighbor hub export OUT
  route-map OUT 10 permit
    set local-preference 300

link hub leaf1
link hub leaf2
link hub leaf3
link hub odd
"""


def _compress_first(network, use_bdds):
    bonsai = Bonsai(network, use_bdds=use_bdds)
    ec = bonsai.equivalence_classes()[0]
    return bonsai.compress(ec, build_network=False), bonsai


def test_ablation_uniform_fattree(benchmark):
    network = fattree_network(6)

    def run():
        with_bdds, _ = _compress_first(network, use_bdds=True)
        without, _ = _compress_first(network, use_bdds=False)
        return with_bdds, without

    with_bdds, without = benchmark.pedantic(run, rounds=1, iterations=1)
    record_row(
        FIGURE,
        f"fattree-45 (uniform configs): BDD keys -> {with_bdds.abstract_nodes} nodes, "
        f"syntactic keys -> {without.abstract_nodes} nodes (identical, as expected)",
    )
    assert with_bdds.abstract_nodes == without.abstract_nodes == 6


def test_ablation_semantically_equal_but_syntactically_different(benchmark):
    network = parse_network(DIVERSE, name="diverse")

    def run():
        with_bdds, _ = _compress_first(network, use_bdds=True)
        without, _ = _compress_first(network, use_bdds=False)
        return with_bdds, without

    with_bdds, without = benchmark.pedantic(run, rounds=1, iterations=1)
    record_row(
        FIGURE,
        f"diverse campus: BDD keys -> {with_bdds.abstract_nodes} nodes, "
        f"syntactic keys -> {without.abstract_nodes} nodes "
        f"(BDD canonicalisation merges the equivalent leaves)",
    )
    benchmark.extra_info.update(
        {"bdd_nodes": with_bdds.abstract_nodes, "syntactic_nodes": without.abstract_nodes}
    )
    # The semantic keys recognise leaf1/leaf2/leaf3 as interchangeable;
    # the syntactic keys cannot, so they produce a strictly larger network.
    assert with_bdds.abstract_nodes < without.abstract_nodes
