"""§8's role counts: how the attribute abstraction collapses device roles.

On the paper's datacenter, grouping devices by raw per-interface policy
BDDs gave 112 distinct roles; ignoring community tags that are attached but
never matched reduced that to 26; and ignoring static-route differences
would have left only 8.  This harness reproduces the same three-way
comparison on the synthetic datacenter substitute: the absolute counts
differ (the substitute is more regular than the operational network) but
the ordering -- raw > unused-tags-ignored > statics-also-ignored -- is the
result being reproduced.
"""


from conftest import record_row
from repro import Bonsai, datacenter_network, wan_network

FIGURE = "Section 8: device role counts"


def test_datacenter_role_counts(benchmark):
    network = datacenter_network()
    bonsai = Bonsai(network)

    def run():
        # destination=None computes roles from the unspecialized policy
        # BDDs, as the paper did when first examining its real networks.
        raw = bonsai.unique_roles(None, include_unused_communities=True)
        ignored = bonsai.unique_roles(None)
        without_statics = bonsai.unique_roles(None, ignore_static_routes=True)
        return raw, ignored, without_statics

    raw, ignored, without_statics = benchmark.pedantic(run, rounds=1, iterations=1)
    record_row(
        FIGURE,
        f"datacenter ({network.graph.num_nodes()} devices): "
        f"raw roles {raw}, unused tags ignored {ignored}, "
        f"statics also ignored {without_statics} (paper: 112 / 26 / 8)",
    )
    benchmark.extra_info.update(
        {"raw": raw, "unused_ignored": ignored, "no_statics": without_statics}
    )
    # The paper's ordering: stripping never-matched tags merges many roles,
    # and ignoring static-route differences merges more still.
    assert raw > ignored > without_statics


def test_wan_role_count(benchmark):
    network = wan_network()
    bonsai = Bonsai(network)
    destination = bonsai.equivalence_classes()[0].prefix

    def run():
        return bonsai.unique_roles(destination)

    roles = benchmark.pedantic(run, rounds=1, iterations=1)
    record_row(
        FIGURE,
        f"wan ({network.graph.num_nodes()} devices): {roles} roles "
        f"(paper: 137 on the operational WAN)",
    )
    benchmark.extra_info["roles"] = roles
    assert roles >= 3
