#!/usr/bin/env python
"""Scale-out benchmark: the sharded sweep scheduler under load.

This benchmark characterises the cost-aware shard scheduler
(:mod:`repro.pipeline.shard`) along the three axes the PR claims --
scaling, memory, and scheduling -- and writes a JSON report that CI
regresses against (``BENCH_pr8.json``).

Stages
------
* ``curve``          -- nodes-vs-wall-clock (and peak RSS) points: one
  fresh child process per (family, size) running the streaming
  compression pipeline under the process executor with the stealing
  scheduler.  Each point is a separate OS process because
  ``ru_maxrss`` is a lifetime high-water mark -- points measured in a
  shared process would inherit each other's peaks;
* ``memory_budget``  -- the big fat-tree point re-run with
  ``--memory-budget``-style streaming aggregation (per-class records
  spill to disk as they arrive); the run fails if peak RSS exceeds the
  stated bound (:data:`MEMORY_BUDGET_MIB`);
* ``skew``           -- a deliberately skewed workload (a few classes
  two orders of magnitude heavier than the rest, arranged to land in
  the same static batch) run under both schedulers.  The report
  records ``steal_speedup`` = static / stealing wall-clock, which
  ``--min-steal-speedup`` gates in CI: work stealing must beat static
  pre-batching on skew, not just tie it.

The skewed workload uses the registered ``"bench-sleep"`` task (pure
``time.sleep`` per class) rather than real compression: sleeps are
deterministic, immune to CPU-count differences between machines, and
make the scheduling effect -- not per-class solver noise -- the thing
measured.  The stealing arm is given the true per-class costs as
``unit_costs``, exercising the cost-aware largest-first dispatch a warm
:class:`~repro.store.ArtifactStore` provides in production.

Every timed arm is run ``--repeat`` times and the *minimum* is
reported, so scheduler noise cannot manufacture a regression.

Usage
-----
Full benchmark with report::

    python benchmarks/bench_scale.py --out bench_scale.json

CI quick mode with the regression and stealing gates::

    python benchmarks/bench_scale.py --quick \
        --baseline BENCH_pr8.json --max-regression 0.25 \
        --min-steal-speedup 1.3
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from typing import Dict, List, Optional, Tuple

#: (family, size) curve points per mode.  Quick stays CI-sized; full
#: climbs to the fat-tree k=16 / 320-device point the PR's memory
#: claims are stated against.
FULL_CURVE_POINTS = [
    ("fattree", 4),
    ("fattree", 6),
    ("fattree", 8),
    ("fattree", 16),
    ("wan", 2),
    ("wan", 12),
]
QUICK_CURVE_POINTS = [
    ("fattree", 4),
    ("fattree", 6),
    ("wan", 2),
]

#: The memory-budget point and its stated bound per mode.  The full
#: bound is the PR's acceptance criterion for fat-tree k=16 (observed
#: ~160 MiB streaming; the bound leaves cross-machine headroom while
#: still refusing an O(classes) blow-up).
MEMORY_BUDGET_POINT = {"quick": ("fattree", 6), "full": ("fattree", 16)}
MEMORY_BUDGET_MIB = {"quick": 256.0, "full": 384.0}

#: Skewed-workload shape: ``SKEW_HEAVY`` classes sleep
#: ``heavy_seconds`` each, the rest ``SKEW_CHEAP_SECONDS``.  The heavy
#: classes are the *first* ones in class order, so static contiguous
#: batching packs them two-per-batch (the worst case stealing exists to
#: fix); per-mode ``heavy_seconds`` keeps quick CI-sized.
SKEW_FAMILY, SKEW_SIZE = "fattree", 6
SKEW_WORKERS = 4
SKEW_HEAVY = 4
SKEW_HEAVY_SECONDS = {"quick": 0.4, "full": 0.6}
SKEW_CHEAP_SECONDS = 0.01

#: Flat grace added to every per-stage regression check.  Curve points
#: pay a full interpreter + pool start per measurement, so the floor is
#: larger than bench_hotpaths' millisecond-scale one.
ABSOLUTE_SLACK_SECONDS = 0.25
#: Flat grace on peak-RSS comparisons: allocator and interpreter
#: baselines differ by tens of MiB across Python builds.
ABSOLUTE_SLACK_MB = 64.0


# ----------------------------------------------------------------------
# Child mode: one measured point per OS process
# ----------------------------------------------------------------------
def run_point(spec: Dict) -> Dict:
    """Run one curve/memory point in *this* process and describe it.

    Executed in a fresh child (``--run-point``) so ``ru_maxrss`` is this
    point's own high-water mark.
    """
    from repro.netgen.families import build_topology
    from repro.perfutil import peak_rss_mb
    from repro.pipeline.core import CompressionPipeline

    family, size = spec["family"], int(spec["size"])
    network = build_topology(family, size)
    start = time.perf_counter()
    pipeline = CompressionPipeline(
        network,
        executor=spec.get("executor", "process"),
        workers=int(spec.get("workers", 4)),
        scheduler=spec.get("scheduler", "stealing"),
    )
    if spec.get("spill", True):
        report = pipeline.run_streaming(spill=True)
    else:
        report = pipeline.run().report
    wall = time.perf_counter() - start
    if not report.ok():
        raise RuntimeError(
            f"{family}({size}): pipeline produced "
            f"{report.record_count()}/{report.num_classes} classes"
        )
    return {
        "family": family,
        "size": size,
        "devices": network.num_devices(),
        "num_classes": report.num_classes,
        "wall_seconds": wall,
        "encode_seconds": report.encode_seconds,
        "peak_rss_mb": peak_rss_mb(),
        "spill": bool(spec.get("spill", True)),
    }


def _measure_point(spec: Dict) -> Dict:
    """Run one point in a fresh child process and parse its report."""
    env = dict(os.environ)
    src = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    )
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    proc = subprocess.run(
        [sys.executable, os.path.abspath(__file__), "--run-point", json.dumps(spec)],
        capture_output=True,
        text=True,
        env=env,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"point {spec} failed (exit {proc.returncode}):\n{proc.stderr}"
        )
    # The point report is the last stdout line (imports may chatter).
    return json.loads(proc.stdout.strip().splitlines()[-1])


# ----------------------------------------------------------------------
# Stages
# ----------------------------------------------------------------------
def stage_curve(points, repeat: int) -> List[Dict]:
    """One fresh-process measurement per point; min wall over repeats."""
    measured = []
    for family, size in points:
        runs = [
            _measure_point({"family": family, "size": size}) for _ in range(repeat)
        ]
        best = min(runs, key=lambda r: r["wall_seconds"])
        best["wall_seconds"] = min(r["wall_seconds"] for r in runs)
        # RSS is a property of the workload, not of scheduler luck:
        # keep the *max* across repeats so the gate bounds the worst run.
        best["peak_rss_mb"] = max(r["peak_rss_mb"] for r in runs)
        measured.append(best)
        print(
            f"    curve {family}({size}): {best['devices']} devices, "
            f"{best['num_classes']} classes, {best['wall_seconds']:.2f}s, "
            f"peak RSS {best['peak_rss_mb']:.1f} MiB"
        )
    return measured


def stage_memory_budget(mode: str, repeat: int) -> Dict:
    """The big point under a stated memory bound, streaming enabled."""
    family, size = MEMORY_BUDGET_POINT[mode]
    budget = MEMORY_BUDGET_MIB[mode]
    runs = [
        _measure_point({"family": family, "size": size, "spill": True})
        for _ in range(repeat)
    ]
    observed = max(r["peak_rss_mb"] for r in runs)
    seconds = min(r["wall_seconds"] for r in runs)
    within = observed <= budget
    print(
        f"    memory budget {family}({size}): peak RSS {observed:.1f} MiB "
        f"({'within' if within else 'EXCEEDS'} the stated {budget:.0f} MiB bound), "
        f"{seconds:.2f}s"
    )
    return {
        "family": family,
        "size": size,
        "budget_mib": budget,
        "peak_rss_mb": observed,
        "wall_seconds": seconds,
        "within_budget": within,
    }


def _skew_arm(scheduler: str, heavy_seconds: float) -> float:
    """One skewed-workload run under ``scheduler``; returns wall-clock."""
    import repro.pipeline.shard  # noqa: F401 - registers "bench-sleep"
    from repro.abstraction.ec import routable_equivalence_classes
    from repro.netgen.families import build_topology
    from repro.pipeline.core import ClassFanOut
    from repro.pipeline.encoded import EncodedNetwork

    network = build_topology(SKEW_FAMILY, SKEW_SIZE)
    artifact = EncodedNetwork.build(network, use_bdds=True)
    prefixes = [str(ec.prefix) for ec in routable_equivalence_classes(network)]
    heavy = prefixes[:SKEW_HEAVY]
    sleep_map = {prefix: heavy_seconds for prefix in heavy}
    costs = {
        prefix: sleep_map.get(prefix, SKEW_CHEAP_SECONDS) for prefix in prefixes
    }
    fanout = ClassFanOut(
        artifact=artifact,
        task="bench-sleep",
        task_options={"sleep_seconds": sleep_map, "default_sleep": SKEW_CHEAP_SECONDS},
        executor="process",
        workers=SKEW_WORKERS,
        scheduler=scheduler,
        # The stealing arm gets the true costs (what a warm cost store
        # provides); the static arm ignores them by construction.
        unit_costs=costs if scheduler == "stealing" else None,
    )
    start = time.perf_counter()
    results = fanout.execute()
    elapsed = time.perf_counter() - start
    if len(results) != len(prefixes):
        raise RuntimeError(
            f"skew arm ({scheduler}) returned {len(results)}/{len(prefixes)} classes"
        )
    return elapsed


def stage_skew(mode: str, repeat: int) -> Tuple[float, float, float]:
    """Both schedulers on the skewed workload; ``(static, stealing, speedup)``."""
    heavy_seconds = SKEW_HEAVY_SECONDS[mode]
    # Both arms keep their own minimum, so noise in either cannot
    # manufacture (or hide) the speedup.
    static_best = min(_skew_arm("static", heavy_seconds) for _ in range(repeat))
    stealing_best = min(_skew_arm("stealing", heavy_seconds) for _ in range(repeat))
    speedup = static_best / stealing_best if stealing_best else float("inf")
    print(
        f"    skew ({SKEW_HEAVY}x{heavy_seconds:.1f}s heavy / "
        f"{SKEW_CHEAP_SECONDS:.2f}s cheap, {SKEW_WORKERS} workers): "
        f"static {static_best:.2f}s vs stealing {stealing_best:.2f}s "
        f"({speedup:.2f}x)"
    )
    return static_best, stealing_best, speedup


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def run_benchmark(mode: str, repeat: int):
    """Returns ``(stages, rss, extras)``."""
    points = QUICK_CURVE_POINTS if mode == "quick" else FULL_CURVE_POINTS

    print("  curve:")
    curve = stage_curve(points, repeat)
    print("  memory budget:")
    budget = stage_memory_budget(mode, repeat)
    print("  skew:")
    static_s, stealing_s, speedup = stage_skew(mode, repeat)

    stages: Dict[str, float] = {}
    rss: Dict[str, float] = {}
    for point in curve:
        key = f"curve_{point['family']}{point['size']}"
        stages[key] = point["wall_seconds"]
        rss[key] = point["peak_rss_mb"]
    stages["memory_budget"] = budget["wall_seconds"]
    rss["memory_budget"] = budget["peak_rss_mb"]
    stages["skew_static"] = static_s
    stages["skew_stealing"] = stealing_s
    extras = {
        "points": curve,
        "memory_budget": budget,
        "steal_speedup": speedup,
    }
    return stages, rss, extras


def compare_to_baseline(
    stages: Dict[str, float],
    rss: Dict[str, float],
    baseline: Dict,
    max_regression: float,
    mode: str,
) -> List[str]:
    """Regressions of this run vs the baseline's ``after`` section.

    The ``after`` section may be flat or keyed by mode; each mode block
    holds ``stages`` (seconds) and ``rss_mb`` (MiB).  Time checks get
    ``max_regression`` + :data:`ABSOLUTE_SLACK_SECONDS`; RSS checks get
    ``max_regression`` + :data:`ABSOLUTE_SLACK_MB`.
    """
    reference: Optional[Dict] = baseline.get("after")
    if isinstance(reference, dict) and mode in reference:
        reference = reference[mode]
    if not isinstance(reference, dict):
        return [f"baseline file has no 'after' section for {mode!r}"]
    problems = []
    for name, ref_seconds in (reference.get("stages") or {}).items():
        now = stages.get(name)
        if now is None or ref_seconds <= 0:
            continue
        if now <= ref_seconds * (1.0 + max_regression) + ABSOLUTE_SLACK_SECONDS:
            continue
        problems.append(
            f"stage {name}: {now:.3f}s vs baseline {ref_seconds:.3f}s "
            f"({now / ref_seconds:.2f}x, limit {1.0 + max_regression:.2f}x "
            f"+ {ABSOLUTE_SLACK_SECONDS:.2f}s slack)"
        )
    for name, ref_mb in (reference.get("rss_mb") or {}).items():
        now = rss.get(name)
        if now is None or ref_mb <= 0:
            continue
        if now <= ref_mb * (1.0 + max_regression) + ABSOLUTE_SLACK_MB:
            continue
        problems.append(
            f"peak RSS {name}: {now:.1f} MiB vs baseline {ref_mb:.1f} MiB "
            f"({now / ref_mb:.2f}x, limit {1.0 + max_regression:.2f}x "
            f"+ {ABSOLUTE_SLACK_MB:.0f} MiB slack)"
        )
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small CI workloads")
    parser.add_argument(
        "--repeat", type=int, default=2, help="repeats per arm (min is kept)"
    )
    parser.add_argument("--out", default=None, help="write the JSON report here")
    parser.add_argument(
        "--baseline", default=None, help="compare against this BENCH_*.json file"
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="allowed fractional slowdown (and RSS growth) per stage vs the "
        "baseline (default 0.25)",
    )
    parser.add_argument(
        "--min-steal-speedup",
        type=float,
        default=None,
        help="fail unless work stealing beats static batching by at least "
        "this factor on the skewed workload",
    )
    parser.add_argument(
        "--history",
        default=None,
        help="append this run to the given bench-history file "
        "(default: $REPRO_OBS_HISTORY or ./BENCH_HISTORY.jsonl)",
    )
    parser.add_argument(
        "--no-history",
        action="store_true",
        help="skip the bench-history append",
    )
    parser.add_argument(
        "--run-point",
        default=None,
        metavar="JSON",
        help=argparse.SUPPRESS,  # internal: child-process point runner
    )
    args = parser.parse_args(argv)
    if args.repeat < 1:
        parser.error("--repeat must be >= 1")

    if args.run_point is not None:
        print(json.dumps(run_point(json.loads(args.run_point)), sort_keys=True))
        return 0

    mode = "quick" if args.quick else "full"
    print(f"scale-out benchmark ({mode}, repeat={args.repeat})")
    stages, rss, extras = run_benchmark(mode, args.repeat)
    for name in sorted(stages):
        line = f"  {name:18s} {stages[name]:8.3f}s"
        if name in rss:
            line += f"  (peak RSS {rss[name]:7.1f} MiB)"
        print(line)
    speedup = extras["steal_speedup"]
    print(f"  work stealing vs static on skew: {speedup:.2f}x")

    status = 0
    if not extras["memory_budget"]["within_budget"]:
        status = 1
        print(
            f"MEMORY BUDGET EXCEEDED: "
            f"{extras['memory_budget']['peak_rss_mb']:.1f} MiB over the "
            f"{extras['memory_budget']['budget_mib']:.0f} MiB bound",
            file=sys.stderr,
        )
    if args.min_steal_speedup is not None and speedup < args.min_steal_speedup:
        status = 1
        print(
            f"STEALING TOO SLOW: {speedup:.2f}x is below the "
            f"--min-steal-speedup {args.min_steal_speedup:.1f}x gate",
            file=sys.stderr,
        )
    if args.baseline:
        with open(args.baseline, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        problems = compare_to_baseline(
            stages, rss, baseline, args.max_regression, mode
        )
        if problems:
            status = 1
            for problem in problems:
                print(f"REGRESSION: {problem}", file=sys.stderr)
        else:
            print(
                f"  no stage regressed >{args.max_regression:.0%} vs {args.baseline}"
            )

    if args.out:
        report = {
            "benchmark": "scale",
            "mode": mode,
            "repeat": args.repeat,
            "workers": SKEW_WORKERS,
            "stages": stages,
            "rss_mb": rss,
            "steal_speedup": speedup,
            "points": extras["points"],
            "memory_budget": extras["memory_budget"],
        }
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"  report written to {args.out}")

    if not args.no_history:
        from repro.obs import history as bench_history

        path = bench_history.default_history_path(args.history)
        bench_history.append(
            path,
            "scale",
            stages,
            peak_rss_mb=max(rss.values()) if rss else None,
            meta={
                "mode": mode,
                "repeat": args.repeat,
                "steal_speedup": speedup,
                "rss_mb": rss,
            },
        )
        print(f"  history appended to {path}")
    return status


if __name__ == "__main__":
    sys.exit(main())
