"""Figure 11: abstraction size under different fat-tree routing policies.

The same fat-tree is compressed under shortest-path routing and under a
policy where the middle (aggregation) tier prefers routes from the bottom
(edge) tier.  The paper's point: the policy-rich network needs a larger
abstract network because the middle tier has more possible forwarding
behaviours.  The harness reports both abstractions' sizes for several k.
"""

import pytest

from conftest import full_scale, record_row
from repro import Bonsai, fattree_network

FIGURE = "Figure 11: fat-tree abstractions under different policies"


def _sizes():
    return [4, 6, 8] if full_scale() else [4, 6]


@pytest.mark.parametrize("policy", ["shortest_path", "prefer_bottom"])
def test_fig11_policy_abstraction_sizes(benchmark, policy):
    sizes = _sizes()

    def run():
        results = []
        for k in sizes:
            network = fattree_network(k, policy=policy)
            bonsai = Bonsai(network)
            result = bonsai.compress(bonsai.equivalence_classes()[0])
            results.append((k, network.graph.num_nodes(), result))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for k, nodes, result in results:
        record_row(
            FIGURE,
            f"k={k:<2} ({nodes:>4} nodes) {policy:>15}: "
            f"{result.abstract_nodes:>3} abstract nodes / {result.abstract_edges:>3} edges "
            f"(splits: {sum(result.refinement.split_counts.values()) or '-'})",
        )
        benchmark.extra_info[f"k{k}"] = {
            "abstract_nodes": result.abstract_nodes,
            "abstract_edges": result.abstract_edges,
        }
        if policy == "shortest_path":
            # Shortest-path fat-trees compress to the constant 6-node shape.
            assert result.abstract_nodes == 6
        else:
            # The policy-rich variant is strictly larger (the Figure 11 shape).
            assert result.abstract_nodes > 6
