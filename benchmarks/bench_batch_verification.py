#!/usr/bin/env python3
"""Batch property verification across every generated topology family.

For each family the script runs the full property catalogue through
:class:`repro.analysis.batch.BatchVerifier` -- every property, every node,
every destination equivalence class, on the concrete *and* the
Bonsai-compressed network -- and reports the abstract-vs-concrete speedup
plus the per-property pass/fail totals.  The JSON report is uploaded as a
CI artifact, and the script **exits non-zero if any abstract verdict
diverges from the concrete one** (the paper's soundness theorem as a CI
gate).

Run directly (pytest is not involved)::

    PYTHONPATH=src python benchmarks/bench_batch_verification.py \
        --out batch_verification.json

``--quick`` shrinks every workload for smoke runs.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Dict, Optional

from repro.analysis.batch import BatchVerifier
from repro.netgen.families import build_topology

#: (family, size, quick_size) benchmark workloads.
WORKLOADS = [
    ("fattree", 6, 4),
    ("mesh", 10, 6),
    ("ring", 12, 8),
    ("datacenter", 3, 2),
    ("wan", 3, 2),
]


def bench_workload(
    family: str,
    size: int,
    executor: str,
    workers: int,
    limit: Optional[int],
) -> Dict:
    network = build_topology(family, size)
    verifier = BatchVerifier(
        network,
        executor=executor,
        workers=workers,
        limit=limit,
    )
    report = verifier.run(raise_on_timeout=False)
    result = report.to_dict()
    result["family"] = family
    result["size"] = size
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--executor", default="serial",
                        help="serial, thread or process (default: serial)")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--limit", type=int, default=None,
                        help="verify only the first N classes per family")
    parser.add_argument("--quick", action="store_true",
                        help="use the small per-family sizes")
    parser.add_argument("--out", default=None, help="write the JSON report here")
    args = parser.parse_args(argv)

    results = []
    diverged = False
    for family, size, quick_size in WORKLOADS:
        chosen = quick_size if args.quick else size
        start = time.perf_counter()
        result = bench_workload(family, chosen, args.executor, args.workers, args.limit)
        elapsed = time.perf_counter() - start
        agree = result["aggregate"]["verdicts_agree"]
        diverged = diverged or not agree
        speedup = result["aggregate"]["speedup"]
        speed_text = f"{speedup:.2f}x" if speedup is not None else "n/a"
        print(
            f"{family}({chosen}): {result['num_classes']} classes, "
            f"abstract-vs-concrete speedup {speed_text}, "
            f"{'AGREE' if agree else 'DIVERGE'} ({elapsed:.2f}s)"
        )
        results.append(result)

    payload = {
        "host": platform.node(),
        "python": sys.version.split()[0],
        "cpus": os.cpu_count(),
        "executor": args.executor,
        "workloads": results,
        "verdicts_agree": not diverged,
    }
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"report written to {args.out}")

    if diverged:
        print("ERROR: abstract and concrete verdicts diverged", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
