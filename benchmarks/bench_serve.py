#!/usr/bin/env python
"""Warm-baseline service benchmark: per-query latency, warm vs cold.

The point of the artifact store + ``repro.serve`` stack is that a
verification query against a warm stored baseline costs milliseconds,
while a cold per-query rebuild (encode + solve + compress every class,
what every query would pay without the store) costs the full baseline.
This benchmark measures both and writes a JSON report that CI regresses
against (``BENCH_serve.json``).

Stages
------
* ``store_save``   -- pickling + checksumming a built artifact to disk;
* ``store_load``   -- verified load (checksum, schema, fingerprint);
* ``cold_rebuild`` -- one cold query: build the baseline from scratch,
  then answer a whole-network verify off it;
* ``warm_verify``  -- total wall-clock of the warm query batch (every
  per-class query plus whole-network sweeps) against a warm session;
* ``http_roundtrip`` -- the same queries through the threaded HTTP
  server, concurrent clients included.

The report also records per-family latency percentiles and the headline
``warm_vs_cold_speedup`` = cold per-query rebuild / warm p95, gated in
CI with ``--min-speedup`` (the stored baseline must make warm queries at
least that much faster than rebuilding per query).

Usage
-----
Full run::

    python benchmarks/bench_serve.py --out bench_serve.json

CI quick mode with both gates::

    python benchmarks/bench_serve.py --quick \
        --baseline BENCH_serve.json --max-regression 0.25 --min-speedup 5
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import threading
import time
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Dict, List, Optional

from repro.api import Session
from repro.netgen.families import build_topology
from repro.serve import VerificationService, create_server
from repro.serve.service import _percentile
from repro.store import ArtifactStore, BaselineArtifact

FULL_WORKLOADS = [("fattree", 4), ("ring", 8), ("mesh", 6)]
QUICK_WORKLOADS = [("fattree", 4), ("ring", 5)]

#: Whole-network verify queries per family in the warm batch (on top of
#: one query per destination class).
SWEEP_QUERIES = 4

#: Concurrent HTTP clients per family.
HTTP_CLIENTS = 8

#: Noise floor added to the relative regression limit (quick-mode stages
#: are milliseconds; baselines come from a different machine than CI).
ABSOLUTE_SLACK_SECONDS = 0.25


def _post(url: str, payload: Dict) -> Dict:
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=120) as response:
        return json.loads(response.read())


def bench_family(family: str, size: int, repeat: int) -> Dict[str, object]:
    """All per-family measurements (seconds unless suffixed ``_ms``)."""
    network = build_topology(family, size)

    # Cold per-query rebuild: what one per-class query would cost without
    # the store -- pay the full baseline, then answer that query.  min
    # over repeats so scheduler noise cannot manufacture the speedup.
    cold_samples = []
    for _ in range(repeat):
        start = time.perf_counter()
        session = Session(build_topology(family, size))
        session.verify(prefix=str(session.classes[0].prefix))
        cold_samples.append(time.perf_counter() - start)
    cold_seconds = min(cold_samples)

    # Store round trip.
    artifact = BaselineArtifact.build(network)
    with tempfile.TemporaryDirectory() as tmp:
        store = ArtifactStore(Path(tmp))
        save_samples, load_samples = [], []
        for _ in range(repeat):
            start = time.perf_counter()
            store.save(artifact)
            save_samples.append(time.perf_counter() - start)
            start = time.perf_counter()
            loaded = store.load_for(network)
            load_samples.append(time.perf_counter() - start)
        warm_session = Session(build_topology(family, size), baseline=loaded)

    # Warm query batch: one per-class query (the service's unit of
    # batching, and what the cold arm answers too), plus whole-network
    # sweeps reported separately.  A fresh service per round keeps the
    # answer cache from turning the batch into dictionary lookups;
    # coalescing/caching is measured by the HTTP stage, which runs
    # concurrent identical clients.
    warm_latencies: List[float] = []
    sweep_latencies: List[float] = []
    warm_total = 0.0
    for _ in range(repeat):
        service = VerificationService(warm_session)
        round_latencies = []
        round_sweeps = []
        round_start = time.perf_counter()
        for equivalence_class in warm_session.classes:
            start = time.perf_counter()
            service.verify(prefix=str(equivalence_class.prefix))
            round_latencies.append(time.perf_counter() - start)
        for _ in range(SWEEP_QUERIES):
            start = time.perf_counter()
            service.verify()
            round_sweeps.append(time.perf_counter() - start)
        round_total = time.perf_counter() - round_start
        if not warm_latencies or round_total < warm_total:
            warm_latencies, sweep_latencies = round_latencies, round_sweeps
            warm_total = round_total

    # HTTP round trip with concurrent clients (cache + coalescing live).
    service = VerificationService(warm_session)
    server = create_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    url = f"http://{host}:{port}/verify"
    http_latencies: List[float] = []
    lock = threading.Lock()

    def one_query(prefix: Optional[str]) -> None:
        payload = {} if prefix is None else {"prefix": prefix}
        start = time.perf_counter()
        answer = _post(url, payload)
        elapsed = time.perf_counter() - start
        assert answer.get("ok") is True
        with lock:
            http_latencies.append(elapsed)

    prefixes = [str(ec.prefix) for ec in warm_session.classes]
    queries = (prefixes + [None] * SWEEP_QUERIES) * HTTP_CLIENTS
    http_start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=HTTP_CLIENTS) as pool:
        list(pool.map(one_query, queries))
    http_total = time.perf_counter() - http_start
    server.shutdown()
    server.server_close()

    ordered = sorted(warm_latencies)
    sweeps = sorted(sweep_latencies)
    http_ordered = sorted(http_latencies)
    warm_p95 = _percentile(ordered, 0.95)
    return {
        "classes": len(warm_session.classes),
        "cold_rebuild_seconds": cold_seconds,
        "store_save_seconds": min(save_samples),
        "store_load_seconds": min(load_samples),
        "warm_batch_seconds": warm_total,
        "warm_p50_ms": 1e3 * _percentile(ordered, 0.50),
        "warm_p95_ms": 1e3 * warm_p95,
        "sweep_p50_ms": 1e3 * _percentile(sweeps, 0.50),
        "sweep_p95_ms": 1e3 * _percentile(sweeps, 0.95),
        "http_total_seconds": http_total,
        "http_p50_ms": 1e3 * _percentile(http_ordered, 0.50),
        "http_p95_ms": 1e3 * _percentile(http_ordered, 0.95),
        "warm_vs_cold_speedup": (cold_seconds / warm_p95) if warm_p95 > 0 else None,
    }


def run_benchmark(quick: bool, repeat: int):
    workloads = QUICK_WORKLOADS if quick else FULL_WORKLOADS
    families: Dict[str, Dict[str, object]] = {}
    stages = {
        "store_save": 0.0,
        "store_load": 0.0,
        "cold_rebuild": 0.0,
        "warm_verify": 0.0,
        "http_roundtrip": 0.0,
    }
    for family, size in workloads:
        result = bench_family(family, size, repeat)
        families[f"{family}-{size}"] = result
        stages["store_save"] += result["store_save_seconds"]
        stages["store_load"] += result["store_load_seconds"]
        stages["cold_rebuild"] += result["cold_rebuild_seconds"]
        stages["warm_verify"] += result["warm_batch_seconds"]
        stages["http_roundtrip"] += result["http_total_seconds"]
    speedups = [
        result["warm_vs_cold_speedup"]
        for result in families.values()
        if result["warm_vs_cold_speedup"]
    ]
    extras = {
        # min across families: the gate holds everywhere, not on average.
        "warm_vs_cold_speedup": min(speedups) if speedups else None,
    }
    return stages, families, extras


def compare_to_baseline(
    stages: Dict[str, float], baseline: Dict, max_regression: float, mode: str
) -> List[str]:
    """Regressions vs the committed baseline (same contract as
    ``bench_hotpaths``: flat or mode-keyed ``stages`` section)."""
    reference: Optional[Dict] = baseline.get("stages")
    if isinstance(reference, dict) and mode in reference:
        reference = reference[mode]
    if not reference:
        return [f"baseline file has no 'stages' section for {mode!r}"]
    problems = []
    for name, ref_seconds in reference.items():
        now = stages.get(name)
        if now is None or not isinstance(ref_seconds, (int, float)) or ref_seconds <= 0:
            continue
        if now <= ref_seconds * (1.0 + max_regression) + ABSOLUTE_SLACK_SECONDS:
            continue
        problems.append(
            f"stage {name}: {now:.3f}s vs baseline {ref_seconds:.3f}s "
            f"({now / ref_seconds:.2f}x, limit {1.0 + max_regression:.2f}x "
            f"+ {ABSOLUTE_SLACK_SECONDS:.2f}s slack)"
        )
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small CI workloads")
    parser.add_argument(
        "--repeat", type=int, default=3, help="repeats per stage (min is kept)"
    )
    parser.add_argument("--out", default=None, help="write the JSON report here")
    parser.add_argument(
        "--baseline", default=None, help="compare against this BENCH_*.json file"
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="allowed fractional slowdown per stage vs the baseline (default 0.25)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=5.0,
        help="required warm-p95 vs cold-rebuild speedup on every family "
        "(default 5; 0 disables the gate)",
    )
    parser.add_argument(
        "--history",
        default=None,
        help="append this run to the given bench-history file "
        "(default: $REPRO_OBS_HISTORY or ./BENCH_HISTORY.jsonl)",
    )
    parser.add_argument(
        "--no-history",
        action="store_true",
        help="skip the bench-history append",
    )
    args = parser.parse_args(argv)
    if args.repeat < 1:
        parser.error("--repeat must be >= 1")

    mode = "quick" if args.quick else "full"
    print(f"serve benchmark ({mode}, repeat={args.repeat})")
    stages, families, extras = run_benchmark(args.quick, args.repeat)
    for name in sorted(stages):
        print(f"  {name:16s} {stages[name]:8.3f}s")
    for name, result in families.items():
        print(
            f"  {name}: cold {result['cold_rebuild_seconds'] * 1e3:.1f}ms/query, "
            f"warm p50 {result['warm_p50_ms']:.2f}ms p95 {result['warm_p95_ms']:.2f}ms, "
            f"http p95 {result['http_p95_ms']:.2f}ms "
            f"-> {result['warm_vs_cold_speedup']:.1f}x"
        )

    status = 0
    speedup = extras["warm_vs_cold_speedup"]
    if args.min_speedup > 0:
        if speedup is None or speedup < args.min_speedup:
            status = 1
            print(
                f"GATE FAILED: warm p95 is only {speedup or 0:.1f}x faster than a "
                f"cold per-query rebuild (need >= {args.min_speedup:.1f}x)",
                file=sys.stderr,
            )
        else:
            print(
                f"  warm-baseline gate: {speedup:.1f}x >= "
                f"{args.min_speedup:.1f}x required"
            )

    if args.baseline:
        with open(args.baseline, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        problems = compare_to_baseline(stages, baseline, args.max_regression, mode)
        if problems:
            status = 1
            for problem in problems:
                print(f"REGRESSION: {problem}", file=sys.stderr)
        else:
            print(f"  no stage regressed >{args.max_regression:.0%} vs {args.baseline}")

    if args.out:
        report = {
            "benchmark": "serve",
            "mode": mode,
            "repeat": args.repeat,
            "stages": stages,
            "families": families,
            **extras,
        }
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"  report written to {args.out}")

    if not args.no_history:
        from repro.obs import history as bench_history
        from repro.perfutil import peak_rss_mb

        path = bench_history.default_history_path(args.history)
        bench_history.append(
            path,
            "serve",
            stages,
            peak_rss_mb=peak_rss_mb(),
            meta={
                "mode": mode,
                "repeat": args.repeat,
                "warm_vs_cold_speedup": speedup,
            },
        )
        print(f"  history appended to {path}")
    return status


if __name__ == "__main__":
    sys.exit(main())
