"""Tests for the span-scoped sampling profiler (repro.obs.profile):
sample attribution to open spans, CPU self-time credit, the folded
flamegraph export, the null profiler, file round trips and their
adversarial rejections, and the CLI integration."""

from __future__ import annotations

import json
import re
import time

import pytest

from repro.obs import events, metrics, profile, trace
from repro.obs.jsonl import ObsFileError
from repro.pipeline.cli import main as pipeline_main


@pytest.fixture(autouse=True)
def clean_obs_state():
    events.reset()
    metrics.reset()
    metrics.enable()
    yield
    if trace.enabled():
        trace.end()
    events.reset()
    metrics.reset()
    metrics.enable()


def _busy(seconds: float) -> None:
    """Burn CPU (not sleep) so the sampler finds a running frame."""
    deadline = time.perf_counter() + seconds
    x = 0
    while time.perf_counter() < deadline:
        x += 1
    return x


# ----------------------------------------------------------------------
# Sampling
# ----------------------------------------------------------------------
class TestSamplingProfiler:
    def test_samples_attribute_to_open_span(self):
        trace.begin("run", command="test")
        profiler = profile.SamplingProfiler(interval_ms=1.0)
        with profiler:
            with trace.span("hot-section"):
                _busy(0.2)
        root = trace.end()
        assert profiler.sample_count > 0
        span_paths = {span for span, _ in profiler.samples}
        assert any("hot-section" in path for path in span_paths)
        # CPU self-time was credited to the sampled span.
        hot = root.children[0]
        assert hot.name == "hot-section"
        assert hot.cpu_ms > 0

    def test_samples_without_span_use_sentinel(self):
        profiler = profile.SamplingProfiler(interval_ms=1.0)
        with profiler:
            _busy(0.1)
        assert profiler.sample_count > 0
        assert {span for span, _ in profiler.samples} == {profile.NO_SPAN}

    def test_folded_lines_format(self):
        profiler = profile.SamplingProfiler(interval_ms=1.0)
        with profiler:
            _busy(0.1)
        lines = profiler.folded()
        assert lines
        # Canonical folded shape: frames;joined;by;semicolons SPACE count.
        for line in lines:
            stack, sep, count = line.rpartition(" ")
            assert sep and stack and re.fullmatch(r"[0-9]+", count)
            assert int(count) > 0

    def test_start_stop_idempotent(self):
        profiler = profile.SamplingProfiler(interval_ms=1.0)
        assert not profiler.active()
        profiler.start()
        profiler.start()
        assert profiler.active()
        profiler.stop()
        profiler.stop()
        assert not profiler.active()

    def test_interval_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS_PROFILE_INTERVAL_MS", "2.5")
        assert profile.default_interval_ms() == 2.5
        monkeypatch.setenv("REPRO_OBS_PROFILE_INTERVAL_MS", "-1")
        assert profile.default_interval_ms() == profile.DEFAULT_INTERVAL_MS
        monkeypatch.setenv("REPRO_OBS_PROFILE_INTERVAL_MS", "junk")
        assert profile.default_interval_ms() == profile.DEFAULT_INTERVAL_MS


class TestNullProfiler:
    def test_everything_is_a_noop(self):
        null = profile.NullProfiler()
        with null.start() as active:
            assert active is null
        assert not null.active()
        assert null.records() == [] and null.folded() == []
        assert null.sample_count == 0 and null.interval_ms == 0.0


# ----------------------------------------------------------------------
# Folded rendering + summary (pure functions on records)
# ----------------------------------------------------------------------
class TestExport:
    RECORDS = [
        {"span": "run;compress", "stack": ["cli.main", "core.solve"], "count": 7},
        {"span": "run", "stack": ["cli.main"], "count": 2},
    ]

    def test_folded_lines(self):
        assert profile.folded_lines(self.RECORDS) == [
            "run;compress;cli.main;core.solve 7",
            "run;cli.main 2",
        ]

    def test_summary_ranks_leaf_frames(self):
        ranked = profile.summary(self.RECORDS, top=5)
        assert ranked[0] == {"frame": "core.solve", "samples": 7}
        assert ranked[1] == {"frame": "cli.main", "samples": 2}


# ----------------------------------------------------------------------
# File round trip + adversarial reads
# ----------------------------------------------------------------------
class TestProfileFile:
    def _write(self, tmp_path):
        profiler = profile.SamplingProfiler(interval_ms=1.0)
        with profiler:
            _busy(0.1)
        path = tmp_path / "profile.jsonl"
        profile.write_jsonl(str(path), profiler, context={"command": "test"})
        return path, profiler

    def test_roundtrip(self, tmp_path):
        path, profiler = self._write(tmp_path)
        header, records = profile.read_jsonl(str(path))
        assert header["kind"] == "profile"
        assert header["schema_version"] == profile.PROFILE_SCHEMA_VERSION
        assert header["sample_count"] == profiler.sample_count
        assert header["interval_ms"] == profiler.interval_ms
        assert records == profiler.records()
        assert profile.folded_lines(records) == profiler.folded()

    def test_refuses_truncated_tail(self, tmp_path):
        path, _ = self._write(tmp_path)
        path.write_text(path.read_text().rstrip("\n"))
        with pytest.raises(ObsFileError) as err:
            profile.read_jsonl(str(path))
        assert err.value.reason == "truncated"

    def test_refuses_corrupt_json(self, tmp_path):
        path, _ = self._write(tmp_path)
        lines = path.read_text().splitlines()
        lines[1] = "{broken"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ObsFileError) as err:
            profile.read_jsonl(str(path))
        assert err.value.reason == "corrupt_json"

    def test_refuses_wrong_schema_version(self, tmp_path):
        path, _ = self._write(tmp_path)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["schema_version"] = profile.PROFILE_SCHEMA_VERSION + 1
        lines[0] = json.dumps(header)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ObsFileError) as err:
            profile.read_jsonl(str(path))
        assert err.value.reason == "schema_mismatch"

    def test_refuses_record_missing_fields(self, tmp_path):
        path, _ = self._write(tmp_path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps({"span": "x"}) + "\n")
        with pytest.raises(ObsFileError) as err:
            profile.read_jsonl(str(path))
        assert err.value.reason == "missing_field"


# ----------------------------------------------------------------------
# CLI: --profile on pipelines, profile flamegraph/summarize
# ----------------------------------------------------------------------
class TestProfileCli:
    def test_profiled_compress_writes_valid_profile(self, tmp_path, capsys):
        path = tmp_path / "compress.profile.jsonl"
        code = pipeline_main([
            "compress", "--topo", "ring", "--size", "5",
            "--executor", "serial", "--profile", str(path),
        ])
        assert code == 0
        assert f"profile written to {path}" in capsys.readouterr().out
        header, _ = profile.read_jsonl(str(path))
        assert header["command"] == "compress"

    def test_flamegraph_subcommand(self, tmp_path, capsys):
        src = tmp_path / "p.jsonl"
        profiler = profile.SamplingProfiler(interval_ms=1.0)
        with profiler:
            _busy(0.1)
        profile.write_jsonl(str(src), profiler)
        out = tmp_path / "p.folded"
        code = pipeline_main(
            ["profile", "flamegraph", str(src), "--out", str(out)]
        )
        assert code == 0
        capsys.readouterr()
        lines = out.read_text().splitlines()
        assert lines == profiler.folded()

    def test_summarize_subcommand(self, tmp_path, capsys):
        src = tmp_path / "p.jsonl"
        profiler = profile.SamplingProfiler(interval_ms=1.0)
        with profiler:
            _busy(0.1)
        profile.write_jsonl(str(src), profiler)
        code = pipeline_main(["profile", "summarize", str(src), "--top", "3"])
        assert code == 0
        assert "samples" in capsys.readouterr().out

    def test_rejects_corrupt_file_with_diagnostic(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("{broken\n")
        code = pipeline_main(["profile", "summarize", str(path)])
        assert code == 2
        assert "corrupt_json" in capsys.readouterr().err
