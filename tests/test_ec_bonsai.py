"""Tests for destination equivalence classes and the Bonsai pipeline (§5, §7)."""

import pytest

from repro.abstraction import (
    Bonsai,
    classes_for_destination,
    classes_rooted_at,
    compute_equivalence_classes,
    routable_equivalence_classes,
)
from repro.abstraction.equivalence import check_cp_equivalence
from repro.config import Prefix, build_srp_from_network
from repro.srp import solve


class TestEquivalenceClasses:
    def test_fattree_one_class_per_tor_prefix(self, small_fattree):
        classes = routable_equivalence_classes(small_fattree)
        assert len(classes) == 8  # k=4 fat-tree has 8 edge switches
        for ec in classes:
            assert len(ec.origins) == 1
            assert ec.is_routable

    def test_unroutable_classes_filtered(self, small_datacenter):
        all_classes = compute_equivalence_classes(small_datacenter)
        routable = routable_equivalence_classes(small_datacenter)
        assert len(routable) <= len(all_classes)

    def test_classes_for_destination_overlap_query(self, small_fattree):
        classes = classes_for_destination(small_fattree, Prefix.parse("10.0.1.0/24"))
        assert len(classes) == 1
        assert classes[0].prefix == Prefix.parse("10.0.1.0/24")
        assert classes_for_destination(small_fattree, Prefix.parse("172.16.0.0/16")) == []

    def test_classes_rooted_at_device(self, small_fattree):
        classes = classes_rooted_at(small_fattree, "edge0_0")
        assert len(classes) == 1
        assert classes[0].origins == frozenset({"edge0_0"})


class TestBonsaiPipeline:
    def test_fattree_compresses_to_paper_size(self, small_fattree):
        bonsai = Bonsai(small_fattree)
        result = bonsai.compress(bonsai.equivalence_classes()[0])
        assert result.abstract_nodes == 6
        assert result.abstract_edges == 5
        assert result.node_compression_ratio() == pytest.approx(20 / 6)

    def test_compression_is_cp_equivalent(self, small_fattree):
        bonsai = Bonsai(small_fattree)
        ec = bonsai.equivalence_classes()[0]
        result = bonsai.compress(ec, build_network=True)
        report = check_cp_equivalence(
            result.concrete_srp, result.abstraction, abstract_srp=result.abstract_srp()
        )
        assert report.cp_equivalent, report.violations

    def test_bdd_and_syntactic_keys_agree_on_fattree(self, small_fattree):
        with_bdds = Bonsai(small_fattree, use_bdds=True)
        without = Bonsai(small_fattree, use_bdds=False)
        ec = with_bdds.equivalence_classes()[0]
        assert with_bdds.compress(ec).abstract_nodes == without.compress(ec).abstract_nodes

    def test_compress_all_and_summary(self, small_mesh):
        bonsai = Bonsai(small_mesh)
        results = bonsai.compress_all(limit=3)
        assert len(results) == 3
        summary = bonsai.summarize(results)
        assert summary.concrete_nodes == 6
        assert summary.mean_abstract_nodes == pytest.approx(2.0)
        assert summary.node_ratio == pytest.approx(3.0)
        row = summary.as_row()
        assert row["topology"] == "mesh-6"
        assert row["num_ecs"] == 6

    def test_summary_requires_results(self, small_mesh):
        with pytest.raises(ValueError):
            Bonsai(small_mesh).summarize([])

    def test_compress_prefix_convenience(self, small_fattree):
        bonsai = Bonsai(small_fattree)
        result = bonsai.compress_prefix(Prefix.parse("10.0.1.0/24"))
        assert result.abstract_nodes == 6

    def test_unique_roles_small_fattree(self, small_fattree):
        bonsai = Bonsai(small_fattree)
        # Shortest-path fat-tree devices differ only in whether they
        # originate a prefix, not in policy: a handful of roles.
        assert 1 <= bonsai.unique_roles() <= 3

    def test_prefer_bottom_compresses_less(self, small_fattree, small_fattree_prefer_bottom):
        plain = Bonsai(small_fattree)
        policy = Bonsai(small_fattree_prefer_bottom)
        ec_plain = plain.equivalence_classes()[0]
        ec_policy = policy.equivalence_classes()[0]
        assert policy.compress(ec_policy).abstract_nodes > plain.compress(ec_plain).abstract_nodes


class TestAbstractNetworkOutput:
    def test_abstract_network_is_valid_and_small(self, small_fattree):
        bonsai = Bonsai(small_fattree)
        ec = bonsai.equivalence_classes()[0]
        result = bonsai.compress(ec, build_network=True)
        abstract = result.abstract_network
        assert abstract is not None
        assert abstract.graph.num_nodes() == result.abstract_nodes
        assert abstract.validate() == []

    def test_abstract_network_preserves_reachability(self, small_fattree):
        """Simulating the emitted abstract configurations gives routes to the
        same destination everywhere, like the concrete network."""
        bonsai = Bonsai(small_fattree)
        ec = bonsai.equivalence_classes()[0]
        result = bonsai.compress(ec, build_network=True)
        abstract = result.abstract_network

        concrete_solution = solve(result.concrete_srp)
        abstract_srp = build_srp_from_network(abstract, ec.prefix)
        abstract_solution = solve(abstract_srp)

        concrete_routed = all(
            concrete_solution.labeling[node] is not None
            for node in small_fattree.graph.nodes
        )
        abstract_routed = all(
            abstract_solution.labeling[node] is not None
            for node in abstract.graph.nodes
        )
        assert concrete_routed and abstract_routed

    def test_abstract_network_keeps_origin_and_statics(self, small_datacenter):
        bonsai = Bonsai(small_datacenter)
        ec = bonsai.equivalence_classes()[0]
        result = bonsai.compress(ec, build_network=True)
        abstract = result.abstract_network
        assert abstract is not None
        origins = [
            name for name, dev in abstract.devices.items() if dev.originates(ec.prefix)
        ]
        assert len(origins) >= 1
