"""Unit tests for the RIP, OSPF and static protocol models (§3.2)."""

import pytest

from repro.routing import (
    OspfAttribute,
    OspfProtocol,
    RipAttribute,
    RipProtocol,
    StaticProtocol,
    build_ospf_srp,
    build_rip_srp,
    build_static_srp,
)
from repro.srp import solve
from repro.topology import Graph, chain_topology


class TestRip:
    def test_preference_is_shorter_hops(self):
        rip = RipProtocol()
        assert rip.prefer(RipAttribute(1), RipAttribute(2))
        assert not rip.prefer(RipAttribute(2), RipAttribute(2))

    def test_transfer_increments(self):
        rip = RipProtocol()
        assert rip.default_transfer(("a", "b"), RipAttribute(3)) == RipAttribute(4)
        assert rip.default_transfer(("a", "b"), None) is None

    def test_chain_solution_is_hop_count(self):
        graph, _ = chain_topology(5)
        srp = build_rip_srp(graph, "r0")
        solution = solve(srp)
        for i in range(5):
            assert solution.labeling[f"r{i}"] == RipAttribute(i)

    def test_hop_limit_creates_unreachable_nodes(self):
        graph, _ = chain_topology(20)
        srp = build_rip_srp(graph, "r0")
        solution = solve(srp)
        assert solution.labeling["r15"] == RipAttribute(15)
        assert solution.labeling["r16"] is None
        assert solution.labeling["r19"] is None

    def test_link_filter_blocks_routes(self):
        graph, _ = chain_topology(3)
        srp = build_rip_srp(graph, "r0", link_filter=lambda e: e != ("r2", "r1"))
        solution = solve(srp)
        assert solution.labeling["r1"] == RipAttribute(1)
        assert solution.labeling["r2"] is None


class TestOspf:
    def test_preference_intra_area_first(self):
        ospf = OspfProtocol()
        intra = OspfAttribute(cost=100, inter_area=False)
        inter = OspfAttribute(cost=1, inter_area=True)
        assert ospf.prefer(intra, inter)
        assert ospf.prefer(OspfAttribute(cost=1), OspfAttribute(cost=2))

    def test_link_costs_accumulate(self):
        graph = Graph()
        graph.add_undirected_edge("a", "b")
        graph.add_undirected_edge("b", "c")
        costs = {("b", "a"): 10, ("c", "b"): 5}
        srp = build_ospf_srp(graph, "a", link_costs=costs)
        solution = solve(srp)
        assert solution.labeling["b"].cost == 10
        assert solution.labeling["c"].cost == 15

    def test_least_cost_path_chosen(self):
        # a - b - d with cost 1+1, and a - c - d with cost 10+1.
        graph = Graph()
        for u, v in [("a", "b"), ("b", "d"), ("a", "c"), ("c", "d")]:
            graph.add_undirected_edge(u, v)
        costs = {("a", "b"): 1, ("b", "d"): 1, ("a", "c"): 10, ("c", "d"): 1}
        srp = build_ospf_srp(graph, "d", link_costs=costs)
        solution = solve(srp)
        assert solution.labeling["a"].cost == 2
        assert solution.next_hops("a") == {"b"}

    def test_areas_mark_inter_area_routes(self):
        graph = Graph()
        graph.add_undirected_edge("a", "b")
        graph.add_undirected_edge("b", "c")
        areas = {"a": 0, "b": 0, "c": 1}
        srp = build_ospf_srp(graph, "a", node_areas=areas)
        solution = solve(srp)
        assert not solution.labeling["b"].inter_area
        assert solution.labeling["c"].inter_area


class TestStatic:
    def test_empty_comparison_relation(self):
        static = StaticProtocol()
        a, b = static.initial_attribute("d"), static.initial_attribute("d")
        assert not static.prefer(a, b)
        assert not static.prefer(b, a)

    def test_static_routes_follow_configuration(self):
        # Figure 6: a -> b1 -> ... with static routes on a and b2 only.
        graph = Graph()
        for u, v in [("a", "b1"), ("b1", "b2"), ("b2", "d")]:
            graph.add_undirected_edge(u, v)
        srp = build_static_srp(graph, "d", static_edges=[("a", "b1"), ("b2", "d")])
        solution = solve(srp)
        assert solution.labeling["a"] is not None
        assert solution.labeling["b2"] is not None
        assert solution.labeling["b1"] is None
        assert solution.next_hops("a") == {"b1"}
        assert solution.next_hops("b2") == {"d"}
        assert solution.next_hops("b1") == set()

    def test_static_route_on_missing_edge_rejected(self):
        graph = Graph()
        graph.add_undirected_edge("a", "b")
        with pytest.raises(ValueError):
            build_static_srp(graph, "b", static_edges=[("a", "zzz")])

    def test_static_routes_can_form_loops(self):
        """Static routing is not loop free; the model must allow it (§4.2)."""
        graph = Graph()
        graph.add_undirected_edge("a", "b")
        graph.add_undirected_edge("b", "d")
        srp = build_static_srp(graph, "d", static_edges=[("a", "b"), ("b", "a")])
        solution = solve(srp)
        assert solution.next_hops("a") == {"b"}
        assert solution.next_hops("b") == {"a"}
        fwd = solution.forwarding_graph()
        assert not fwd.is_dag()
