"""Tests for the change-impact analysis subsystem (`repro.delta`)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.abstraction.ec import routable_equivalence_classes
from repro.config.prefix import Prefix
from repro.config.routemap import RouteMapClause
from repro.config.transfer import build_srp_from_network
from repro.delta import (
    ChangeError,
    ChangeSet,
    DeltaReport,
    DeltaSweep,
    DeviceAdd,
    DeviceRemove,
    LinkAdd,
    LinkRemove,
    LocalPrefOverride,
    PrefixOriginate,
    PrefixWithdraw,
    RouteMapClauseDelete,
    RouteMapClauseEdit,
    RouteMapClauseInsert,
    change_from_dict,
    delta_resolve,
    diff_network_edges,
    load_change_script,
    sweep_changes,
)
from repro.delta.revalidate import class_signature, signature_matches
from repro.netgen.base import uniform_bgp_network
from repro.netgen.changes import (
    anycast_origin_change,
    decommission_link_change,
    default_change_steps,
    generated_change_script,
    invariant_acl_change,
    prefer_neighbour_change,
    tighten_export_change,
)
from repro.netgen.families import TOPOLOGY_FAMILIES, build_topology, default_size
from repro.pipeline.cli import main as pipeline_main
from repro.srp.solver import solve
from repro.topology.builders import chain_topology


def chain_network(length: int = 5):
    graph, _ = chain_topology(length)
    return uniform_bgp_network(
        graph, f"chain-{length}", originators=[f"r{length - 1}"]
    )


# ----------------------------------------------------------------------
# ChangeSet model
# ----------------------------------------------------------------------
class TestChangeSet:
    def test_apply_does_not_mutate_and_shares_untouched_devices(self):
        network = build_topology("ring", 5)
        version_before = network.graph.version
        changeset = ChangeSet(
            changes=(LocalPrefOverride(device="r0", peer="r1", local_pref=300),)
        )
        changed = changeset.apply(network)
        assert network.graph.version == version_before
        assert "DELTA-LP-r1-300" not in network.devices["r0"].route_maps
        # Touched device copied, untouched devices shared by identity.
        assert changed.devices["r0"] is not network.devices["r0"]
        assert changed.devices["r2"] is network.devices["r2"]
        assert "DELTA-LP-r1-300" in changed.devices["r0"].route_maps

    def test_validation_reports_problems_in_order(self):
        network = build_topology("ring", 4)
        changeset = ChangeSet(
            changes=(
                LinkRemove(u="r0", v="r2"),  # not adjacent
                PrefixWithdraw(device="r9", prefix=Prefix.parse("10.0.0.0/24")),
            )
        )
        problems = changeset.validate(network)
        assert len(problems) == 2
        assert "not in the topology" in problems[0]
        with pytest.raises(ChangeError):
            changeset.apply(network)

    def test_sequential_validation_sees_earlier_changes(self):
        network = build_topology("ring", 4)
        changeset = ChangeSet(
            changes=(
                DeviceAdd(name="new0", neighbours=("r0",)),
                LinkAdd(u="new0", v="r2"),
            )
        )
        assert changeset.validate(network) == []
        changed = changeset.apply(network)
        assert changed.graph.has_edge("new0", "r2")
        assert "new0" in changed.devices

    def test_link_remove_drops_sessions(self):
        network = build_topology("ring", 4)
        changed = ChangeSet(changes=(LinkRemove(u="r0", v="r1"),)).apply(network)
        assert not changed.graph.has_edge("r0", "r1")
        assert "r1" not in changed.devices["r0"].bgp_neighbors
        assert "r0" not in changed.devices["r1"].bgp_neighbors
        assert changed.validate() == []

    def test_device_remove_cleans_neighbour_sessions(self):
        network = build_topology("ring", 5)
        changed = ChangeSet(changes=(DeviceRemove(name="r2"),)).apply(network)
        assert "r2" not in changed.devices
        assert "r2" not in changed.devices["r1"].bgp_neighbors
        assert "r2" not in changed.devices["r3"].bgp_neighbors
        assert changed.validate() == []

    def test_route_map_clause_lifecycle(self):
        network = build_topology("ring", 4)
        clause = RouteMapClause(sequence=5, action="deny")
        insert = ChangeSet(
            changes=(
                RouteMapClauseInsert(
                    device="r0", route_map="EXPORT-FILTER", clause=clause
                ),
            )
        )
        changed = insert.apply(network)
        clauses = changed.devices["r0"].route_maps["EXPORT-FILTER"].clauses
        assert clauses[0].sequence == 5 and clauses[0].action == "deny"
        # Re-inserting the same sequence is rejected; editing works.
        assert insert.validate(changed)
        edited = ChangeSet(
            changes=(
                RouteMapClauseEdit(
                    device="r0",
                    route_map="EXPORT-FILTER",
                    clause=RouteMapClause(sequence=5, action="permit"),
                ),
            )
        ).apply(changed)
        assert edited.devices["r0"].route_maps["EXPORT-FILTER"].clauses[0].action == "permit"
        deleted = ChangeSet(
            changes=(
                RouteMapClauseDelete(
                    device="r0", route_map="EXPORT-FILTER", sequence=5
                ),
            )
        ).apply(edited)
        assert all(
            c.sequence != 5
            for c in deleted.devices["r0"].route_maps["EXPORT-FILTER"].clauses
        )

    def test_originate_and_withdraw(self):
        network = chain_network(4)
        prefix = network.devices["r3"].originated_prefixes[0]
        anycast = ChangeSet(
            changes=(PrefixOriginate(device="r0", prefix=prefix),)
        ).apply(network)
        assert prefix in anycast.devices["r0"].originated_prefixes
        gone = ChangeSet(
            changes=(PrefixWithdraw(device="r3", prefix=prefix),)
        ).apply(network)
        assert prefix not in gone.devices["r3"].originated_prefixes

    def test_json_roundtrip_every_kind(self):
        network = build_topology("ring", 5)
        script = generated_change_script(network, "ring")
        extra = ChangeSet(
            changes=(
                LinkAdd(u="r0", v="r2"),
                DeviceAdd(
                    name="newdev",
                    neighbours=("r1",),
                    originated=Prefix.parse("10.9.9.0/24"),
                ),
                DeviceRemove(name="r4"),
                RouteMapClauseDelete(device="r0", route_map="EXPORT-FILTER", sequence=10),
            ),
            name="churn",
        )
        for changeset in script + [extra]:
            restored = ChangeSet.from_json(changeset.to_json())
            assert restored == changeset
            assert restored.name == changeset.name
            for change in changeset.changes:
                assert change_from_dict(change.to_dict()) == change

    def test_unknown_kind_rejected(self):
        with pytest.raises(ChangeError):
            change_from_dict({"kind": "teleport-router"})

    def test_load_change_script_formats(self):
        changeset = ChangeSet(changes=(LinkRemove(u="a", v="b"),), name="x")
        single = changeset.to_json()
        assert [cs.name for cs in load_change_script(single)] == ["x"]
        as_list = f"[{single}]"
        assert len(load_change_script(as_list)) == 1
        wrapped = f'{{"script": [{single}]}}'
        assert len(load_change_script(wrapped)) == 1
        with pytest.raises(ChangeError):
            load_change_script('"not-a-script"')


# ----------------------------------------------------------------------
# Incremental re-solve == scratch rebuild
# ----------------------------------------------------------------------
def _first_class(network):
    return routable_equivalence_classes(network)[0]


def _resolve_pair(network, changed, prefix, origins):
    """(incremental solution, scratch solution) for one changed network."""
    baseline = solve(build_srp_from_network(network, prefix, set(origins)))
    diff = diff_network_edges(network, changed, prefix)
    result = delta_resolve(
        build_srp_from_network(changed, prefix, set(origins)), baseline, diff
    )
    scratch = solve(build_srp_from_network(changed, prefix, set(origins)))
    return result, scratch


class TestDeltaResolve:
    def test_route_map_tightening_matches_scratch(self):
        network = build_topology("fattree", 4)
        changeset = tighten_export_change(network, random.Random(0))
        changed = changeset.apply(network)
        ec = _first_class(network)
        result, scratch = _resolve_pair(network, changed, ec.prefix, ec.origins)
        assert result.incremental_used
        assert result.solution.labeling == scratch.labeling

    def test_invariant_change_has_empty_diff(self):
        network = build_topology("fattree", 4)
        changeset = invariant_acl_change(network, random.Random(0))
        changed = changeset.apply(network)
        ec = _first_class(network)
        diff = diff_network_edges(network, changed, ec.prefix)
        assert diff.is_empty()
        result, scratch = _resolve_pair(network, changed, ec.prefix, ec.origins)
        assert result.tainted == frozenset() and result.solution.labeling == scratch.labeling

    def test_link_and_device_churn_matches_scratch(self):
        network = build_topology("ring", 6)
        changeset = ChangeSet(
            changes=(
                LinkRemove(u="r1", v="r2"),
                DeviceAdd(name="newdev", neighbours=("r0", "r3")),
            )
        )
        changed = changeset.apply(network)
        ec = _first_class(network)
        result, scratch = _resolve_pair(network, changed, ec.prefix, ec.origins)
        assert result.solution.labeling == scratch.labeling
        assert result.solution.labeling.get("newdev") is not None

    @pytest.mark.parametrize("family", sorted(TOPOLOGY_FAMILIES))
    def test_generated_scripts_label_identical_to_scratch(self, family):
        """The sweep's oracle comparison across every netgen family."""
        network = build_topology(family, default_size(family))
        script = generated_change_script(network, family)
        report = DeltaSweep(
            network,
            script=script,
            executor="serial",
            revalidate=False,
            oracle=True,
            limit=3,
        ).run()
        assert report.incremental_all_match(), report.incremental_divergences()
        used = [
            o.incremental_used
            for r in report.records
            for o in r.steps
            if not (o.unroutable or o.origins_changed)
        ]
        assert used and all(used)

    @settings(max_examples=20, deadline=None)
    @given(
        family=st.sampled_from(sorted(TOPOLOGY_FAMILIES)),
        data=st.data(),
    )
    def test_random_changes_label_identical_to_scratch(self, family, data):
        """Hypothesis parity: ChangeSet.apply + incremental re-solve is
        label-identical to rebuilding the mutated network from scratch."""
        network = build_topology(family, default_size(family))
        rng = random.Random(data.draw(st.integers(min_value=0, max_value=2**16)))
        samplers = [
            invariant_acl_change,
            tighten_export_change,
            prefer_neighbour_change,
            decommission_link_change,
            anycast_origin_change,
        ]
        picked = data.draw(st.sampled_from(samplers))
        changeset = picked(network, rng)
        if changeset is None:
            return
        changed = changeset.apply(network)
        for ec in routable_equivalence_classes(network)[:2]:
            origins = set(ec.origins)
            changed_origins = {
                candidate.origins
                for candidate in routable_equivalence_classes(changed)
                if candidate.prefix == ec.prefix
            }
            if changed_origins != {frozenset(origins)}:
                continue  # origin set changed; the sweep scratch-solves
            result, scratch = _resolve_pair(network, changed, ec.prefix, origins)
            assert result.solution.labeling == scratch.labeling


# ----------------------------------------------------------------------
# Abstraction revalidation
# ----------------------------------------------------------------------
class TestRevalidation:
    def test_invariant_change_reuses_every_class(self):
        """The acceptance showcase: a compression-invariant change reuses
        the baseline abstraction with zero re-compressed classes."""
        network = build_topology("fattree", 4)
        changeset = invariant_acl_change(network, random.Random(0))
        report = DeltaSweep(network, script=[changeset], executor="serial").run()
        counts = report.reuse_counts()
        assert counts["recompressed"] == 0
        assert counts["reused"] == counts["checked"] > 0
        assert counts["disagreed"] == 0
        assert report.ok()

    def test_tightening_dirties_only_the_target_class(self):
        network = build_topology("fattree", 4)
        changeset = tighten_export_change(network, random.Random(0))
        target = str(changeset.changes[0].entries[0].prefix)
        report = DeltaSweep(network, script=[changeset], executor="serial").run()
        for record in report.records:
            outcome = record.steps[0]
            assert outcome.abstract_agrees() is True
            if record.prefix == target:
                assert outcome.recompressed and not outcome.reused
            else:
                assert outcome.reused and not outcome.recompressed

    def test_topology_change_recompresses_and_agrees(self):
        network = build_topology("ring", 5)
        changeset = decommission_link_change(network, random.Random(0))
        report = DeltaSweep(network, script=[changeset], executor="serial").run()
        outcomes = [o for r in report.records for o in r.steps]
        assert outcomes and all(o.recompressed for o in outcomes)
        assert all(o.abstract_agrees() is True for o in outcomes)
        assert "topology changed" in outcomes[0].revalidation["reason"]

    def test_signature_reports_reasons(self):
        network = build_topology("ring", 4)
        ec = _first_class(network)
        base = class_signature(network, ec.prefix, ec.origins)
        assert signature_matches(base, base) == ""
        changed = ChangeSet(
            changes=(LocalPrefOverride(device="r0", peer="r1", local_pref=250),)
        ).apply(network)
        reason = signature_matches(
            base, class_signature(changed, ec.prefix, ec.origins)
        )
        assert reason  # keys and local-pref sets both change; any reason works


# ----------------------------------------------------------------------
# Sweep driver and report
# ----------------------------------------------------------------------
class TestDeltaSweep:
    def test_report_json_roundtrip(self):
        network = build_topology("ring", 4)
        script = generated_change_script(network, "ring")
        report = DeltaSweep(network, script=script, executor="serial").run()
        restored = DeltaReport.from_json(report.to_json())
        assert restored.canonical_records() == report.canonical_records()
        assert restored.num_steps == report.num_steps
        assert restored.ok() == report.ok()
        data = report.to_dict()
        assert "aggregate" in data
        assert data["aggregate"]["incremental_all_match"] is True

    def test_first_breaking_change_and_witnesses(self):
        network = chain_network(5)
        prefix = network.devices["r4"].originated_prefixes[0]
        script = [
            ChangeSet(
                changes=(LocalPrefOverride(device="r1", peer="r2", local_pref=300),),
                name="benign",
            ),
            ChangeSet(
                changes=(PrefixWithdraw(device="r4", prefix=prefix),),
                name="withdraw",
            ),
        ]
        report = DeltaSweep(network, script=script, executor="serial").run()
        first = report.first_breaking_change()
        assert first["reachability"] == "withdraw"
        prop, step = report.first_property_broken()
        assert step == "withdraw"
        outcome = report.records[0].steps[1]
        assert outcome.unroutable
        assert set(outcome.newly_failing["reachability"]) >= {"r0", "r1"}

    def test_anycast_origin_change_uses_scratch(self):
        network = build_topology("ring", 5)
        changeset = anycast_origin_change(network, random.Random(0))
        assert changeset is not None
        report = DeltaSweep(network, script=[changeset], executor="serial").run()
        target = str(changeset.changes[0].prefix)
        for record in report.records:
            outcome = record.steps[0]
            if record.prefix == target:
                assert outcome.origins_changed and not outcome.incremental_used
            else:
                assert outcome.incremental_used
        assert report.ok()

    def test_added_device_verdicts_reach_the_report(self):
        """A device commissioned broken must show up as newly failing."""
        network = build_topology("ring", 4)
        changeset = ChangeSet(
            changes=(
                DeviceAdd(name="stranded", neighbours=("r0",)),
                LinkRemove(u="stranded", v="r0"),  # commissioned isolated
            ),
            name="strand",
        )
        report = DeltaSweep(network, script=[changeset], executor="serial").run()
        assert report.incremental_all_match()
        failing = {
            node
            for record in report.records
            for node in record.steps[0].newly_failing.get("reachability", [])
        }
        assert "stranded" in failing
        assert report.first_breaking_change()["reachability"] == "strand"

    def test_thread_executor_matches_serial(self):
        network = build_topology("ring", 6)
        script = generated_change_script(network, "ring")
        serial = DeltaSweep(network, script=script, executor="serial").run()
        threaded = DeltaSweep(
            network, script=script, executor="thread", workers=2
        ).run()
        assert serial.canonical_records() == threaded.canonical_records()

    def test_process_executor_matches_serial(self):
        network = build_topology("ring", 4)
        script = generated_change_script(network, "ring", steps=2)
        serial = DeltaSweep(network, script=script, executor="serial").run()
        process = DeltaSweep(
            network, script=script, executor="process", workers=2
        ).run()
        assert serial.canonical_records() == process.canonical_records()

    def test_sweep_changes_convenience(self):
        network = chain_network(4)
        changeset = ChangeSet(
            changes=(LocalPrefOverride(device="r0", peer="r1", local_pref=200),)
        )
        report = sweep_changes(network, [changeset], properties=["reachability"])
        assert report.properties == ["reachability"]
        assert report.ok()

    def test_invalid_script_rejected_up_front(self):
        network = build_topology("ring", 4)
        with pytest.raises(ChangeError):
            DeltaSweep(
                network,
                script=[ChangeSet(changes=(LinkRemove(u="r0", v="r2"),))],
            )
        with pytest.raises(ValueError):
            DeltaSweep(network, script=[])

    def test_no_oracle_skips_scratch(self):
        network = chain_network(4)
        changeset = ChangeSet(
            changes=(LocalPrefOverride(device="r0", peer="r1", local_pref=200),)
        )
        report = DeltaSweep(
            network, script=[changeset], executor="serial", oracle=False,
            revalidate=False,
        ).run()
        outcomes = [o for r in report.records for o in r.steps]
        assert all(o.incremental_matches_scratch is None for o in outcomes)
        assert report.scratch_seconds == 0
        assert report.ok()

    def test_speedup_needs_both_arms(self):
        network = build_topology("fattree", 4)
        changeset = invariant_acl_change(network, random.Random(0))
        with_arms = DeltaSweep(
            network, script=[changeset], executor="serial"
        ).run()
        assert with_arms.incremental_speedup is not None
        without = DeltaSweep(
            network,
            script=[changeset],
            executor="serial",
            rebuild_oracle=False,
        ).run()
        assert without.incremental_speedup is None

    def test_default_change_steps(self):
        assert default_change_steps("fattree") == 4
        assert default_change_steps("mesh") == 3


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestDeltaCli:
    def test_delta_smoke_generated(self, tmp_path, capsys):
        out = tmp_path / "delta.json"
        status = pipeline_main(
            [
                "--delta",
                "--family",
                "ring",
                "--size",
                "5",
                "--executor",
                "serial",
                "--report-out",
                str(out),
            ]
        )
        assert status == 0
        report = DeltaReport.from_json(out.read_text())
        assert report.num_steps >= 1
        assert "change-impact sweep: ring(5)" in capsys.readouterr().out

    def test_delta_with_script_file(self, tmp_path):
        network = build_topology("ring", 4)
        changeset = ChangeSet(
            changes=(LocalPrefOverride(device="r0", peer="r1", local_pref=300),),
            name="scripted",
        )
        script_file = tmp_path / "changes.json"
        script_file.write_text(f"[{changeset.to_json()}]")
        out = tmp_path / "delta.json"
        status = pipeline_main(
            [
                "--delta",
                "--family",
                "ring",
                "--size",
                "4",
                "--executor",
                "serial",
                "--changes",
                str(script_file),
                "--output",
                str(out),
            ]
        )
        assert status == 0
        report = DeltaReport.from_json(out.read_text())
        assert report.step_names == ["scripted"]

    def test_delta_rejects_broken_script_file(self, tmp_path, capsys):
        script_file = tmp_path / "changes.json"
        script_file.write_text('[{"kind": "nonsense"}]')
        status = pipeline_main(
            ["--delta", "--family", "ring", "--size", "4", "--changes", str(script_file)]
        )
        assert status == 2
        assert "change script" in capsys.readouterr().err

    def test_delta_flags_require_mode(self, capsys):
        assert pipeline_main(["--topo", "ring", "--changes", "generated"]) == 2
        assert "--delta" in capsys.readouterr().err
        assert pipeline_main(["--topo", "ring", "--no-revalidate"]) == 2
        assert "--delta" in capsys.readouterr().err

    def test_cross_mode_flags_rejected(self, capsys):
        """A mode must reject the other modes' flags, not drop them."""
        assert (
            pipeline_main(["--failures", "--topo", "ring", "--changes", "x.json"])
            == 2
        )
        assert "--delta" in capsys.readouterr().err
        assert pipeline_main(["--delta", "--topo", "ring", "--k", "2"]) == 2
        assert "--failures" in capsys.readouterr().err
        assert pipeline_main(["--verify", "--topo", "ring", "--sample", "3"]) == 2
        assert "--failures" in capsys.readouterr().err

    def test_steps_and_seed_rejected_with_script_file(self, tmp_path, capsys):
        network = build_topology("ring", 4)
        changeset = ChangeSet(
            changes=(LocalPrefOverride(device="r0", peer="r1", local_pref=300),)
        )
        script_file = tmp_path / "changes.json"
        script_file.write_text(f"[{changeset.to_json()}]")
        assert (
            pipeline_main(
                [
                    "--delta",
                    "--topo",
                    "ring",
                    "--changes",
                    str(script_file),
                    "--steps",
                    "2",
                ]
            )
            == 2
        )
        assert "--steps" in capsys.readouterr().err

    def test_modes_are_exclusive(self, capsys):
        assert pipeline_main(["--delta", "--failures", "--topo", "ring"]) == 2
        assert "at most one" in capsys.readouterr().err
