"""Tests for the failure-scenario analysis subsystem (`repro.failures`)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.abstraction.ec import routable_equivalence_classes
from repro.config.transfer import build_srp_from_network
from repro.failures import (
    FailureReport,
    FailureScenario,
    FailureSweep,
    ScenarioError,
    abstract_scenario_for,
    canonical_link,
    enumerate_link_failures,
    incremental_resolve,
    link_scenario,
    node_scenario,
    points_of_interest,
    sample_link_failures,
    scenarios_for,
    sweep_network,
    undirected_links,
)
from repro.failures.incremental import BaselineIndex, tainted_nodes
from repro.netgen.base import uniform_bgp_network
from repro.netgen.families import (
    TOPOLOGY_FAMILIES,
    build_topology,
    default_failure_sample,
    default_size,
)
from repro.pipeline.cli import main as pipeline_main
from repro.srp.solver import solve
from repro.topology.builders import chain_topology


def chain_network(length: int = 5):
    graph, _ = chain_topology(length)
    return uniform_bgp_network(
        graph, f"chain-{length}", originators=[f"r{length - 1}"]
    )


# ----------------------------------------------------------------------
# Scenario model
# ----------------------------------------------------------------------
class TestFailureScenario:
    def test_links_are_canonicalised(self):
        assert FailureScenario(links=frozenset({("b", "a")})) == FailureScenario(
            links=frozenset({("a", "b")})
        )
        assert canonical_link("z", "a") == ("a", "z")

    def test_name_and_describe_are_deterministic(self):
        scenario = FailureScenario(
            links=frozenset({("b", "a")}), nodes=frozenset({"c"})
        )
        assert scenario.name == "link:a|b+node:c"
        assert FailureScenario().describe() == "baseline"

    def test_wire_form_roundtrip(self):
        scenario = FailureScenario(
            links=frozenset({("a", "b"), ("c", "d")}), nodes=frozenset({"x"})
        )
        assert FailureScenario.from_dict(scenario.to_dict()) == scenario

    def test_validation_rejects_unknown_elements(self):
        network = build_topology("ring", 4)
        link_scenario("r0", "r1").assert_valid(network)
        with pytest.raises(ScenarioError):
            link_scenario("r0", "r2").assert_valid(network)  # not adjacent
        with pytest.raises(ScenarioError):
            node_scenario("nope").assert_valid(network)

    def test_apply_does_not_mutate_the_original(self):
        network = build_topology("ring", 5)
        edges_before = sorted(network.graph.edges)
        version_before = network.graph.version
        failed = link_scenario("r0", "r1").apply(network)
        assert sorted(network.graph.edges) == edges_before
        assert network.graph.version == version_before
        assert not failed.graph.has_edge("r0", "r1")
        assert not failed.graph.has_edge("r1", "r0")
        # The view shares device configurations (links fail, configs don't).
        assert failed.devices["r2"] is network.devices["r2"]

    def test_apply_node_failure_removes_device_and_incident_links(self):
        network = build_topology("ring", 5)
        failed = node_scenario("r2").apply(network)
        assert not failed.graph.has_node("r2")
        assert "r2" not in failed.devices
        assert "r2" not in failed.graph.successors("r1")
        assert network.graph.has_node("r2")

    def test_directed_edges_cover_both_orientations_and_node_incidence(self):
        network = build_topology("ring", 4)
        removed = node_scenario("r0").directed_edges(network.graph)
        assert ("r0", "r1") in removed and ("r1", "r0") in removed
        assert ("r3", "r0") in removed and ("r0", "r3") in removed


class TestEnumerators:
    def test_k1_enumerates_every_link_once(self):
        network = build_topology("ring", 6)
        scenarios = enumerate_link_failures(network, k=1)
        assert len(scenarios) == len(undirected_links(network)) == 6
        assert len({s.name for s in scenarios}) == 6

    def test_k2_counts_and_ordering(self):
        network = build_topology("ring", 5)
        scenarios = enumerate_link_failures(network, k=2)
        # C(5,1) + C(5,2) = 15, sizes ascending.
        assert len(scenarios) == 15
        assert [s.size for s in scenarios] == [1] * 5 + [2] * 10

    def test_include_nodes_adds_node_scenarios(self):
        network = build_topology("ring", 4)
        scenarios = enumerate_link_failures(network, k=1, include_nodes=True)
        kinds = {(bool(s.links), bool(s.nodes)) for s in scenarios}
        assert len(scenarios) == 8 and kinds == {(True, False), (False, True)}

    def test_sampling_is_deterministic_and_within_budget(self):
        network = build_topology("mesh", 6)
        a = sample_link_failures(network, k=2, count=10, seed=7)
        b = sample_link_failures(network, k=2, count=10, seed=7)
        c = sample_link_failures(network, k=2, count=10, seed=8)
        assert [s.name for s in a] == [s.name for s in b]
        assert [s.name for s in a] != [s.name for s in c]
        assert len(a) == 10 and len({s.name for s in a}) == 10
        assert all(1 <= s.size <= 2 for s in a)

    def test_small_spaces_fall_back_to_exhaustive(self):
        network = build_topology("ring", 4)
        assert sample_link_failures(network, k=1, count=100) == enumerate_link_failures(
            network, k=1
        )

    def test_points_of_interest_are_valid_and_named(self):
        network = build_topology("fattree", 4)
        interest = points_of_interest(network)
        assert "hub-node" in interest and "busiest-link" in interest
        for name, scenario in interest.items():
            assert scenario.validate(network) == []
            assert scenario.name

    def test_scenarios_for_prepends_named_and_dedups(self):
        network = build_topology("ring", 4)
        named = [link_scenario("r0", "r1")]
        scenarios = scenarios_for(network, k=1, named=named)
        assert scenarios[0].links == named[0].links
        assert len(scenarios) == 4  # no duplicate of r0|r1

    def test_family_defaults(self):
        assert default_failure_sample("fattree", 1) is None
        assert default_failure_sample("mesh", 1) is None
        assert default_failure_sample("mesh", 2) == 24
        with pytest.raises(ValueError):
            default_failure_sample("nope")


# ----------------------------------------------------------------------
# Incremental re-solve == scratch oracle
# ----------------------------------------------------------------------
def _class_and_srp(network, scenario):
    ec = routable_equivalence_classes(network)[0]
    failed = scenario.apply(network)
    origins = {o for o in ec.origins if str(o) not in scenario.nodes}
    srp = build_srp_from_network(failed, ec.prefix, origins)
    return ec, failed, origins, srp


class TestIncrementalResolve:
    @pytest.mark.parametrize("family", sorted(TOPOLOGY_FAMILIES))
    def test_label_identical_to_scratch_on_every_family(self, family):
        """The sweep's oracle comparison across every netgen family."""
        network = build_topology(family, default_size(family))
        sample = 8 if family == "mesh" else None
        report = FailureSweep(
            network,
            k=1,
            sample=sample,
            executor="serial",
            soundness=False,
            oracle=True,
        ).run()
        assert report.incremental_all_match(), report.incremental_divergences()
        # The incremental path actually ran (not the scratch fallback).
        used = [
            o.incremental_used for r in report.records for o in r.scenarios
            if not o.unroutable
        ]
        assert used and all(used)

    def test_tainted_nodes_follow_baseline_forwarding(self):
        network = chain_network(5)
        ec = routable_equivalence_classes(network)[0]
        srp = build_srp_from_network(network, ec.prefix, set(ec.origins))
        baseline = solve(srp)
        # Failing the link next to the origin taints the whole upstream chain.
        tainted = tainted_nodes(baseline, frozenset({("r3", "r4"), ("r4", "r3")}))
        assert tainted == {"r0", "r1", "r2", "r3"}
        # Failing the far end taints only the disconnected node.
        tainted = tainted_nodes(baseline, frozenset({("r0", "r1"), ("r1", "r0")}))
        assert tainted == {"r0"}

    def test_incremental_resolve_matches_scratch_and_reports_stats(self):
        network = chain_network(6)
        scenario = link_scenario("r2", "r3")
        ec, failed, origins, inc_srp = _class_and_srp(network, scenario)
        baseline = solve(
            build_srp_from_network(network, ec.prefix, set(ec.origins))
        )
        removed = scenario.directed_edges(network.graph)
        result = incremental_resolve(inc_srp, baseline, removed)
        scratch = solve(build_srp_from_network(failed, ec.prefix, origins))
        assert result.incremental_used
        assert result.solution.labeling == scratch.labeling
        assert result.tainted == frozenset({"r0", "r1", "r2"})
        assert result.dirty_count >= len(result.tainted)

    def test_baseline_index_matches_direct_computation(self):
        network = build_topology("fattree", 4)
        ec = routable_equivalence_classes(network)[0]
        baseline = solve(build_srp_from_network(network, ec.prefix, set(ec.origins)))
        index = BaselineIndex.from_solution(baseline)
        for link in undirected_links(network)[:6]:
            removed = link_scenario(*link).directed_edges(network.graph)
            assert tainted_nodes(baseline, removed) == tainted_nodes(
                baseline, removed, index=index
            )

    @settings(max_examples=25, deadline=None)
    @given(
        family=st.sampled_from(sorted(TOPOLOGY_FAMILIES)),
        data=st.data(),
    )
    def test_random_scenarios_label_identical_to_scratch(self, family, data):
        """Hypothesis parity: random ≤2-failure scenarios, every family."""
        network = build_topology(family, default_size(family))
        links = undirected_links(network)
        chosen = data.draw(
            st.lists(st.sampled_from(links), min_size=1, max_size=2, unique=True)
        )
        nodes = [str(n) for n in network.graph.nodes]
        failed_nodes = data.draw(
            st.lists(st.sampled_from(nodes), min_size=0, max_size=1, unique=True)
        )
        scenario = FailureScenario(
            links=frozenset(chosen), nodes=frozenset(failed_nodes)
        )
        for ec in routable_equivalence_classes(network)[:2]:
            origins = {o for o in ec.origins if str(o) not in scenario.nodes}
            if not origins:
                continue
            failed = scenario.apply(network)
            baseline = solve(
                build_srp_from_network(network, ec.prefix, set(ec.origins))
            )
            scratch = solve(build_srp_from_network(failed, ec.prefix, origins))
            if origins != set(ec.origins):
                continue  # destination structure changed; sweep uses scratch
            result = incremental_resolve(
                build_srp_from_network(failed, ec.prefix, origins),
                baseline,
                scenario.directed_edges(network.graph),
                frozenset(scenario.nodes),
            )
            assert result.solution.labeling == scratch.labeling


# ----------------------------------------------------------------------
# Abstraction soundness
# ----------------------------------------------------------------------
class TestSoundness:
    def test_chain_scenarios_are_sound_and_agree(self):
        """An incompressible network: every scenario is representable."""
        report = FailureSweep(chain_network(5), k=1, executor="serial").run()
        outcomes = [o for r in report.records for o in r.scenarios]
        assert outcomes and all(o.sound_under_failure for o in outcomes)
        assert all(o.abstract_agrees() for o in outcomes)

    @pytest.mark.parametrize("family", ["fattree", "ring", "wan"])
    def test_sound_scenarios_give_identical_verdicts(self, family):
        """The satellite requirement: sound_under_failure=True implies the
        lifted abstract verdicts equal the concrete ones; unsound
        scenarios must agree after per-scenario re-compression."""
        network = build_topology(family, default_size(family))
        report = FailureSweep(network, k=1, executor="serial").run()
        for record in report.records:
            for outcome in record.scenarios:
                if outcome.unroutable:
                    continue
                assert outcome.sound_under_failure is not None
                assert outcome.abstract_agrees() is True, (
                    record.prefix,
                    outcome.scenario,
                    outcome.soundness,
                )
                if not outcome.sound_under_failure:
                    assert outcome.soundness["recompressed"]
                    assert outcome.soundness["reason"]

    def test_sibling_edge_blocks_representability(self):
        """A fat-tree aggregates parallel links: failing one of them is not
        expressible on the abstract topology."""
        network = build_topology("fattree", 4)
        from repro.abstraction.bonsai import Bonsai

        bonsai = Bonsai(network)
        ec = routable_equivalence_classes(network)[0]
        result = bonsai.compress(ec, build_network=True)
        groups = [g for g in result.abstraction.groups() if len(g) > 1]
        assert groups, "fat-tree classes are expected to compress"
        scenario = enumerate_link_failures(network, k=1)[0]
        mapped, reason = abstract_scenario_for(
            result.abstraction, network, scenario
        )
        # With >1-member groups around, at least the checker must give a
        # concrete reason whenever it rejects.
        assert (mapped is None) == bool(reason)

    def test_edge_preimages_invalidate_on_graph_mutation(self):
        """The preimage memo must track the graph's mutation counter."""
        network = build_topology("ring", 5)
        from repro.abstraction.bonsai import Bonsai

        bonsai = Bonsai(network)
        ec = routable_equivalence_classes(network)[0]
        abstraction = bonsai.compress(ec, build_network=False).abstraction
        before = abstraction.edge_preimages(network.graph)
        assert abstraction.edge_preimages(network.graph) is before  # memo hit
        network.graph.remove_edge("r0", "r1")
        network.graph.remove_edge("r1", "r0")
        after = abstraction.edge_preimages(network.graph)
        assert after is not before
        assert all(("r0", "r1") not in links for links in after.values())

    def test_identity_abstraction_maps_scenarios_one_to_one(self):
        network = chain_network(4)
        from repro.abstraction.bonsai import Bonsai

        bonsai = Bonsai(network)
        ec = routable_equivalence_classes(network)[0]
        result = bonsai.compress(ec, build_network=True)
        scenario = link_scenario("r1", "r2")
        mapped, reason = abstract_scenario_for(
            result.abstraction, network, scenario
        )
        assert reason == "" and mapped is not None
        assert len(mapped.links) == 1


# ----------------------------------------------------------------------
# Sweep driver and report
# ----------------------------------------------------------------------
class TestFailureSweep:
    def test_report_json_roundtrip(self):
        report = FailureSweep(chain_network(4), k=1, executor="serial").run()
        restored = FailureReport.from_json(report.to_json())
        assert restored.canonical_records() == report.canonical_records()
        assert restored.num_scenarios == report.num_scenarios
        assert restored.incremental_all_match() == report.incremental_all_match()
        data = report.to_dict()
        assert "aggregate" in data
        assert data["aggregate"]["incremental_all_match"] is True

    def test_verdict_deltas_and_first_failing_scenario(self):
        report = FailureSweep(chain_network(5), k=1, executor="serial").run()
        first = report.first_failing_scenario()
        assert first["reachability"] == "link:r0|r1"
        outcome = report.records[0].scenarios[0]
        assert outcome.newly_failing["reachability"] == ["r0"]
        counts = report.property_failure_counts()
        assert counts["reachability"] == 4
        # Each broken property carries one structured witness.
        witness = outcome.witnesses["reachability"]
        assert witness["path"] == ["r0"]  # r0 is cut off entirely

    def test_unroutable_when_every_origin_fails(self):
        network = chain_network(4)
        report = FailureSweep(
            network,
            scenarios=[node_scenario("r3")],  # the only originator
            executor="serial",
        ).run()
        outcome = report.records[0].scenarios[0]
        assert outcome.unroutable and not outcome.incremental_used
        assert set(outcome.newly_failing["reachability"]) == {"r0", "r1", "r2"}

    def test_node_failure_with_surviving_origins_uses_scratch(self):
        graph, _ = chain_topology(4)
        network = uniform_bgp_network(graph, "chain-2o", originators=["r0"])
        # Anycast the same prefix from both ends: the class then has two
        # origins and can survive losing one of them.
        prefix = network.devices["r0"].originated_prefixes[0]
        network.devices["r3"].originated_prefixes.append(prefix)
        report = FailureSweep(
            network, scenarios=[node_scenario("r0")], executor="serial"
        ).run()
        outcomes = [
            o
            for r in report.records
            for o in r.scenarios
            if "r0" in r.origins and not o.unroutable
        ]
        assert outcomes
        # Origin set changed: the scratch path serves the solution.
        assert all(not o.incremental_used for o in outcomes)

    def test_thread_executor_matches_serial(self):
        network = build_topology("ring", 6)
        serial = FailureSweep(
            network, k=1, executor="serial", soundness=False
        ).run()
        threaded = FailureSweep(
            network, k=1, executor="thread", workers=2, soundness=False
        ).run()
        assert serial.canonical_records() == threaded.canonical_records()

    def test_process_executor_matches_serial(self):
        network = build_topology("ring", 4)
        serial = FailureSweep(
            network, k=1, executor="serial", soundness=False
        ).run()
        process = FailureSweep(
            network, k=1, executor="process", workers=2, soundness=False
        ).run()
        assert serial.canonical_records() == process.canonical_records()

    def test_sweep_network_convenience(self):
        report = sweep_network(
            chain_network(4), k=1, properties=["reachability"]
        )
        assert report.properties == ["reachability"]
        assert report.ok()

    def test_explicit_scenarios_are_validated(self):
        network = build_topology("ring", 4)
        with pytest.raises(ScenarioError):
            FailureSweep(network, scenarios=[link_scenario("r0", "r2")])

    def test_speedup_is_reported_when_oracle_runs(self):
        report = FailureSweep(
            build_topology("fattree", 4), k=1, executor="serial", soundness=False
        ).run()
        assert report.incremental_speedup is not None
        assert report.scratch_seconds > 0 and report.incremental_seconds > 0

    def test_no_oracle_skips_scratch(self):
        report = FailureSweep(
            chain_network(4), k=1, executor="serial", oracle=False, soundness=False
        ).run()
        outcomes = [o for r in report.records for o in r.scenarios]
        assert all(o.incremental_matches_scratch is None for o in outcomes)
        assert report.scratch_seconds == 0
        assert report.ok()  # no divergence recorded means the gate passes


# ----------------------------------------------------------------------
# k-resilience over the sweep records
# ----------------------------------------------------------------------
class TestKResilience:
    def test_chain_has_no_resilient_node(self):
        """Every node of a chain depends on every downstream link."""
        report = FailureSweep(
            chain_network(5), k=1, executor="serial", soundness=False
        ).run()
        resilience = report.k_resilience()
        assert resilience["complete"] is True and resilience["k"] == 1
        entry = resilience["per_class"][report.records[0].prefix]
        # Only the origin itself (which reaches itself trivially) survives
        # every cut; every transit node depends on its downstream chain.
        assert entry["resilient"] == ["r4"]
        # r0's first break is losing its only link (sweep order).
        assert entry["fragile"]["r0"] == "link:r0|r1"
        assert set(entry["fragile"]) == {"r0", "r1", "r2", "r3"}

    def test_fattree_single_link_resilience(self):
        """Multipath fabrics survive any single cut except origin stubs."""
        network = build_topology("fattree", 4)
        report = FailureSweep(
            network, k=1, executor="serial", soundness=False, limit=2
        ).run()
        for record in report.records:
            entry = report.k_resilience()["per_class"][record.prefix]
            # The fabric is 2-connected above the edge tier: most nodes
            # keep reachability under every single-link cut.
            assert entry["resilient"], (record.prefix, entry)
        assert report.k_resilient_nodes()  # convenience accessor agrees
        aggregate = report.to_dict()["aggregate"]
        assert aggregate["k_resilience"]["complete"] is True

    def test_sampled_sweeps_are_flagged_incomplete(self):
        network = build_topology("mesh", 6)
        report = FailureSweep(
            network, k=2, sample=5, executor="serial", soundness=False, limit=1
        ).run()
        assert report.exhaustive is False
        assert report.k_resilience()["complete"] is False
        assert any(
            "upper bound" in line for line in report.summary_lines()
        )

    def test_resilience_survives_json_roundtrip(self):
        report = FailureSweep(
            chain_network(4), k=1, executor="serial", soundness=False
        ).run()
        restored = FailureReport.from_json(report.to_json())
        assert restored.k_resilience() == report.k_resilience()


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestFailuresCli:
    def test_failures_smoke(self, tmp_path, capsys):
        out = tmp_path / "failures.json"
        status = pipeline_main(
            [
                "--failures",
                "--family",
                "ring",
                "--size",
                "5",
                "--executor",
                "serial",
                "--output",
                str(out),
            ]
        )
        assert status == 0
        report = FailureReport.from_json(out.read_text())
        assert report.num_scenarios == 5
        assert "failure sweep: ring(5)" in capsys.readouterr().out

    def test_failures_flags_require_mode(self, capsys):
        assert pipeline_main(["--topo", "ring", "--sample", "3"]) == 2
        assert "--failures" in capsys.readouterr().err
        # --k and --seed are guarded too, not silently ignored.
        assert pipeline_main(["--topo", "ring", "--k", "2"]) == 2
        assert "--k" in capsys.readouterr().err
        assert pipeline_main(["--topo", "ring", "--seed", "5"]) == 2
        assert "--seed" in capsys.readouterr().err

    def test_verify_and_failures_are_exclusive(self, capsys):
        assert pipeline_main(["--verify", "--failures", "--topo", "ring"]) == 2

    def test_timeout_rejected_in_failures_mode(self, capsys):
        assert (
            pipeline_main(
                ["--failures", "--topo", "ring", "--size", "4", "--timeout", "5"]
            )
            == 2
        )

    def test_properties_flag_works_with_failures(self, tmp_path):
        status = pipeline_main(
            [
                "--failures",
                "--family",
                "ring",
                "--size",
                "4",
                "--executor",
                "serial",
                "--properties",
                "reachability",
                "--no-soundness",
            ]
        )
        assert status == 0
