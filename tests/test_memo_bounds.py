"""Memo-bound satellites: bounded caches with counters, fingerprint
invalidation of the ``Network``-level memos under topology mutation."""

from __future__ import annotations

import pytest

from repro.abstraction.ec import routable_equivalence_classes
from repro.config.transfer import build_srp_from_network
from repro.failures.incremental import BaselineIndex, tainted_nodes
from repro.failures.scenario import link_scenario, undirected_links
from repro.netgen.families import build_topology
from repro.srp.solver import TransferCache, solve
from repro.topology.graph import Graph


# ----------------------------------------------------------------------
# Solver transfer memo
# ----------------------------------------------------------------------
class TestTransferCache:
    def test_counters_and_bound(self):
        cache = TransferCache(limit=4)
        assert cache.info() == {
            "size": 0,
            "limit": 4,
            "hits": 0,
            "misses": 0,
            "overflows": 0,
        }
        with pytest.raises(ValueError):
            TransferCache(limit=0)

    def test_solve_fills_cache_and_counts(self):
        network = build_topology("ring", 6)
        ec = routable_equivalence_classes(network)[0]
        srp = build_srp_from_network(network, ec.prefix, set(ec.origins))
        solution = solve(srp)
        cache = solution.transfer_cache
        assert isinstance(cache, TransferCache)
        info = cache.info()
        assert info["misses"] > 0 and info["size"] > 0
        # Re-solving with the warmed cache is almost all hits.
        warmed = solve(srp, transfer_cache=cache)
        assert warmed.transfer_cache is cache
        assert cache.hits > 0

    def test_clear_on_overflow(self):
        network = build_topology("ring", 6)
        ec = routable_equivalence_classes(network)[0]
        srp = build_srp_from_network(network, ec.prefix, set(ec.origins))
        small = TransferCache(limit=8)
        solve(srp, transfer_cache=small)
        assert small.overflows > 0
        assert len(small) <= 8

    def test_overflowing_result_is_still_correct(self):
        network = build_topology("fattree", 4)
        ec = routable_equivalence_classes(network)[0]
        srp = build_srp_from_network(network, ec.prefix, set(ec.origins))
        bounded = solve(srp, transfer_cache=TransferCache(limit=5))
        assert bounded.labeling == solve(srp).labeling

    def test_seeded_from_respects_limit(self):
        donor = TransferCache()
        for i in range(10):
            donor[i] = i
        assert len(TransferCache(limit=5).seeded_from(donor)) == 0
        assert len(TransferCache(limit=100).seeded_from(donor)) == 10


# ----------------------------------------------------------------------
# NetworkTransfer route-map evaluation memo
# ----------------------------------------------------------------------
class TestNetworkTransferEvalCache:
    def _transfer(self, network):
        ec = routable_equivalence_classes(network)[0]
        srp = build_srp_from_network(network, ec.prefix, set(ec.origins))
        return srp, ec

    def test_counters_exposed(self):
        network = build_topology("ring", 5)
        srp, _ = self._transfer(network)
        info = srp.transfer.eval_cache_info()
        assert info == {
            "size": 0,
            "limit": srp.transfer.EVAL_CACHE_LIMIT,
            "hits": 0,
            "misses": 0,
            "overflows": 0,
        }
        solve(srp)
        info = srp.transfer.eval_cache_info()
        assert info["misses"] > 0
        assert info["size"] <= info["limit"]

    def test_clear_on_overflow_keeps_answers_correct(self):
        network = build_topology("ring", 5)
        reference_srp, _ = self._transfer(network)
        reference = solve(reference_srp)

        bounded_srp, _ = self._transfer(network)
        bounded_srp.transfer.EVAL_CACHE_LIMIT = 2  # instance-level override
        bounded = solve(bounded_srp)
        info = bounded_srp.transfer.eval_cache_info()
        assert info["overflows"] > 0
        assert info["size"] <= 2
        assert bounded.labeling == reference.labeling

    def test_eval_cache_not_pickled(self):
        import pickle

        network = build_topology("ring", 4)
        srp, _ = self._transfer(network)
        solve(srp)
        assert srp.transfer.eval_cache_info()["size"] > 0
        revived = pickle.loads(pickle.dumps(srp.transfer))
        assert revived.eval_cache_info()["size"] == 0

    def test_memo_distinguishes_attributes(self):
        network = build_topology("wan", 2)
        srp, _ = self._transfer(network)
        solve(srp)
        # A warmed memo must answer exactly like an uncached transfer.
        fresh_srp, _ = self._transfer(network)
        for edge in list(srp.graph.edges)[:10]:
            assert srp.transfer(edge, None) == fresh_srp.transfer(edge, None)


# ----------------------------------------------------------------------
# BaselineIndex taint-query memo (bounded like TransferCache)
# ----------------------------------------------------------------------
class TestBaselineIndexTaintCache:
    def _index(self, family="ring", size=6):
        network = build_topology(family, size)
        ec = routable_equivalence_classes(network)[0]
        baseline = solve(build_srp_from_network(network, ec.prefix, set(ec.origins)))
        return network, baseline, BaselineIndex.from_solution(baseline)

    def test_cache_info_counts_hits_and_misses(self):
        network, baseline, index = self._index()
        assert index.cache_info() == {
            "size": 0,
            "limit": BaselineIndex.TAINT_CACHE_LIMIT,
            "hits": 0,
            "misses": 0,
            "overflows": 0,
        }
        removed = link_scenario(*undirected_links(network)[0]).directed_edges(
            network.graph
        )
        first = tainted_nodes(baseline, removed, index=index)
        info = index.cache_info()
        assert info["misses"] == 1 and info["size"] == 1
        second = tainted_nodes(baseline, removed, index=index)
        assert second == first
        assert index.cache_info()["hits"] == 1

    def test_clear_on_overflow(self):
        network, baseline, index = self._index()
        index.TAINT_CACHE_LIMIT = 2  # instance-level override
        for link in undirected_links(network)[:4]:
            removed = link_scenario(*link).directed_edges(network.graph)
            tainted_nodes(baseline, removed, index=index)
        info = index.cache_info()
        assert info["overflows"] > 0
        assert info["size"] <= 2

    def test_cached_results_match_fresh_computation(self):
        network, baseline, index = self._index("fattree", 4)
        for link in undirected_links(network)[:6]:
            removed = link_scenario(*link).directed_edges(network.graph)
            warmed = tainted_nodes(baseline, removed, index=index)
            again = tainted_nodes(baseline, removed, index=index)  # memo hit
            fresh = tainted_nodes(baseline, removed)  # no index, no memo
            assert warmed == again == fresh


# ----------------------------------------------------------------------
# Network memo invalidation under topology mutation (the regression the
# failure views rely on: stale caches must never survive an edge removal)
# ----------------------------------------------------------------------
class TestNetworkMemoInvalidation:
    def test_graph_version_counts_mutations(self):
        g = Graph()
        v0 = g.version
        g.add_undirected_edge("a", "b")
        assert g.version > v0
        v1 = g.version
        g.remove_edge("a", "b")
        assert g.version > v1
        g.add_node("c")
        v2 = g.version
        g.remove_node("c")
        assert g.version > v2

    def test_removing_an_edge_changes_the_destination_fingerprint(self):
        network = build_topology("ring", 5)
        before = network._destination_fingerprint()
        classes_before = network.destination_equivalence_classes()
        network.graph.remove_edge("r0", "r1")
        after = network._destination_fingerprint()
        assert before != after
        # The memo is invalidated: a fresh (equal-content) result is
        # computed rather than the stale cached object being returned.
        cached_fingerprint = network._dec_cache[0]
        network.destination_equivalence_classes()
        assert network._dec_cache[0] != cached_fingerprint or before != after
        assert network._dec_cache[0] == network._destination_fingerprint()
        # Destination classes do not depend on edges, so contents agree.
        assert network.destination_equivalence_classes() == classes_before

    def test_removing_an_edge_invalidates_the_local_pref_cache(self):
        network = build_topology("wan", 2)
        values = network.local_pref_values_by_device()
        fingerprint = network._lp_cache[0]
        edge = network.graph.edges[0]
        network.graph.remove_edge(*edge)
        assert network.local_pref_values_by_device() == values
        assert network._lp_cache[0] != fingerprint

    def test_removing_a_node_also_invalidates(self):
        network = build_topology("ring", 5)
        network.destination_equivalence_classes()
        fingerprint = network._dec_cache[0]
        network.graph.remove_node("r0")
        network.destination_equivalence_classes()
        assert network._dec_cache[0] != fingerprint

    def test_unchanged_network_still_hits_the_memo(self):
        network = build_topology("ring", 5)
        network.destination_equivalence_classes()
        cached = network._dec_cache
        network.destination_equivalence_classes()
        assert network._dec_cache is cached
