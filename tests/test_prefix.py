"""Unit tests for IPv4 prefixes and the prefix trie (§5.1)."""

import pytest

from repro.config import Prefix, PrefixTrie


class TestPrefix:
    def test_parse_and_str_roundtrip(self):
        p = Prefix.parse("10.1.2.0/24")
        assert str(p) == "10.1.2.0/24"
        assert p.length == 24

    def test_bare_address_is_host_route(self):
        assert Prefix.parse("192.168.1.1").length == 32

    def test_malformed_addresses_rejected(self):
        with pytest.raises(ValueError):
            Prefix.parse("10.0.0/24")
        with pytest.raises(ValueError):
            Prefix.parse("10.0.0.300/24")
        with pytest.raises(ValueError):
            Prefix.parse("10.0.0.0/40")

    def test_host_bits_are_normalised(self):
        assert Prefix.parse("10.1.2.3/24") == Prefix.parse("10.1.2.0/24")

    def test_containment(self):
        aggregate = Prefix.parse("10.0.0.0/8")
        subnet = Prefix.parse("10.1.2.0/24")
        assert aggregate.contains(subnet)
        assert not subnet.contains(aggregate)
        assert aggregate.contains(aggregate)

    def test_overlap_is_symmetric_containment(self):
        a = Prefix.parse("10.0.0.0/8")
        b = Prefix.parse("10.3.0.0/16")
        c = Prefix.parse("192.168.0.0/16")
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)

    def test_address_range(self):
        p = Prefix.parse("10.0.1.0/24")
        assert p.first_address() == p.address
        assert p.last_address() - p.first_address() == 255

    def test_bits_and_child(self):
        p = Prefix.parse("128.0.0.0/1")
        assert p.bits() == (1,)
        assert p.child(0) == Prefix.parse("128.0.0.0/2")
        assert p.child(1) == Prefix.parse("192.0.0.0/2")

    def test_child_of_host_route_rejected(self):
        with pytest.raises(ValueError):
            Prefix.parse("1.2.3.4/32").child(0)

    def test_ordering_is_total(self):
        prefixes = [Prefix.parse("10.0.0.0/8"), Prefix.parse("9.0.0.0/8")]
        assert sorted(prefixes)[0] == Prefix.parse("9.0.0.0/8")


class TestPrefixTrie:
    def test_insert_and_len(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("10.0.0.0/8"))
        trie.insert(Prefix.parse("10.1.0.0/16"))
        trie.insert(Prefix.parse("10.1.0.0/16"))
        assert len(trie) == 2

    def test_longest_match(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("10.0.0.0/8"))
        trie.insert(Prefix.parse("10.1.0.0/16"))
        assert trie.longest_match(Prefix.parse("10.1.2.0/24")) == Prefix.parse("10.1.0.0/16")
        assert trie.longest_match(Prefix.parse("10.9.0.0/16")) == Prefix.parse("10.0.0.0/8")
        assert trie.longest_match(Prefix.parse("11.0.0.0/8")) is None

    def test_origins_inherited_from_longest_match(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("10.0.0.0/8"), origins=["core"])
        trie.insert(Prefix.parse("10.1.0.0/16"), origins=["leaf1"])
        assert trie.origins_for(Prefix.parse("10.1.5.0/24")) == {"leaf1"}
        assert trie.origins_for(Prefix.parse("10.9.0.0/16")) == {"core"}

    def test_equivalence_classes_inherit_origins(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("10.0.0.0/8"), origins=["core"])
        trie.insert(Prefix.parse("10.1.0.0/16"))  # referenced but not originated
        classes = dict(trie.equivalence_classes())
        assert classes[Prefix.parse("10.0.0.0/8")] == {"core"}
        assert classes[Prefix.parse("10.1.0.0/16")] == {"core"}

    def test_marked_prefixes_sorted_by_trie_walk(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("192.168.0.0/16"))
        trie.insert(Prefix.parse("10.0.0.0/8"))
        marked = trie.marked_prefixes()
        assert marked[0] == Prefix.parse("10.0.0.0/8")
        assert len(marked) == 2
        assert list(iter(trie)) == marked
