"""Unit tests for the batch property-verification engine (repro.analysis.batch)."""

from __future__ import annotations

import json

import pytest

from repro.analysis import (
    BatchVerifier,
    PropertySuite,
    VerificationReport,
    VerificationTimeout,
    get_property,
    register_property,
    registered_properties,
    verify_network,
)
from repro.analysis.properties import PropertySpec
from repro.netgen import full_mesh_network, ring_network
from repro.pipeline import ClassFanOut, EncodedNetwork, PipelineError
from repro.pipeline.cli import main as pipeline_main

EXPECTED_CATALOGUE = [
    "reachability",
    "all-paths-reach",
    "black-hole-freedom",
    "routing-loop-freedom",
    "bounded-path-length",
    "waypointing",
    "multipath-consistency",
]


# ----------------------------------------------------------------------
# The property registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_catalogue_contains_the_paper_properties(self):
        assert registered_properties() == EXPECTED_CATALOGUE

    def test_get_property_unknown_name(self):
        with pytest.raises(ValueError, match="unknown property"):
            get_property("no-such-property")

    def test_register_rejects_bad_quantifier(self):
        spec = PropertySpec(
            name="bogus", description="", evaluate=lambda ctx, n: None, lift="most"
        )
        with pytest.raises(ValueError, match="quantifier"):
            register_property(spec)

    def test_specs_have_descriptions_and_quantifiers(self):
        for name in registered_properties():
            spec = get_property(name)
            assert spec.description
            assert spec.lift in ("all", "any")
        assert get_property("reachability").lift == "any"
        assert get_property("routing-loop-freedom").lift == "all"


# ----------------------------------------------------------------------
# Suite selection
# ----------------------------------------------------------------------
class TestPropertySuite:
    def test_default_covers_catalogue(self):
        assert list(PropertySuite.default().names) == EXPECTED_CATALOGUE

    def test_from_names_preserves_order(self):
        suite = PropertySuite.from_names(["waypointing", "reachability"])
        assert list(suite.names) == ["waypointing", "reachability"]

    def test_unknown_name_rejected_eagerly(self):
        with pytest.raises(ValueError, match="unknown property"):
            PropertySuite.from_names(["reachability", "nope"])

    def test_empty_selection_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            PropertySuite.from_names([])

    def test_options_roundtrip(self):
        suite = PropertySuite.from_names(
            ["reachability"], path_bound=7, waypoints=("a", "b")
        )
        assert PropertySuite.from_options(suite.to_options()) == suite


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def mesh_report():
    return verify_network(full_mesh_network(5))


class TestVerificationReport:
    def test_json_roundtrip(self, mesh_report):
        restored = VerificationReport.from_json(mesh_report.to_json())
        assert restored.canonical_records() == mesh_report.canonical_records()
        assert restored.network_name == mesh_report.network_name
        assert restored.verdicts_agree()

    def test_aggregate_block(self, mesh_report):
        data = mesh_report.to_dict()
        assert data["aggregate"]["verdicts_agree"] is True
        totals = data["aggregate"]["property_totals"]
        assert set(totals) == set(EXPECTED_CATALOGUE)
        nodes = 5
        assert totals["reachability"]["checked"] == nodes * mesh_report.num_classes
        assert totals["reachability"]["mismatched"] == 0

    def test_speedup_is_computed(self, mesh_report):
        assert mesh_report.speedup is not None
        assert mesh_report.speedup > 0
        assert mesh_report.concrete_seconds > 0
        assert mesh_report.abstract_seconds > 0

    def test_per_class_records_carry_sizes(self, mesh_report):
        for record in mesh_report.records:
            assert record.concrete_nodes == 5
            # a full mesh compresses to destination + everyone else
            assert record.abstract_nodes == 2
            assert not record.timed_out

    def test_verify_network_selects_properties(self):
        report = verify_network(full_mesh_network(4), properties=["reachability"])
        assert report.properties == ["reachability"]
        assert all(len(r.verdicts) == 1 for r in report.records)


# ----------------------------------------------------------------------
# Executors
# ----------------------------------------------------------------------
class TestExecutors:
    def test_rejects_unknown_executor(self):
        with pytest.raises(ValueError, match="unknown executor"):
            BatchVerifier(full_mesh_network(4), executor="gpu")

    def test_limit_restricts_classes(self):
        report = BatchVerifier(
            ring_network(6), executor="serial", limit=2
        ).run()
        assert report.num_classes == 2
        assert len(report.records) == 2

    def test_shared_artifact_between_arms(self):
        artifact = EncodedNetwork.build(ring_network(6))
        serial = BatchVerifier(artifact=artifact, executor="serial").run()
        threaded = BatchVerifier(artifact=artifact, executor="thread", workers=2).run()
        assert serial.canonical_records() == threaded.canonical_records()
        assert serial.encode_seconds == threaded.encode_seconds


# ----------------------------------------------------------------------
# Timeouts: raised and reported, never swallowed
# ----------------------------------------------------------------------
class TestTimeout:
    def test_zero_budget_raises_with_partial_report(self):
        verifier = BatchVerifier(
            full_mesh_network(4), executor="serial", timeout_seconds=0
        )
        with pytest.raises(VerificationTimeout) as excinfo:
            verifier.run()
        partial = excinfo.value.partial
        assert isinstance(partial, VerificationReport)
        assert partial.timed_out
        assert all(record.timed_out for record in partial.records)

    def test_report_mode_flags_instead_of_raising(self):
        verifier = BatchVerifier(
            full_mesh_network(4), executor="serial", timeout_seconds=0
        )
        report = verifier.run(raise_on_timeout=False)
        assert report.timed_out
        assert json.loads(report.to_json())["timed_out"] is True
        assert any("TIMED OUT" in line for line in report.summary_lines())

    def test_no_budget_means_no_timeout(self, mesh_report):
        assert not mesh_report.timed_out


class TestTruncationFlagging:
    def test_truncated_path_enumeration_is_recorded(self):
        """When all_paths hits its cap the table records the source, so
        the batch engine can flag path-quantified verdicts instead of
        gating on a truncated (non-exhaustive) enumeration."""
        from repro.analysis import ForwardingTable
        from repro.config import Prefix

        table = ForwardingTable(
            destination=Prefix.parse("10.0.1.0/24"),
            origins={"d"},
            next_hops={"s": {"a", "b"}, "a": {"d"}, "b": {"d"}, "d": set()},
        )
        assert len(table.all_paths("s")) == 2
        assert not table.truncated_sources
        table.clear_path_cache()
        assert len(table.all_paths("s", max_paths=1)) == 1
        assert "s" in table.truncated_sources


# ----------------------------------------------------------------------
# User-registered properties across executors
# ----------------------------------------------------------------------
@pytest.fixture()
def custom_property_module():
    """The registering module's name; the registry is restored afterwards
    so the catalogue assertions elsewhere stay exact."""
    import sys

    from repro.analysis.properties import PROPERTY_REGISTRY

    yield "custom_property_testmod"
    PROPERTY_REGISTRY.pop("has-any-next-hop", None)
    sys.modules.pop("custom_property_testmod", None)


class TestUserRegisteredProperties:
    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_custom_property_runs_on_every_executor(
        self, custom_property_module, executor
    ):
        """register_modules ships the registration to pool workers, so a
        user-registered property works under every executor, not just
        serial."""
        suite = PropertySuite.from_names(
            ["reachability", "has-any-next-hop"],
            register_modules=(custom_property_module,),
        )
        report = BatchVerifier(
            full_mesh_network(4), suite=suite, executor=executor, workers=2
        ).run()
        assert report.verdicts_agree()
        names = {v.property for r in report.records for v in r.verdicts}
        assert names == {"reachability", "has-any-next-hop"}


# ----------------------------------------------------------------------
# The generic fan-out underneath
# ----------------------------------------------------------------------
def _count_origins_task(bonsai, equivalence_class, options):
    """A trivial per-class task used to exercise custom task dispatch."""
    return (str(equivalence_class.prefix), len(equivalence_class.origins))


class TestClassFanOut:
    def test_custom_task_by_dotted_path(self):
        fanout = ClassFanOut(
            full_mesh_network(4),
            task="test_batch_verifier:_count_origins_task",
            executor="serial",
        )
        results = fanout.execute()
        assert len(results) == 4
        assert all(count == 1 for _, count in results)

    def test_unknown_task_name_rejected(self):
        with pytest.raises(ValueError, match="unknown task"):
            ClassFanOut(full_mesh_network(4), task="no-such-task")

    def test_broken_task_surfaces_class_name(self):
        fanout = ClassFanOut(
            full_mesh_network(4),
            task="test_batch_verifier:_task_that_does_not_exist",
            executor="serial",
        )
        with pytest.raises(PipelineError):
            fanout.execute()


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestVerifyCli:
    def test_verify_family_writes_report(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = pipeline_main(
            [
                "--verify",
                "--family",
                "mesh",
                "--size",
                "5",
                "--executor",
                "serial",
                "--output",
                str(out),
            ]
        )
        assert code == 0
        data = json.loads(out.read_text())
        assert data["aggregate"]["verdicts_agree"] is True
        assert "batch verification: mesh(5)" in capsys.readouterr().out

    def test_verify_all_families_output_is_per_family_map(self, tmp_path, capsys):
        out = tmp_path / "all.json"
        code = pipeline_main(
            [
                "--verify",
                "--family",
                "all",
                "--executor",
                "serial",
                "--limit",
                "1",
                "--output",
                str(out),
            ]
        )
        assert code == 0
        data = json.loads(out.read_text())
        assert set(data) == {"datacenter", "fattree", "mesh", "ring", "wan"}
        for report_dict in data.values():
            restored = VerificationReport.from_dict(report_dict)
            assert restored.verdicts_agree()
            assert restored.num_classes == 1
        capsys.readouterr()

    def test_verify_defaults_size_per_family(self, capsys):
        assert pipeline_main(["--verify", "--family", "ring", "--executor", "serial"]) == 0
        assert "ring(8)" in capsys.readouterr().out

    def test_verify_with_property_selection(self, tmp_path):
        out = tmp_path / "report.json"
        code = pipeline_main(
            [
                "--verify",
                "--topo",
                "mesh",
                "--size",
                "4",
                "--executor",
                "serial",
                "--properties",
                "reachability,routing-loop-freedom",
                "--output",
                str(out),
            ]
        )
        assert code == 0
        assert json.loads(out.read_text())["properties"] == [
            "reachability",
            "routing-loop-freedom",
        ]

    def test_verify_unknown_property_is_usage_error(self):
        code = pipeline_main(
            ["--verify", "--family", "mesh", "--properties", "bogus"]
        )
        assert code == 2

    def test_verify_timeout_exit_code(self, capsys):
        code = pipeline_main(
            [
                "--verify",
                "--family",
                "mesh",
                "--size",
                "4",
                "--executor",
                "serial",
                "--timeout",
                "0",
            ]
        )
        assert code == 1
        assert "TIMED OUT" in capsys.readouterr().out

    def test_verify_flags_require_verify(self, capsys):
        code = pipeline_main(["--family", "mesh", "--properties", "reachability"])
        assert code == 2
        assert "--verify" in capsys.readouterr().err
        assert pipeline_main(["--topo", "mesh", "--timeout", "5"]) == 2

    def test_exhausted_budget_skips_remaining_families(self, capsys):
        """With --family all and a zero budget, no family pays the network
        build / BDD encoding cost: every report is a timed-out stub."""
        code = pipeline_main(
            ["--verify", "--family", "all", "--executor", "serial", "--timeout", "0"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert out.count("TIMED OUT") >= 5
        assert "equivalence classes: 0" in out

    def test_topo_and_family_conflict(self, capsys):
        assert pipeline_main(["--topo", "mesh", "--family", "ring"]) == 2

    def test_family_required(self):
        assert pipeline_main(["--verify"]) == 2

    def test_family_all_requires_verify(self):
        assert pipeline_main(["--family", "all"]) == 2

    def test_compress_mode_defaults_size(self, capsys):
        assert pipeline_main(["--topo", "mesh", "--executor", "serial"]) == 0
        assert "mesh(6)" in capsys.readouterr().out
