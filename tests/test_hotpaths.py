"""Tests for the hot-path overhaul (PR 3).

Covers the four optimized paths against their reference oracles -- the
worklist SRP solver vs the synchronous sweep, the dirty-group refinement
worklist vs the full rescan -- plus the iterative BDD core's deep-chain
regression, the convergence-failure guarantees, the network-level
memoisation, and the cross-class abstraction reuse.
"""

from __future__ import annotations

import sys

import pytest
from hypothesis import given, settings, strategies as st

from repro.abstraction.bonsai import Bonsai
from repro.abstraction.ec import routable_equivalence_classes
from repro.abstraction.refinement import (
    find_abstraction_partition,
    find_abstraction_partition_reference,
)
from repro.bdd.manager import FALSE, TRUE, BddManager
from repro.config.network import Network
from repro.config.prefix import Prefix
from repro.config.routemap import PrefixList, PrefixListEntry, RouteMap, RouteMapClause
from repro.config.transfer import build_srp_from_network
from repro.netgen.base import make_bgp_device, uniform_bgp_network
from repro.netgen.families import TOPOLOGY_FAMILIES, build_topology, default_size
from repro.srp.instance import SRP
from repro.srp.solver import ConvergenceError, solve, solve_sweep
from repro.topology.graph import Graph

from test_property_based import random_connected_graph


# ----------------------------------------------------------------------
# Strategies (random perturbed eBGP networks, as in test_property_based)
# ----------------------------------------------------------------------
_DENY_IN = RouteMap(name="DENY-IN", clauses=(RouteMapClause(sequence=10, action="deny"),))
_PREF_IN = RouteMap(
    name="PREF-IN",
    clauses=(RouteMapClause(sequence=10, action="permit", set_local_pref=200),),
)


@st.composite
def perturbed_networks(draw):
    graph, nodes = random_connected_graph(draw, max_extra_edges=6)
    network = uniform_bgp_network(graph, name="hotpath-hyp", originators=[nodes[0]])
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        device = network.devices[nodes[draw(st.integers(0, len(nodes) - 1))]]
        neighbours = sorted(device.bgp_neighbors)
        if not neighbours:
            continue
        peer = neighbours[draw(st.integers(0, len(neighbours) - 1))]
        route_map = _DENY_IN if draw(st.booleans()) else _PREF_IN
        device.route_maps[route_map.name] = route_map
        device.bgp_neighbors[peer].import_policy = route_map.name
    return network


def _srps_of(network):
    return [
        build_srp_from_network(network, ec.prefix, set(ec.origins))
        for ec in routable_equivalence_classes(network)
    ]


# ----------------------------------------------------------------------
# Worklist solver == sweep oracle
# ----------------------------------------------------------------------
class TestWorklistSolverEquivalence:
    @pytest.mark.parametrize("family", sorted(TOPOLOGY_FAMILIES))
    def test_matches_sweep_on_every_netgen_family(self, family):
        network = build_topology(family, default_size(family))
        for srp in _srps_of(network):
            assert solve(srp).labeling == solve_sweep(srp).labeling

    @settings(max_examples=20, deadline=None)
    @given(perturbed_networks())
    def test_matches_sweep_on_random_perturbed_networks(self, network):
        for srp in _srps_of(network):
            # Random local-pref perturbations can build genuine BGP
            # dispute gadgets that oscillate under synchronous updates;
            # the worklist must then raise exactly when the sweep does.
            try:
                reference = solve_sweep(srp)
            except ConvergenceError:
                with pytest.raises(ConvergenceError):
                    solve(srp)
                continue
            fast = solve(srp)
            assert fast.labeling == reference.labeling
            # Forwarding extraction (via the solver's transfer memo) must
            # also coincide with the oracle's.
            for node in srp.graph.nodes:
                assert sorted(map(str, fast.next_hops(node))) == sorted(
                    map(str, reference.next_hops(node))
                )

    def test_converges_in_the_same_round_as_the_sweep(self):
        # d - a - b line: labels settle in 2 rounds, round 3 confirms.
        graph = Graph()
        graph.add_undirected_edge("d", "a")
        graph.add_undirected_edge("a", "b")
        network = uniform_bgp_network(graph, name="line", originators=["d"])
        srp = build_srp_from_network(network, Prefix.parse("10.0.0.0/24"), {"d"})
        solve(srp, max_rounds=3)
        solve_sweep(srp, max_rounds=3)
        with pytest.raises(ConvergenceError):
            solve(srp, max_rounds=2)
        with pytest.raises(ConvergenceError):
            solve_sweep(srp, max_rounds=2)


class TestConvergenceFailureIsLoud:
    def _oscillator(self) -> SRP:
        """The classic synchronous flip-flop: x and y invert each other.

        Both hear a constant baseline 10 from the destination.  When a
        node's neighbour holds the baseline it is offered the better 1;
        once the neighbour holds 1 the offer disappears and the neighbour
        falls back to 10 -- so under synchronous updates both nodes flip
        between 1 and 10 forever.
        """
        graph = Graph()
        graph.add_undirected_edge("d", "x")
        graph.add_undirected_edge("x", "y")
        graph.add_undirected_edge("y", "d")

        def transfer(edge, attr):
            _, v = edge
            if v == "d":
                return 10
            if attr == 10:
                return 1
            return None

        def prefer(a, b):
            return a < b

        return SRP(graph=graph, destination="d", initial=0, prefer=prefer, transfer=transfer)

    def test_solver_raises_instead_of_returning_unconverged(self):
        srp = self._oscillator()
        with pytest.raises(ConvergenceError):
            solve(srp, max_rounds=50)
        with pytest.raises(ConvergenceError):
            solve_sweep(srp, max_rounds=50)

    def test_max_rounds_exhaustion_names_the_budget(self):
        srp = self._oscillator()
        with pytest.raises(ConvergenceError, match="50 rounds"):
            solve(srp, max_rounds=50)


# ----------------------------------------------------------------------
# Dirty-group refinement == full-rescan oracle
# ----------------------------------------------------------------------
class TestDirtyGroupRefinementEquivalence:
    @pytest.mark.parametrize("family", sorted(TOPOLOGY_FAMILIES))
    def test_matches_reference_on_every_netgen_family(self, family):
        network = build_topology(family, default_size(family))
        for srp in _srps_of(network):
            fast, _ = find_abstraction_partition(srp)
            reference, _ = find_abstraction_partition_reference(srp)
            assert set(fast.partitions()) == set(reference.partitions())

    @settings(max_examples=15, deadline=None)
    @given(perturbed_networks())
    def test_matches_reference_on_random_perturbed_networks(self, network):
        for srp in _srps_of(network):
            fast, _ = find_abstraction_partition(srp)
            reference, _ = find_abstraction_partition_reference(srp)
            assert set(fast.partitions()) == set(reference.partitions())


# ----------------------------------------------------------------------
# Iterative BDD core: deep chains cannot overflow the recursion limit
# ----------------------------------------------------------------------
class TestIterativeBddDeepChains:
    DEPTH = 1500

    def test_deep_chain_ops_run_without_recursion(self):
        """A policy chain ~1500 variables deep: the old bounded-depth
        recursive ``ite``/``restrict`` exceeded Python's default recursion
        limit (1000) on every one of these operations."""
        manager = BddManager(self.DEPTH)
        chain = TRUE
        # Reverse order keeps construction O(n) while the resulting BDD is
        # a single chain DEPTH nodes deep.
        for var in range(self.DEPTH - 1, -1, -1):
            chain = manager.ite(manager.var(var), chain, FALSE)
        assert manager.size(chain) == self.DEPTH

        negated = manager.apply_not(chain)  # walks the full chain depth
        assert manager.evaluate(negated, {i: True for i in range(self.DEPTH)}) is False

        restricted = manager.restrict(chain, {0: True, self.DEPTH // 2: True})
        assert manager.size(restricted) == self.DEPTH - 2
        assert manager.sat_count(chain) == 1

    def test_deep_chain_expression_and_models_run_without_recursion(self):
        """Regression: ``to_expression`` and ``satisfying_assignments``
        were still recursive after the PR-3 iterative rewrite of
        ``ite``/``restrict``/``sat_count`` and overflowed on the same
        1500+-var chains.  Both backends must enumerate and print a
        DEPTH-deep chain under a tight recursion limit."""
        from repro.bdd import make_manager

        for backend in ("dict", "array"):
            manager = make_manager(self.DEPTH, backend=backend)
            chain = TRUE
            for var in range(self.DEPTH - 1, -1, -1):
                chain = manager.ite(manager.var(var), chain, FALSE)
            limit = sys.getrecursionlimit()
            sys.setrecursionlimit(300)
            try:
                expression = manager.to_expression(chain)
                models = list(manager.satisfying_assignments(chain))
            finally:
                sys.setrecursionlimit(limit)
            assert expression.count("(if ") == self.DEPTH
            assert models == [{i: True for i in range(self.DEPTH)}]

    def test_deep_route_map_chain_encodes_under_a_tight_recursion_limit(self):
        """A route map with hundreds of distinct prefix-list matches (the
        deep ACL/route-map chain shape) encodes and specializes fine even
        when Python's recursion limit would have stopped the old
        recursive core."""
        clauses = []
        prefix_lists = {}
        depth = 220
        for i in range(depth):
            name = f"PL{i}"
            prefix_lists[name] = PrefixList(
                name=name,
                entries=(
                    PrefixListEntry(
                        prefix=Prefix.parse(f"10.{i % 250}.{i // 250}.0/24"),
                        action="permit",
                    ),
                ),
            )
            clauses.append(
                RouteMapClause(
                    sequence=10 * (i + 1),
                    action="permit" if i % 2 else "deny",
                    match_prefix_lists=(name,),
                )
            )
        chain_map = RouteMap(name="CHAIN", clauses=tuple(clauses))

        graph = Graph()
        graph.add_undirected_edge("a", "b")
        devices = {
            name: make_bgp_device(name=name, neighbours=graph.successors(name))
            for name in graph.nodes
        }
        devices["a"].originated_prefixes.append(Prefix.parse("10.0.0.0/24"))
        devices["b"].route_maps["CHAIN"] = chain_map
        devices["b"].prefix_lists.update(prefix_lists)
        devices["b"].bgp_neighbors["a"].import_policy = "CHAIN"
        network = Network(graph=graph, devices=devices, name="deep-chain")

        bonsai = Bonsai(network)
        limit = sys.getrecursionlimit()
        # Leave only a couple hundred frames of headroom: far below the
        # ~220-variable chain the encoder walks, so the old recursive core
        # would raise RecursionError here.
        sys.setrecursionlimit(300)
        try:
            keys = bonsai.policy_keys(Prefix.parse("10.0.0.0/24"))
        finally:
            sys.setrecursionlimit(limit)
        assert keys  # encoded and specialized without blowing the stack
        result = bonsai.compress_prefix(Prefix.parse("10.0.0.0/24"), build_network=False)
        assert result.abstract_nodes >= 1


# ----------------------------------------------------------------------
# Hand-expanded attribute copies must preserve every field
# ----------------------------------------------------------------------
class TestAttributeCopiesRoundTripAllFields:
    def test_prepended_and_via_ibgp_preserve_unrelated_fields(self):
        """``prepended``/``via_ibgp`` construct copies explicitly (the
        ``dataclasses.replace`` overhead was hot); this guards the
        invariant that a future ``BgpAttribute`` field cannot be silently
        reset to its default by either copy."""
        import dataclasses

        from repro.routing.attributes import BgpAttribute

        non_defaults = {
            "local_pref": 555,
            "communities": frozenset({"65000:1"}),
            "as_path": ("x", "y"),
            "ibgp_learned": True,
        }
        assert set(non_defaults) == {
            f.name for f in dataclasses.fields(BgpAttribute)
        }, "new BgpAttribute field: extend this test and the explicit copies"
        attr = BgpAttribute(**non_defaults)

        prepended = attr.prepended("z")
        assert prepended.as_path == ("z", "x", "y")
        assert prepended.ibgp_learned is False
        for name in ("local_pref", "communities"):
            assert getattr(prepended, name) == non_defaults[name]

        via = attr.via_ibgp()
        assert via.ibgp_learned is True
        for name in ("local_pref", "communities", "as_path"):
            assert getattr(via, name) == non_defaults[name]


# ----------------------------------------------------------------------
# Network-level memoisation
# ----------------------------------------------------------------------
class TestNetworkMemoisation:
    def _network(self):
        graph = Graph()
        graph.add_undirected_edge("a", "b")
        devices = {
            name: make_bgp_device(name=name, neighbours=graph.successors(name))
            for name in graph.nodes
        }
        devices["a"].originated_prefixes.append(Prefix.parse("10.1.0.0/24"))
        return Network(graph=graph, devices=devices, name="memo")

    def test_destination_classes_are_cached_and_fresh_copies(self):
        network = self._network()
        first = network.destination_equivalence_classes()
        second = network.destination_equivalence_classes()
        assert first == second
        # Mutating a returned origin set must not corrupt the cache.
        second[0][1].add("zzz")
        assert network.destination_equivalence_classes() == first

    def test_destination_class_cache_invalidated_on_mutation(self):
        network = self._network()
        before = network.destination_equivalence_classes()
        network.devices["b"].originated_prefixes.append(Prefix.parse("10.2.0.0/24"))
        after = network.destination_equivalence_classes()
        assert len(after) > len(before)
        prefixes = {str(prefix) for prefix, _ in after}
        assert "10.2.0.0/24" in prefixes

    def test_local_pref_memo_invalidated_on_route_map_change(self):
        network = self._network()
        srp = build_srp_from_network(network, Prefix.parse("10.1.0.0/24"), {"a"})
        assert srp.prefs("b") == (100,)
        # Attaching a local-pref-setting import policy must invalidate the
        # memoised per-device values (both the map inventory and the
        # session attachments are fingerprinted).
        network.devices["b"].route_maps["PREF-IN"] = _PREF_IN
        network.devices["b"].bgp_neighbors["a"].import_policy = "PREF-IN"
        srp = build_srp_from_network(network, Prefix.parse("10.1.0.0/24"), {"a"})
        assert 200 in srp.prefs("b")


# ----------------------------------------------------------------------
# Cross-class abstraction reuse
# ----------------------------------------------------------------------
class TestCrossClassAbstractionReuse:
    def _two_prefix_network(self):
        graph = Graph()
        graph.add_undirected_edge("a", "b")
        graph.add_undirected_edge("b", "c")
        devices = {
            name: make_bgp_device(name=name, neighbours=graph.successors(name))
            for name in graph.nodes
        }
        devices["a"].originated_prefixes.extend(
            [Prefix.parse("10.1.0.0/24"), Prefix.parse("10.2.0.0/24")]
        )
        return Network(graph=graph, devices=devices, name="two-prefix")

    def test_identical_signatures_share_one_refinement(self):
        bonsai = Bonsai(self._two_prefix_network())
        results = [
            bonsai.compress(ec, build_network=False)
            for ec in bonsai.equivalence_classes()
        ]
        assert len(results) == 2
        info = bonsai.abstraction_cache_info()
        assert info["hits"] == 1 and info["misses"] == 1
        # The shared RefinementResult yields the identical partition.
        assert results[0].refinement is results[1].refinement
        assert (
            results[0].refinement.partition.partitions()
            == results[1].refinement.partition.partitions()
        )

    def test_different_policies_do_not_share(self):
        network = self._two_prefix_network()
        # Deny announcements of 10.2/24 on one session: the two classes now
        # specialize to different keys and must not share an abstraction.
        deny_map = RouteMap(
            name="DENY-10-2",
            clauses=(
                RouteMapClause(
                    sequence=10, action="deny", match_prefix_lists=("PL-10-2",)
                ),
                RouteMapClause(sequence=20, action="permit"),
            ),
        )
        device = network.devices["c"]
        device.prefix_lists["PL-10-2"] = PrefixList(
            name="PL-10-2",
            entries=(
                PrefixListEntry(prefix=Prefix.parse("10.2.0.0/24"), action="permit"),
            ),
        )
        device.route_maps["DENY-10-2"] = deny_map
        device.bgp_neighbors["b"].import_policy = "DENY-10-2"
        bonsai = Bonsai(network)
        for ec in bonsai.equivalence_classes():
            bonsai.compress(ec, build_network=False)
        info = bonsai.abstraction_cache_info()
        assert info["hits"] == 0 and info["misses"] == 2

    def test_pipeline_results_with_reuse_stay_bit_identical(self):
        network = self._two_prefix_network()
        bonsai = Bonsai(network)
        results = bonsai.compress_all()
        fresh = [
            Bonsai(network).compress(ec, build_network=False)
            for ec in bonsai.equivalence_classes()
        ]
        for shared, independent in zip(results, fresh):
            assert (
                shared.refinement.partition.partitions()
                == independent.refinement.partition.partitions()
            )
