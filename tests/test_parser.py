"""Unit tests for the network description text format."""

import pytest

from repro.config import ParseError, Prefix, format_network, parse_network

EXAMPLE = """
# Figure 5's tag-and-prefer network, written in the text format.
device a
  network 10.0.0.0/24
  bgp-neighbor b1 export TAG
  route-map TAG 10 permit
    set community 65001:1

device b1
  bgp-neighbor a import IMPORT
  bgp-neighbor b2 import IMPORT
  route-map IMPORT 10 permit

device b2
  bgp-neighbor b1 import PREFER
  bgp-neighbor d import PREFER
  community-list tagged 65001:1
  route-map PREFER 10 permit
    match community tagged
    set local-preference 200
  route-map PREFER 20 permit

device d
  asn 65099
  network 10.9.0.0/16
  static-route 10.8.0.0/16 next-hop b2
  ospf-link b2 cost 5 area 1
  bgp-neighbor b2 import IMPORT export IMPORT
  route-map IMPORT 10 permit
  prefix-list OWN permit 10.9.0.0/16 le 24
  acl BLOCK deny 10.7.0.0/16 default permit
  interface-acl b2 BLOCK

link a b1
link b1 b2
link b2 d
"""


def test_parse_devices_and_links():
    network = parse_network(EXAMPLE)
    assert set(network.devices) == {"a", "b1", "b2", "d"}
    assert network.graph.has_edge("a", "b1") and network.graph.has_edge("b1", "a")
    assert network.graph.num_undirected_edges() == 3


def test_parse_bgp_and_route_maps():
    network = parse_network(EXAMPLE)
    b2 = network.devices["b2"]
    assert b2.bgp_neighbors["b1"].import_policy == "PREFER"
    prefer = b2.route_maps["PREFER"]
    assert len(prefer.clauses) == 2
    assert prefer.clauses[0].set_local_pref == 200
    assert prefer.clauses[0].match_community_lists == ("tagged",)
    assert b2.community_lists["tagged"].communities == ("65001:1",)


def test_parse_statics_ospf_prefix_lists_acls():
    network = parse_network(EXAMPLE)
    d = network.devices["d"]
    assert d.asn == "65099"
    assert d.originated_prefixes == [Prefix.parse("10.9.0.0/16")]
    assert d.static_routes[0].next_hop == "b2"
    assert d.ospf_links["b2"].cost == 5 and d.ospf_links["b2"].area == 1
    own = d.prefix_lists["OWN"]
    assert own.entries[0].le == 24
    assert not d.acls["BLOCK"].permits(Prefix.parse("10.7.1.0/24"))
    assert d.acls["BLOCK"].permits(Prefix.parse("10.9.1.0/24"))
    assert d.interface_acls["b2"] == "BLOCK"


def test_parsed_network_is_valid():
    network = parse_network(EXAMPLE)
    assert network.validate() == []


def test_comments_and_blank_lines_ignored():
    network = parse_network("# nothing\n\ndevice a\n  network 10.0.0.0/24\n")
    assert set(network.devices) == {"a"}


def test_unknown_keyword_raises_with_line_number():
    with pytest.raises(ParseError) as excinfo:
        parse_network("device a\n  frobnicate 1\n")
    assert "line 2" in str(excinfo.value)


def test_statement_outside_device_block_raises():
    with pytest.raises(ParseError):
        parse_network("network 10.0.0.0/24\n")


def test_match_outside_route_map_raises():
    with pytest.raises(ParseError):
        parse_network("device a\n  match community x\n")


def test_bad_link_raises():
    with pytest.raises(ParseError):
        parse_network("link a\n")


def test_format_roundtrip_preserves_semantics():
    network = parse_network(EXAMPLE)
    text = format_network(network)
    reparsed = parse_network(text)
    assert set(reparsed.devices) == set(network.devices)
    assert reparsed.graph.num_undirected_edges() == network.graph.num_undirected_edges()
    b2 = reparsed.devices["b2"]
    assert b2.route_maps["PREFER"].clauses[0].set_local_pref == 200
    d = reparsed.devices["d"]
    assert d.static_routes[0].prefix == Prefix.parse("10.8.0.0/16")
    assert d.interface_acls["b2"] == "BLOCK"
    assert reparsed.community_universe() == network.community_universe()
