"""Unit tests for SRP instances, solutions, solvers and well-formedness (§3)."""

import pytest

from repro.routing import RipAttribute, SetLocalPref, build_bgp_srp, build_rip_srp
from repro.srp import (
    SRP,
    SRPError,
    Solution,
    assert_well_formed,
    check_well_formed,
    enumerate_solutions,
    has_stable_solution,
    solve,
    solve_with_activation_order,
)
from repro.srp.solver import ConvergenceError
from repro.topology import Graph, chain_topology


class TestInstance:
    def test_destination_must_exist(self):
        graph, _ = chain_topology(2)
        with pytest.raises(SRPError):
            SRP(
                graph=graph,
                destination="missing",
                initial=RipAttribute(0),
                prefer=lambda a, b: a.hops < b.hops,
                transfer=lambda e, a: a,
            )

    def test_choices_filters_dropped_routes(self, figure1_srp):
        labeling = {"d": RipAttribute(0), "b1": RipAttribute(1), "b2": None, "a": None}
        choices = figure1_srp.choices("a", labeling)
        assert (("a", "b1"), RipAttribute(2)) in choices
        assert all(edge != ("a", "b2") for edge, _ in choices)

    def test_equally_preferred(self, figure1_srp):
        assert figure1_srp.equally_preferred(RipAttribute(2), RipAttribute(2))
        assert not figure1_srp.equally_preferred(RipAttribute(1), RipAttribute(2))

    def test_default_policy_key_and_prefs(self):
        graph, _ = chain_topology(2)
        srp = SRP(
            graph=graph,
            destination="r0",
            initial=RipAttribute(0),
            prefer=lambda a, b: a.hops < b.hops,
            transfer=lambda e, a: None if a is None else a.incremented(),
        )
        assert srp.policy_key(("r1", "r0")) == ("default",)
        assert srp.prefs("r1") == (0,)


class TestSolution:
    def test_figure1_solution(self, figure1_srp):
        solution = solve(figure1_srp)
        assert solution.labeling == {
            "d": RipAttribute(0),
            "b1": RipAttribute(1),
            "b2": RipAttribute(1),
            "a": RipAttribute(2),
        }
        assert solution.next_hops("a") == {"b1", "b2"}
        assert solution.next_hops("d") == set()
        assert solution.is_stable()

    def test_forwarding_graph_is_dag_for_rip(self, figure1_srp):
        solution = solve(figure1_srp)
        assert solution.forwarding_graph().is_dag()

    def test_forwarding_paths_reach_destination(self, figure1_srp):
        solution = solve(figure1_srp)
        paths = solution.forwarding_paths("a")
        assert sorted(paths) == [["a", "b1", "d"], ["a", "b2", "d"]]

    def test_violations_detected_for_bad_labeling(self, figure1_srp):
        bad = Solution(
            srp=figure1_srp,
            labeling={"d": RipAttribute(0), "b1": RipAttribute(5), "b2": RipAttribute(1), "a": RipAttribute(2)},
        )
        assert not bad.is_stable()
        assert any("b1" in violation for violation in bad.violations())

    def test_violation_for_wrong_destination_label(self, figure1_srp):
        bad = Solution(srp=figure1_srp, labeling={"d": RipAttribute(3)})
        assert any("destination" in v for v in bad.violations())

    def test_routed_and_unrouted_nodes(self, figure1_srp):
        solution = solve(figure1_srp)
        assert solution.routed_nodes() == {"a", "b1", "b2", "d"}
        assert solution.unrouted_nodes() == set()

    def test_as_table_lists_every_node(self, figure1_srp):
        solution = solve(figure1_srp)
        table = solution.as_table()
        assert len(table) == 4


class TestSolver:
    def test_synchronous_and_asynchronous_agree_on_rip(self, figure1_srp):
        sync = solve(figure1_srp)
        async_ = solve_with_activation_order(figure1_srp, seed=3)
        assert sync.labeling == async_.labeling

    def test_activation_order_changes_bgp_outcome(self, figure2_srp):
        solutions = enumerate_solutions(figure2_srp)
        # The gadget has three stable solutions: each b router can be the
        # one forced downhill.
        down_routers = set()
        for solution in solutions:
            down = [b for b in ("b1", "b2", "b3") if solution.next_hops(b) == {"d"}]
            assert len(down) == 1
            down_routers.add(down[0])
        assert down_routers == {"b1", "b2", "b3"}

    def test_all_enumerated_solutions_are_stable(self, figure2_srp):
        for solution in enumerate_solutions(figure2_srp):
            assert solution.is_stable()

    def test_explicit_activation_order_is_deterministic(self, figure2_srp):
        order = ["b2", "b3", "a", "b1"]
        first = solve_with_activation_order(figure2_srp, order=order)
        second = solve_with_activation_order(figure2_srp, order=order)
        assert first.labeling == second.labeling

    def test_has_stable_solution(self, figure1_srp):
        assert has_stable_solution(figure1_srp)

    def test_non_convergent_srp_raises(self):
        """A two-node mutual-dependence gadget with no stable solution."""
        graph = Graph()
        graph.add_undirected_edge("a", "b")
        graph.add_undirected_edge("a", "d")
        graph.add_undirected_edge("b", "d")
        # a and b each prefer the route through the other over the direct
        # route (the classic BAD GADGET restricted to two nodes oscillates
        # under synchronous updates).
        imports = {("a", "b"): SetLocalPref(200), ("b", "a"): SetLocalPref(200)}
        srp = build_bgp_srp(graph, "d", import_policies=imports)
        try:
            solution = solve(srp, max_rounds=50)
            # If it converges, the solution must at least be stable.
            assert solution.is_stable()
        except ConvergenceError:
            pass


class TestWellFormedness:
    def test_rip_srp_is_well_formed(self, figure1_srp):
        report = check_well_formed(figure1_srp)
        assert report.is_well_formed
        assert_well_formed(figure1_srp)

    def test_self_loop_detected(self):
        graph = Graph()
        graph.add_undirected_edge("a", "d")
        graph.add_edge("a", "a")
        srp = build_rip_srp(graph, "d")
        report = check_well_formed(srp)
        assert not report.self_loop_free
        with pytest.raises(ValueError):
            assert_well_formed(srp)

    def test_spontaneous_transfer_detected(self):
        graph, _ = chain_topology(2)
        srp = SRP(
            graph=graph,
            destination="r0",
            initial=RipAttribute(0),
            prefer=lambda a, b: a.hops < b.hops,
            transfer=lambda e, a: RipAttribute(1),
        )
        report = check_well_formed(srp)
        assert not report.non_spontaneous
        relaxed = check_well_formed(srp, require_non_spontaneous=False)
        assert relaxed.is_well_formed
