"""Tests for repro.perfutil: ru_maxrss unit normalisation (kilobytes on
Linux, bytes on macOS) and a sanity bound on the reported peak RSS."""

from __future__ import annotations

import pytest

from repro import perfutil


class TestMaxrssUnits:
    def test_linux_reports_kilobytes(self, monkeypatch):
        monkeypatch.setattr(perfutil.sys, "platform", "linux")
        assert perfutil._maxrss_to_mb(102400) == pytest.approx(100.0)
        assert perfutil._maxrss_to_mb(1024) == pytest.approx(1.0)

    def test_darwin_reports_bytes(self, monkeypatch):
        monkeypatch.setattr(perfutil.sys, "platform", "darwin")
        assert perfutil._maxrss_to_mb(104857600) == pytest.approx(100.0)
        assert perfutil._maxrss_to_mb(1048576) == pytest.approx(1.0)

    def test_units_differ_by_factor_1024(self, monkeypatch):
        raw = 2048
        monkeypatch.setattr(perfutil.sys, "platform", "linux")
        linux_mb = perfutil._maxrss_to_mb(raw)
        monkeypatch.setattr(perfutil.sys, "platform", "darwin")
        darwin_mb = perfutil._maxrss_to_mb(raw)
        assert linux_mb == pytest.approx(darwin_mb * 1024.0)


class TestPeakRss:
    def test_sane_bounds_for_a_python_process(self):
        # A misread unit shows up orders of magnitude away from reality:
        # bytes-as-KiB reads ~1000x too large, KiB-as-bytes ~1000x too
        # small.  A live interpreter sits comfortably inside [5, 100000]
        # MiB, so this bound is a regression test on the unit handling.
        rss = perfutil.peak_rss_mb()
        assert 5.0 <= rss <= 100_000.0

    def test_children_only_add(self):
        assert perfutil.peak_rss_mb(include_children=True) >= perfutil.peak_rss_mb(
            include_children=False
        )

    def test_monotone_within_process(self):
        # ru_maxrss is a lifetime high-water mark: never decreases.
        first = perfutil.peak_rss_mb()
        second = perfutil.peak_rss_mb()
        assert second >= first
