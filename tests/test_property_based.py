"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import assume, given, settings, strategies as st

from repro.abstraction import UnionSplitFind, compute_abstraction, check_effective, check_cp_equivalence
from repro.analysis import BatchVerifier, VerificationReport
from repro.bdd import BddManager, BitVector
from repro.config import Prefix, PrefixTrie
from repro.config.routemap import RouteMap, RouteMapClause
from repro.netgen import uniform_bgp_network
from repro.pipeline import EncodedNetwork
from repro.routing import BgpAttribute, BgpProtocol, RipAttribute, RipProtocol, build_rip_srp
from repro.srp import solve
from repro.topology import Graph

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
prefixes = st.builds(
    Prefix,
    address=st.integers(min_value=0, max_value=2**32 - 1),
    length=st.integers(min_value=0, max_value=32),
)

booleans3 = st.tuples(st.booleans(), st.booleans(), st.booleans())


def random_connected_graph(draw, max_extra_edges=10):
    """A connected undirected graph on 3..9 nodes, built from a random tree
    plus extra edges."""
    n = draw(st.integers(min_value=3, max_value=9))
    nodes = [f"n{i}" for i in range(n)]
    g = Graph()
    for node in nodes:
        g.add_node(node)
    for i in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=i - 1))
        g.add_undirected_edge(nodes[i], nodes[parent])
    extra = draw(st.integers(min_value=0, max_value=max_extra_edges))
    for _ in range(extra):
        a = draw(st.integers(min_value=0, max_value=n - 1))
        b = draw(st.integers(min_value=0, max_value=n - 1))
        if a != b:
            g.add_undirected_edge(nodes[a], nodes[b])
    return g, nodes


connected_graphs = st.composite(random_connected_graph)()


# ----------------------------------------------------------------------
# Prefixes and the trie
# ----------------------------------------------------------------------
@given(prefixes)
def test_prefix_contains_itself_and_roundtrips(prefix):
    assert prefix.contains(prefix)
    assert Prefix.parse(str(prefix)) == prefix
    assert prefix.first_address() <= prefix.last_address()


@given(prefixes, prefixes)
def test_prefix_containment_is_antisymmetric_up_to_equality(a, b):
    if a.contains(b) and b.contains(a):
        assert a == b
    if a.contains(b):
        assert a.length <= b.length
        assert a.overlaps(b)


@given(st.lists(prefixes, min_size=1, max_size=20))
def test_trie_longest_match_contains_query(entries):
    trie = PrefixTrie()
    for prefix in entries:
        trie.insert(prefix)
    for prefix in entries:
        match = trie.longest_match(prefix)
        assert match is not None
        assert match.contains(prefix)
        # No inserted prefix both contains the query and is longer than the match.
        for other in entries:
            if other.contains(prefix):
                assert other.length <= match.length
    assert len(trie.marked_prefixes()) == len(set(entries))


# ----------------------------------------------------------------------
# BDD engine
# ----------------------------------------------------------------------
@given(st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=255))
def test_bitvector_comparisons_agree_with_integers(value, bound):
    manager = BddManager()
    vector = BitVector.declare(manager, "v", 8)
    assignment = vector.assignment_for(value)
    assert manager.evaluate(vector.equals_constant(bound), assignment) == (value == bound)
    assert manager.evaluate(vector.less_or_equal(bound), assignment) == (value <= bound)
    assert manager.evaluate(vector.greater_or_equal(bound), assignment) == (value >= bound)


@given(st.lists(st.tuples(st.booleans(), st.booleans(), st.booleans()), min_size=1, max_size=8))
def test_bdd_semantics_match_python_evaluation(rows):
    """Build a function as a disjunction of minterms and compare BDD
    evaluation with direct evaluation on all 8 assignments."""
    manager = BddManager(num_vars=3)

    def minterm(bits):
        literals = [manager.var(i) if bit else manager.nvar(i) for i, bit in enumerate(bits)]
        return manager.conjoin(literals)

    f = manager.disjoin(minterm(bits) for bits in rows)
    truth = set(rows)
    for a in (False, True):
        for b in (False, True):
            for c in (False, True):
                expected = (a, b, c) in truth
                assert manager.evaluate(f, {0: a, 1: b, 2: c}) == expected
    assert manager.sat_count(f, num_vars=3) == len(truth)


@given(st.lists(st.tuples(st.booleans(), st.booleans(), st.booleans()), min_size=1, max_size=8),
       st.lists(st.tuples(st.booleans(), st.booleans(), st.booleans()), min_size=1, max_size=8))
def test_bdd_canonicity(rows_a, rows_b):
    """Two functions have the same node id iff they have the same truth table."""
    manager = BddManager(num_vars=3)

    def build(rows):
        def minterm(bits):
            literals = [manager.var(i) if bit else manager.nvar(i) for i, bit in enumerate(bits)]
            return manager.conjoin(literals)
        return manager.disjoin(minterm(bits) for bits in rows)

    fa, fb = build(rows_a), build(rows_b)
    assert (fa == fb) == (set(rows_a) == set(rows_b))


# ----------------------------------------------------------------------
# Protocol comparison relations
# ----------------------------------------------------------------------
@given(st.integers(0, 15), st.integers(0, 15), st.integers(0, 15))
def test_rip_preference_is_strict_partial_order(a, b, c):
    rip = RipProtocol()
    x, y, z = RipAttribute(a), RipAttribute(b), RipAttribute(c)
    assert not rip.prefer(x, x)
    if rip.prefer(x, y):
        assert not rip.prefer(y, x)
    if rip.prefer(x, y) and rip.prefer(y, z):
        assert rip.prefer(x, z)


@given(
    st.tuples(st.integers(0, 3), st.integers(0, 4)),
    st.tuples(st.integers(0, 3), st.integers(0, 4)),
    st.tuples(st.integers(0, 3), st.integers(0, 4)),
)
def test_bgp_preference_is_strict_partial_order(a, b, c):
    bgp = BgpProtocol()

    def attr(spec):
        lp, length = spec
        return BgpAttribute(local_pref=100 + lp, as_path=tuple(f"x{i}" for i in range(length)))

    x, y, z = attr(a), attr(b), attr(c)
    assert not bgp.prefer(x, x)
    if bgp.prefer(x, y):
        assert not bgp.prefer(y, x)
    if bgp.prefer(x, y) and bgp.prefer(y, z):
        assert bgp.prefer(x, z)


# ----------------------------------------------------------------------
# Partition structure
# ----------------------------------------------------------------------
@given(st.lists(st.integers(0, 4), min_size=1, max_size=30))
def test_union_split_find_is_a_partition(keys):
    nodes = [f"n{i}" for i in range(len(keys))]
    partition = UnionSplitFind(nodes)
    partition.split_by_key(partition.find(nodes[0]), dict(zip(nodes, keys)))
    groups = partition.partitions()
    # Every node is in exactly one group.
    assert sorted(node for group in groups for node in group) == sorted(nodes)
    # Nodes in the same group have the same key, and groups are maximal.
    key_of = dict(zip(nodes, keys))
    for group in groups:
        assert len({key_of[node] for node in group}) == 1
    assert len(groups) == len(set(keys))


# ----------------------------------------------------------------------
# SRP + compression invariants on random topologies
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(connected_graphs)
def test_rip_solutions_are_stable_dags(graph_and_nodes):
    graph, nodes = graph_and_nodes
    srp = build_rip_srp(graph, nodes[0])
    solution = solve(srp)
    assert solution.is_stable()
    assert solution.forwarding_graph().is_dag()
    # Every node is labelled with its BFS distance from the destination.
    distances = graph.bfs_distances(nodes[0])
    for node in nodes:
        expected = distances.get(node)
        label = solution.labeling[node]
        if expected is None or expected > 15:
            assert label is None
        else:
            assert label == RipAttribute(expected)


@settings(max_examples=25, deadline=None)
@given(connected_graphs)
def test_compression_is_effective_and_cp_equivalent_on_random_rip(graph_and_nodes):
    graph, nodes = graph_and_nodes
    srp = build_rip_srp(graph, nodes[0])
    result = compute_abstraction(srp)
    assert result.num_abstract_nodes <= graph.num_nodes()
    assert check_effective(srp, result.abstraction).is_effective
    assert check_cp_equivalence(srp, result.abstraction, strict_labels=True).cp_equivalent


# ----------------------------------------------------------------------
# Batch differential verification on random configured networks
# ----------------------------------------------------------------------
_DENY_IN = RouteMap(name="DENY-IN", clauses=(RouteMapClause(sequence=10, action="deny"),))
_PREF_IN = RouteMap(
    name="PREF-IN", clauses=(RouteMapClause(sequence=10, action="permit", set_local_pref=200),)
)


@st.composite
def perturbed_bgp_networks(draw):
    """A random connected eBGP network with random route-map perturbations.

    One device originates a /24; up to three (device, neighbour) import
    policies are replaced with a deny-all or a local-pref bump, so the
    generated networks exercise black holes, asymmetric paths and BGP case
    splitting -- not just the symmetric happy path.
    """
    graph, nodes = random_connected_graph(draw, max_extra_edges=6)
    network = uniform_bgp_network(graph, name="hypothesis", originators=[nodes[0]])
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        device = network.devices[nodes[draw(st.integers(0, len(nodes) - 1))]]
        neighbours = sorted(device.bgp_neighbors)
        if not neighbours:
            continue
        peer = neighbours[draw(st.integers(0, len(neighbours) - 1))]
        route_map = _DENY_IN if draw(st.booleans()) else _PREF_IN
        device.route_maps[route_map.name] = route_map
        device.bgp_neighbors[peer].import_policy = route_map.name
    # Random local-pref bumps can assemble a dispute-wheel gadget whose
    # synchronous solve oscillates forever; ConvergenceError is the
    # solver's documented answer there, not an executor-parity bug, so
    # reject oscillators rather than feed them to the parity tests.
    from repro.abstraction.ec import routable_equivalence_classes
    from repro.config.transfer import build_srp_from_network
    from repro.srp.solver import ConvergenceError

    try:
        for ec in routable_equivalence_classes(network):
            solve(build_srp_from_network(network, ec.prefix, set(ec.origins)))
    except ConvergenceError:
        assume(False)
    return network


@settings(max_examples=5, deadline=None)
@given(perturbed_bgp_networks())
def test_batch_verifier_serial_and_thread_bit_identical(network):
    """Serial and thread executors agree record-for-record (timings aside),
    and the differential soundness oracle holds on every random network."""
    artifact = EncodedNetwork.build(network)
    serial = BatchVerifier(artifact=artifact, executor="serial").run()
    threaded = BatchVerifier(artifact=artifact, executor="thread", workers=2).run()
    assert serial.canonical_records() == threaded.canonical_records()
    assert serial.verdicts_agree()


@settings(max_examples=3, deadline=None)
@given(perturbed_bgp_networks())
def test_batch_verifier_process_pool_bit_identical(network):
    """The process pool (private BDD managers per worker) returns the same
    canonical VerificationReport as the serial fallback."""
    artifact = EncodedNetwork.build(network)
    serial = BatchVerifier(artifact=artifact, executor="serial").run()
    process = BatchVerifier(artifact=artifact, executor="process", workers=2).run()
    assert serial.canonical_records() == process.canonical_records()
    assert VerificationReport.from_json(process.to_json()).canonical_records() == (
        serial.canonical_records()
    )
