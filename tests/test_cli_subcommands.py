"""Tests for the subcommand CLI and the legacy flat-flag shim."""

from __future__ import annotations

import json
import warnings

import pytest

from repro.pipeline.cli import SUBCOMMANDS, main as pipeline_main
from repro.srp.solver import COUNTERS


def run_main(argv):
    """``(exit_code, deprecation_messages)`` with warnings captured."""
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        code = pipeline_main(argv)
    return code, [
        str(w.message) for w in caught if issubclass(w.category, DeprecationWarning)
    ]


class TestSubcommands:
    def test_compress(self, capsys):
        code, warned = run_main(
            ["compress", "--topo", "ring", "--size", "5", "--executor", "serial"]
        )
        assert code == 0 and not warned
        assert "compression pipeline" in capsys.readouterr().out

    def test_verify(self, capsys):
        code, warned = run_main(
            ["verify", "--topo", "ring", "--size", "5", "--executor", "serial"]
        )
        assert code == 0 and not warned
        assert "batch verification" in capsys.readouterr().out

    def test_failures(self, capsys):
        code, warned = run_main(
            ["failures", "--topo", "ring", "--size", "5", "--executor", "serial",
             "--k", "1", "--sample", "3", "--no-oracle", "--no-soundness"]
        )
        assert code == 0 and not warned
        assert "failure sweep" in capsys.readouterr().out

    def test_delta(self, capsys):
        code, warned = run_main(
            ["delta", "--topo", "ring", "--size", "5", "--executor", "serial",
             "--no-oracle", "--no-rebuild-oracle"]
        )
        assert code == 0 and not warned
        assert "change-impact sweep" in capsys.readouterr().out

    def test_output_report_is_enveloped(self, tmp_path, capsys):
        out = tmp_path / "verify.json"
        code, _ = run_main(
            ["verify", "--topo", "ring", "--size", "5", "--executor", "serial",
             "--output", str(out)]
        )
        assert code == 0
        data = json.loads(out.read_text())
        assert data["kind"] == "verification"
        assert data["ok"] is True
        from repro.reporting import load_report

        assert load_report(out.read_text()).kind == "verification"

    def test_family_required(self, capsys):
        code, _ = run_main(["verify", "--executor", "serial"])
        assert code == 2
        assert "topology family is required" in capsys.readouterr().err

    def test_unknown_subcommand_arguments(self, capsys):
        # Subcommand parsers reject flags from other modes outright.
        code, _ = run_main(["compress", "--topo", "ring", "--k", "2"])
        assert code == 2

    def test_help_exits_zero(self, capsys):
        assert run_main(["verify", "--help"])[0] == 0
        capsys.readouterr()


class TestStoreAndServeSubcommands:
    def test_store_save_list_info(self, tmp_path, capsys):
        root = tmp_path / "artifacts"
        code, _ = run_main(
            ["store", "save", "--topo", "ring", "--size", "5", "--store", str(root)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "saved ring(5)" in out and "5 classes" in out

        code, _ = run_main(["store", "list", "--store", str(root)])
        assert code == 0
        assert "ring-5" in capsys.readouterr().out

        code, _ = run_main(
            ["store", "info", "--topo", "ring", "--size", "5", "--store", str(root)]
        )
        assert code == 0
        assert "entry verifies" in capsys.readouterr().out

    def test_store_info_refuses_corrupt_entry(self, tmp_path, capsys):
        root = tmp_path / "artifacts"
        code, _ = run_main(
            ["store", "save", "--topo", "ring", "--size", "5", "--store", str(root)]
        )
        assert code == 0
        capsys.readouterr()
        entry = next(child for child in root.iterdir() if child.is_dir())
        payload = entry / "payload.pkl"
        payload.write_bytes(payload.read_bytes()[:-10])
        code, _ = run_main(["store", "info", "--fingerprint", entry.name, "--store", str(root)])
        assert code == 1
        assert "REFUSED" in capsys.readouterr().err

    def test_store_list_empty(self, tmp_path, capsys):
        code, _ = run_main(["store", "list", "--store", str(tmp_path / "none")])
        assert code == 0
        assert "no artifacts" in capsys.readouterr().out

    def test_delta_baseline_zero_resolves(self, tmp_path, capsys):
        root = tmp_path / "artifacts"
        code, _ = run_main(
            ["store", "save", "--topo", "ring", "--size", "5", "--store", str(root)]
        )
        assert code == 0
        COUNTERS.reset()
        code, warned = run_main(
            ["delta", "--topo", "ring", "--size", "5", "--executor", "serial",
             "--baseline", str(root), "--no-oracle", "--no-revalidate",
             "--no-rebuild-oracle"]
        )
        assert code == 0 and not warned
        assert COUNTERS.snapshot()["scratch_solves"] == 0
        out = capsys.readouterr().out
        assert "warm baseline" in out and "seeded from the store" in out

    def test_delta_baseline_entry_dir(self, tmp_path, capsys):
        root = tmp_path / "artifacts"
        run_main(["store", "save", "--topo", "ring", "--size", "5", "--store", str(root)])
        capsys.readouterr()
        entry = next(child for child in root.iterdir() if child.is_dir())
        code, _ = run_main(
            ["delta", "--topo", "ring", "--size", "5", "--executor", "serial",
             "--baseline", str(entry), "--no-oracle", "--no-revalidate",
             "--no-rebuild-oracle"]
        )
        assert code == 0
        assert "warm baseline" in capsys.readouterr().out

    def test_delta_baseline_mismatch_refused(self, tmp_path, capsys):
        root = tmp_path / "artifacts"
        run_main(["store", "save", "--topo", "ring", "--size", "5", "--store", str(root)])
        capsys.readouterr()
        code, _ = run_main(
            ["delta", "--topo", "mesh", "--size", "4", "--executor", "serial",
             "--baseline", str(root), "--no-oracle"]
        )
        assert code == 1
        assert "cannot use baseline artifact" in capsys.readouterr().err

    def test_serve_usage_errors(self, capsys):
        code, _ = run_main(["serve", "--topo", "ring", "--family", "ring"])
        assert code == 2
        assert "not both" in capsys.readouterr().err
        code, _ = run_main(["serve", "--family", "all"])
        assert code == 2
        assert "exactly one topology family" in capsys.readouterr().err


class TestLegacyShim:
    def test_legacy_compress_still_works_unwarned(self, capsys):
        code, warned = run_main(
            ["--topo", "ring", "--size", "5", "--executor", "serial"]
        )
        assert code == 0 and not warned
        assert "compression pipeline" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "argv,flag",
        [
            (["--verify", "--topo", "ring", "--size", "5", "--executor", "serial"],
             "--verify"),
            (["--failures", "--topo", "ring", "--size", "5", "--executor", "serial",
              "--k", "1", "--sample", "3", "--no-oracle", "--no-soundness"],
             "--failures"),
            (["--delta", "--topo", "ring", "--size", "5", "--executor", "serial",
              "--no-oracle", "--no-rebuild-oracle"],
             "--delta"),
        ],
    )
    def test_legacy_modes_warn_once_and_work(self, capsys, argv, flag):
        code, warned = run_main(argv)
        assert code == 0
        assert len(warned) == 1
        assert flag in warned[0] and "deprecated" in warned[0]
        capsys.readouterr()

    def test_report_out_warns_once_and_writes(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code, warned = run_main(
            ["--topo", "ring", "--size", "5", "--executor", "serial",
             "--report-out", str(out)]
        )
        assert code == 0
        assert len(warned) == 1 and "--report-out" in warned[0]
        assert json.loads(out.read_text())["kind"] == "compression"
        capsys.readouterr()

    def test_two_legacy_spellings_warn_twice(self, tmp_path, capsys):
        out = tmp_path / "verify.json"
        code, warned = run_main(
            ["--verify", "--topo", "ring", "--size", "5", "--executor", "serial",
             "--report-out", str(out)]
        )
        assert code == 0
        assert sorted(w.split()[0] for w in warned) == ["--report-out", "--verify"]
        capsys.readouterr()

    def test_legacy_error_messages_are_pinned(self, capsys):
        code, _ = run_main(["--verify", "--failures", "--topo", "ring"])
        assert code == 2
        assert "at most one of --verify, --failures" in capsys.readouterr().err

        code, _ = run_main(["--topo", "ring", "--k", "2"])
        assert code == 2
        assert "--k requires --failures" in capsys.readouterr().err

        code, _ = run_main(["--verify", "--topo", "ring", "--baseline", "x"])
        assert code == 2
        assert "--baseline requires --delta" in capsys.readouterr().err

        code, _ = run_main(["--family", "all", "--topo", "ring"])
        assert code == 2
        assert "not both" in capsys.readouterr().err

    def test_main_never_raises_system_exit(self):
        # argparse would normally sys.exit(2); the shim converts to int.
        code, _ = run_main(["--bogus-flag"])
        assert code == 2
        code, _ = run_main(["--help"])
        assert code == 0

    def test_subcommand_names_are_reserved(self):
        assert set(SUBCOMMANDS) == {
            "compress", "verify", "failures", "delta", "store", "serve",
            "trace", "profile", "bench",
        }
