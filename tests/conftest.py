"""Shared fixtures: the paper's running examples and small workloads."""

from __future__ import annotations

import pytest

from repro.config.prefix import Prefix
from repro.netgen import (
    DATACENTER_SMALL_SCALE,
    WAN_SMALL_SCALE,
    datacenter_network,
    fattree_network,
    full_mesh_network,
    ring_network,
    wan_network,
)
from repro.routing import SetLocalPref, build_bgp_srp, build_rip_srp
from repro.topology import Graph


@pytest.fixture
def figure1_graph() -> Graph:
    """The RIP network of Figure 1: a - b1 - d and a - b2 - d."""
    g = Graph()
    g.add_undirected_edge("a", "b1")
    g.add_undirected_edge("a", "b2")
    g.add_undirected_edge("b1", "d")
    g.add_undirected_edge("b2", "d")
    return g


@pytest.fixture
def figure1_srp(figure1_graph):
    return build_rip_srp(figure1_graph, "d")


@pytest.fixture
def figure2_graph() -> Graph:
    """The BGP gadget of Figure 2(a): a above b1,b2,b3 above d (6 edges)."""
    g = Graph()
    for b in ("b1", "b2", "b3"):
        g.add_undirected_edge("a", b)
        g.add_undirected_edge(b, "d")
    return g


@pytest.fixture
def figure2_srp(figure2_graph):
    """The gadget's SRP: the b routers prefer routes learned from a."""
    imports = {(b, "a"): SetLocalPref(200) for b in ("b1", "b2", "b3")}
    return build_bgp_srp(figure2_graph, "d", import_policies=imports)


@pytest.fixture
def small_fattree():
    return fattree_network(4)


@pytest.fixture
def small_fattree_prefer_bottom():
    return fattree_network(4, policy="prefer_bottom")


@pytest.fixture
def small_ring():
    return ring_network(8)


@pytest.fixture
def small_mesh():
    return full_mesh_network(6)


@pytest.fixture
def small_datacenter():
    return datacenter_network(DATACENTER_SMALL_SCALE)


@pytest.fixture
def small_wan():
    return wan_network(WAN_SMALL_SCALE)


@pytest.fixture
def some_prefix() -> Prefix:
    return Prefix.parse("10.0.1.0/24")
