"""Shared fixtures: the paper's running examples and small workloads."""

from __future__ import annotations

import pytest

from repro.config.prefix import Prefix
from repro.netgen import (
    DATACENTER_SMALL_SCALE,
    WAN_SMALL_SCALE,
    datacenter_network,
    fattree_network,
    full_mesh_network,
    ring_network,
    wan_network,
)
from repro.routing import SetLocalPref, build_bgp_srp, build_rip_srp
from repro.topology import Graph


@pytest.fixture
def figure1_graph() -> Graph:
    """The RIP network of Figure 1: a - b1 - d and a - b2 - d."""
    g = Graph()
    g.add_undirected_edge("a", "b1")
    g.add_undirected_edge("a", "b2")
    g.add_undirected_edge("b1", "d")
    g.add_undirected_edge("b2", "d")
    return g


@pytest.fixture
def figure1_srp(figure1_graph):
    return build_rip_srp(figure1_graph, "d")


@pytest.fixture
def figure2_graph() -> Graph:
    """The BGP gadget of Figure 2(a): a above b1,b2,b3 above d (6 edges)."""
    g = Graph()
    for b in ("b1", "b2", "b3"):
        g.add_undirected_edge("a", b)
        g.add_undirected_edge(b, "d")
    return g


@pytest.fixture
def figure2_srp(figure2_graph):
    """The gadget's SRP: the b routers prefer routes learned from a."""
    imports = {(b, "a"): SetLocalPref(200) for b in ("b1", "b2", "b3")}
    return build_bgp_srp(figure2_graph, "d", import_policies=imports)


@pytest.fixture
def small_fattree():
    return fattree_network(4)


@pytest.fixture
def small_fattree_prefer_bottom():
    return fattree_network(4, policy="prefer_bottom")


@pytest.fixture
def small_ring():
    return ring_network(8)


@pytest.fixture
def small_mesh():
    return full_mesh_network(6)


@pytest.fixture
def small_datacenter():
    return datacenter_network(DATACENTER_SMALL_SCALE)


@pytest.fixture
def small_wan():
    return wan_network(WAN_SMALL_SCALE)


@pytest.fixture
def some_prefix() -> Prefix:
    return Prefix.parse("10.0.1.0/24")


#: A small network with a deliberately broken ACL: s2 drops traffic for
#: 10.0.1.0/24 towards t1, so that destination has a reachable black hole
#: (and a multipath inconsistency) that must survive compression.
BROKEN_ACL_NETWORK = """
device t1
  network 10.0.1.0/24
  bgp-neighbor s1 export OUT
  bgp-neighbor s2 export OUT
  route-map OUT 10 permit

device t2
  network 10.0.2.0/24
  bgp-neighbor s1 export OUT
  bgp-neighbor s2 export OUT
  route-map OUT 10 permit

device s1
  bgp-neighbor t1 import IN
  bgp-neighbor t2 import IN
  bgp-neighbor x import IN
  route-map IN 10 permit

device s2
  bgp-neighbor t1 import IN
  bgp-neighbor t2 import IN
  bgp-neighbor x import IN
  route-map IN 10 permit
  acl OOPS deny 10.0.1.0/24 default permit
  interface-acl t1 OOPS

device x
  bgp-neighbor s1 import IN export OUT
  bgp-neighbor s2 import IN export OUT
  route-map IN 10 permit
  route-map OUT 10 permit

link t1 s1
link t1 s2
link t2 s1
link t2 s2
link x s1
link x s2
"""


@pytest.fixture
def broken_acl_network():
    from repro.config import parse_network

    return parse_network(BROKEN_ACL_NETWORK)
