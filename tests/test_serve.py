"""Tests for the warm-baseline verification service (`repro.serve`)."""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api import Session
from repro.netgen.families import build_topology
from repro.serve import VerificationService, create_server, parse_script, warm_service
from repro.serve.service import QueryStats, _percentile


@pytest.fixture(scope="module")
def service():
    return VerificationService(Session(build_topology("ring", 5)))


@pytest.fixture(scope="module")
def server(service):
    httpd = create_server(service, port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    host, port = httpd.server_address[:2]
    yield f"http://{host}:{port}"
    httpd.shutdown()
    httpd.server_close()


def _get(base, path):
    try:
        with urllib.request.urlopen(base + path, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _post(base, path, payload):
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        base + path, data=body, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _change_script(network):
    device = sorted(network.devices)[0]
    peer = next(iter(network.graph.successors(device)))
    return [
        {
            "name": "prefer-peer",
            "changes": [
                {
                    "kind": "local-pref-override",
                    "device": str(device),
                    "peer": str(peer),
                    "local_pref": 300,
                }
            ],
        }
    ]


# ----------------------------------------------------------------------
# Service core
# ----------------------------------------------------------------------
class TestPercentiles:
    def test_nearest_rank(self):
        assert _percentile([], 0.95) == 0.0
        assert _percentile([1.0], 0.95) == 1.0
        values = [float(i) for i in range(1, 101)]
        assert _percentile(values, 0.50) == 51.0
        assert _percentile(values, 0.95) == 95.0
        assert _percentile(values, 1.0) == 100.0

    def test_stats_summary(self):
        stats = QueryStats()
        for i in range(10):
            stats.record("verify", 0.01 * (i + 1), coalesced=i % 2 == 0)
        summary = stats.summary()["verify"]
        assert summary["count"] == 10
        assert summary["coalesced"] == 5
        assert summary["p50_ms"] <= summary["p95_ms"] <= summary["max_ms"]


class TestService:
    def test_health(self, service):
        health = service.health()
        assert health["ok"] and health["warm"]
        assert health["classes"] == 5
        assert health["fingerprint"] == service.session.fingerprint

    def test_verify_matches_session(self, service):
        answer = service.verify()
        assert answer["kind"] == "verification"
        assert answer["ok"] is True
        direct = service.session.verify().to_dict()
        assert [r["prefix"] for r in answer["records"]] == [
            r["prefix"] for r in direct["records"]
        ]

    def test_verify_answers_are_cached(self, service):
        first = service.verify(prefix=str(service.session.classes[0].prefix))
        second = service.verify(prefix=str(service.session.classes[0].prefix))
        assert first is second  # memoised, not recomputed

    def test_concurrent_verify_smoke(self, service):
        """16 concurrent identical queries answer identically and match
        the sequential (batch) path."""
        with ThreadPoolExecutor(max_workers=8) as pool:
            answers = list(pool.map(lambda _: service.verify(), range(16)))
        assert all(answer == answers[0] for answer in answers)
        assert answers[0]["ok"] is True
        stats = service.stats_summary()["queries"]["verify"]
        assert stats["count"] >= 16
        assert stats["p50_ms"] <= stats["p95_ms"]

    def test_delta(self, service):
        answer = service.delta(_change_script(service.session.network))
        assert answer["kind"] == "delta"
        assert answer["ok"] is True
        assert answer["baseline_fingerprint"] == service.session.fingerprint

    def test_failures(self, service):
        answer = service.failures(k=1, sample=3, properties=["reachability"])
        assert answer["kind"] == "failures"
        assert answer["num_classes"] == 5

    def test_k_resilience(self, service):
        answer = service.k_resilience(max_k=1, sample=3)
        assert answer["ok"] is True
        assert answer["property"] == "reachability"


class TestParseScript:
    def test_changeset_dicts(self, service):
        script = parse_script(_change_script(service.session.network))
        assert len(script) == 1
        assert script[0].changes[0].kind == "local-pref-override"

    def test_bare_change_dicts(self, service):
        raw = _change_script(service.session.network)[0]["changes"]
        script = parse_script(raw)
        assert len(script) == 1
        assert script[0].changes[0].kind == "local-pref-override"

    def test_rejects_non_lists(self):
        with pytest.raises(ValueError, match="must be a list"):
            parse_script({"kind": "link-remove"})
        with pytest.raises(ValueError, match="ChangeSet dict"):
            parse_script(["not-a-dict"])


# ----------------------------------------------------------------------
# HTTP front end
# ----------------------------------------------------------------------
class TestHttp:
    def test_health_and_stats(self, server):
        status, health = _get(server, "/health")
        assert status == 200 and health["ok"] and health["classes"] == 5
        status, stats = _get(server, "/stats")
        assert status == 200 and stats["ok"]

    def test_verify_endpoint(self, server, service):
        status, answer = _post(server, "/verify", {})
        assert status == 200
        assert answer["kind"] == "verification" and answer["ok"]
        prefix = str(service.session.classes[0].prefix)
        status, scoped = _post(server, "/verify", {"prefix": prefix})
        assert status == 200 and scoped["num_classes"] == 1

    def test_delta_endpoint(self, server, service):
        script = _change_script(service.session.network)
        status, answer = _post(server, "/delta", {"script": script})
        assert status == 200
        assert answer["kind"] == "delta" and answer["ok"]

    def test_delta_requires_script(self, server):
        status, answer = _post(server, "/delta", {})
        assert status == 400
        assert "script" in answer["error"]

    def test_failures_endpoint(self, server):
        status, answer = _post(
            server, "/failures", {"k": 1, "sample": 3, "properties": ["reachability"]}
        )
        assert status == 200 and answer["kind"] == "failures"

    def test_k_resilience_endpoint(self, server):
        status, answer = _post(server, "/k-resilience", {"max_k": 1, "sample": 3})
        assert status == 200 and answer["ok"]

    def test_unknown_paths_404(self, server):
        status, answer = _get(server, "/nope")
        assert status == 404 and not answer["ok"]
        status, answer = _post(server, "/nope", {})
        assert status == 404 and not answer["ok"]

    def test_bad_json_400(self, server):
        request = urllib.request.Request(
            server + "/verify", data=b"{broken", headers={"Content-Type": "application/json"}
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_negative_content_length_400(self, server):
        """Regression: a negative Content-Length used to reach
        ``rfile.read(-1)``, which blocks the handler thread on the open
        keep-alive connection until the client hangs up.  It must be
        rejected with a 400 immediately instead."""
        import socket
        from urllib.parse import urlparse

        parsed = urlparse(server)
        with socket.create_connection(
            (parsed.hostname, parsed.port), timeout=10
        ) as sock:
            sock.sendall(
                b"POST /verify HTTP/1.1\r\n"
                b"Host: test\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: -1\r\n"
                b"\r\n"
            )
            response = b""
            while b"bad request body" not in response:
                chunk = sock.recv(4096)
                if not chunk:
                    break
                response += chunk
        assert response.startswith(b"HTTP/1.1 400")
        assert b"bad request body" in response

    def test_unknown_prefix_400(self, server):
        status, answer = _post(server, "/verify", {"prefix": "203.0.113.0/24"})
        assert status == 400
        assert "no destination class" in answer["error"]

    def test_concurrent_http_verify(self, server):
        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(
                pool.map(lambda _: _post(server, "/verify", {}), range(16))
            )
        assert all(status == 200 for status, _ in results)
        first = results[0][1]
        assert all(answer == first for _, answer in results)


class TestWarmService:
    def test_loads_from_store(self, tmp_path):
        network = build_topology("ring", 5)
        Session(network, store=tmp_path)  # builds and saves
        service = warm_service(build_topology("ring", 5), store=tmp_path)
        assert not service.session.rebuilt
        assert service.health()["classes"] == 5


# ----------------------------------------------------------------------
# Admission control + /events (the observability PR's serve surface)
# ----------------------------------------------------------------------
class TestAdmissionControl:
    @pytest.fixture()
    def bounded(self, service):
        """A service sharing the warm session, bounded to one in-flight
        query, behind its own ephemeral server."""
        from repro.obs import events as obs_events

        svc = VerificationService(service.session, max_inflight=1)
        httpd = create_server(svc, port=0)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        host, port = httpd.server_address[:2]
        yield svc, f"http://{host}:{port}"
        httpd.shutdown()
        httpd.server_close()
        svc.event_log.close()
        obs_events.unsubscribe(svc.event_log)

    def test_inflight_gauge_tracks_requests(self, bounded):
        svc, _ = bounded
        with svc.track_request("verify"):
            assert svc.inflight_snapshot() == {"verify": 1}
            assert svc.registry.gauge("serve.inflight.verify").value == 1
        assert svc.inflight_snapshot() == {"verify": 0}
        assert svc.registry.gauge("serve.inflight.verify").value == 0

    def test_saturated_service_returns_503_with_retry_after(self, bounded):
        svc, base = bounded
        with svc.track_request("verify"):
            request = urllib.request.Request(
                base + "/verify", data=b"{}",
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(request, timeout=30)
            assert err.value.code == 503
            assert err.value.headers["Retry-After"] == "1"
            answer = json.loads(err.value.read())
            assert answer["ok"] is False and answer["retry_after"] == 1
        # Once the slot frees, the same query succeeds.
        status, answer = _post(base, "/verify", {})
        assert status == 200 and answer["ok"] is True
        collected = svc.registry.collect()["counters"]
        assert collected["serve.rejected.verify"] == 1

    def test_stats_surface_inflight_block(self, bounded):
        svc, base = bounded
        status, stats = _get(base, "/stats")
        assert status == 200
        assert stats["inflight"]["limit"] == 1
        assert isinstance(stats["inflight"]["by_kind"], dict)

    def test_events_endpoint_long_poll(self, bounded):
        from repro.obs import events as obs_events

        svc, base = bounded
        obs_events.emit("test.ping", n=1)
        status, page = _get(base, "/events?cursor=0")
        assert status == 200 and page["ok"] is True
        types = [e["type"] for e in page["events"]]
        assert "test.ping" in types
        cursor = page["cursor"]
        # Nothing newer: an immediate poll returns empty at the cursor.
        status, page = _get(base, f"/events?cursor={cursor}")
        assert status == 200 and page["events"] == []

        def later():
            time.sleep(0.05)
            obs_events.emit("test.pong", n=2)

        thread = threading.Thread(target=later)
        thread.start()
        status, page = _get(base, f"/events?cursor={cursor}&timeout=5")
        thread.join()
        assert status == 200
        assert [e["type"] for e in page["events"]] == ["test.pong"]

    def test_unbounded_service_never_saturates(self, service):
        with service.track_request("verify"):
            with service.track_request("verify"):
                assert service.inflight_snapshot()["verify"] == 2
