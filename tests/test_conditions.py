"""Unit tests for the effective-abstraction conditions (§4.1, Figure 8)."""

import pytest

from repro.abstraction import (
    NetworkAbstraction,
    check_bgp_effective,
    check_dest_equivalence,
    check_effective,
    check_forall_exists,
    check_forall_forall,
    check_self_loop_free,
    check_transfer_equivalence,
)
from repro.routing import build_rip_srp
from repro.topology import Graph


@pytest.fixture
def figure8_graph() -> Graph:
    """Figure 8's concrete network: d - {b1, b2, c}, b1 - a1, b2 - a2."""
    g = Graph()
    g.add_undirected_edge("d", "b1")
    g.add_undirected_edge("d", "b2")
    g.add_undirected_edge("d", "c")
    g.add_undirected_edge("b1", "a1")
    g.add_undirected_edge("b2", "a2")
    return g


def make_abstraction(graph, node_map):
    return NetworkAbstraction.from_node_map(graph, node_map)


class TestDestEquivalence:
    def test_destination_alone_ok(self, figure1_graph):
        abstraction = make_abstraction(
            figure1_graph, {"a": "A", "b1": "B", "b2": "B", "d": "D"}
        )
        assert check_dest_equivalence(abstraction, "d").holds

    def test_destination_shared_violates(self, figure1_graph):
        abstraction = make_abstraction(
            figure1_graph, {"a": "A", "b1": "B", "b2": "D", "d": "D"}
        )
        report = check_dest_equivalence(abstraction, "d")
        assert not report.holds
        assert report.violations


class TestForallExists:
    def test_valid_abstraction_figure8(self, figure8_graph):
        """Figure 8(b): grouping {a1, a2} and {b1, b2} with c separate is valid."""
        node_map = {"d": "D", "b1": "B", "b2": "B", "a1": "A", "a2": "A", "c": "C"}
        abstraction = make_abstraction(figure8_graph, node_map)
        assert check_forall_exists(figure8_graph, abstraction).holds

    def test_invalid_abstraction_figure8(self, figure8_graph):
        """Figure 8(c): grouping c with the b routers is invalid because c has
        no edge into the abstract a-node."""
        node_map = {"d": "D", "b1": "BC", "b2": "BC", "c": "BC", "a1": "A", "a2": "A"}
        abstraction = make_abstraction(figure8_graph, node_map)
        report = check_forall_exists(figure8_graph, abstraction)
        assert not report.holds
        assert any("'c'" in violation for violation in report.violations)

    def test_coarsest_abstraction_violates_on_figure2(self, figure2_graph):
        """Figure 3(a): grouping a with the b routers violates ∀∃ because a
        has no edge to the destination group."""
        node_map = {"a": "X", "b1": "X", "b2": "X", "b3": "X", "d": "D"}
        abstraction = make_abstraction(figure2_graph, node_map)
        assert not check_forall_exists(figure2_graph, abstraction).holds


class TestForallForall:
    def test_holds_for_figure2_grouping(self, figure2_graph):
        node_map = {"a": "A", "b1": "B", "b2": "B", "b3": "B", "d": "D"}
        abstraction = make_abstraction(figure2_graph, node_map)
        assert check_forall_forall(figure2_graph, abstraction).holds

    def test_fails_when_some_pair_is_missing(self, figure8_graph):
        node_map = {"d": "D", "b1": "B", "b2": "B", "a1": "A", "a2": "A", "c": "C"}
        abstraction = make_abstraction(figure8_graph, node_map)
        # b1 has no edge to a2, so the ∀∀ condition fails even though ∀∃ holds.
        assert check_forall_exists(figure8_graph, abstraction).holds
        assert not check_forall_forall(figure8_graph, abstraction).holds


class TestTransferEquivalence:
    def test_uniform_policies_pass(self, figure1_graph):
        srp = build_rip_srp(figure1_graph, "d")
        abstraction = make_abstraction(
            figure1_graph, {"a": "A", "b1": "B", "b2": "B", "d": "D"}
        )
        assert check_transfer_equivalence(srp, abstraction).holds

    def test_mixed_policies_fail(self, figure1_graph):
        srp = build_rip_srp(figure1_graph, "d")
        keys = {edge: ("blocked" if edge == ("b1", "d") else "allow",) for edge in figure1_graph.edges}
        abstraction = make_abstraction(
            figure1_graph, {"a": "A", "b1": "B", "b2": "B", "d": "D"}
        )
        report = check_transfer_equivalence(srp, abstraction, policy_keys=keys)
        assert not report.holds


class TestSelfLoopFree:
    def test_self_loop_in_hand_built_abstract_graph_detected(self):
        """Induced abstractions drop intra-group edges (as Bonsai does for
        full meshes), but a hand-built abstract graph with a self loop must
        still be rejected."""
        g = Graph()
        g.add_undirected_edge("a", "b")
        abstract = Graph()
        abstract.add_edge("X", "X")
        abstraction = NetworkAbstraction(
            node_map={"a": "X", "b": "X"}, abstract_graph=abstract
        )
        assert not check_self_loop_free(abstraction).holds

    def test_induced_abstraction_of_adjacent_group_drops_internal_edges(self):
        g = Graph()
        g.add_undirected_edge("a", "b")
        g.add_undirected_edge("b", "c")
        abstraction = make_abstraction(g, {"a": "X", "b": "X", "c": "C"})
        assert check_self_loop_free(abstraction).holds
        assert not abstraction.abstract_graph.has_edge("X", "X")

    def test_no_self_loop_ok(self, figure1_graph):
        abstraction = make_abstraction(
            figure1_graph, {"a": "A", "b1": "B", "b2": "B", "d": "D"}
        )
        assert check_self_loop_free(abstraction).holds


class TestAggregateReports:
    def test_effective_report_for_good_abstraction(self, figure1_srp, figure1_graph):
        abstraction = make_abstraction(
            figure1_graph, {"a": "A", "b1": "B", "b2": "B", "d": "D"}
        )
        report = check_effective(figure1_srp, abstraction)
        assert report.is_effective
        assert report.failed() == []
        assert "ok" in report.summary()

    def test_bgp_effective_report(self, figure2_srp, figure2_graph):
        abstraction = make_abstraction(
            figure2_graph, {"a": "A", "b1": "B", "b2": "B", "b3": "B", "d": "D"}
        )
        report = check_bgp_effective(figure2_srp, abstraction)
        assert report.is_effective

    def test_report_lists_failures(self, figure2_srp, figure2_graph):
        node_map = {"a": "X", "b1": "X", "b2": "X", "b3": "X", "d": "D"}
        abstraction = make_abstraction(figure2_graph, node_map)
        report = check_effective(figure2_srp, abstraction)
        assert not report.is_effective
        assert any(not condition.holds for condition in report.failed())
        assert "VIOLATED" in report.summary()
