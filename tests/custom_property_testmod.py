"""A user-style property registration module (not a test file).

Imported by name through ``PropertySuite.register_modules`` in
tests/test_batch_verifier.py: the suite's coordinator *and* every pool
worker rebuild their per-process registry by importing this module, which
is exactly how user code is expected to ship custom properties to the
batch engine.
"""

from repro.analysis.properties import PropertyResult, PropertySpec, register_property

register_property(
    PropertySpec(
        name="has-any-next-hop",
        description="the source either delivers locally or has a next hop",
        evaluate=lambda ctx, source: PropertyResult(
            holds=bool(ctx.table.forwards_to(source)) or ctx.table.delivers(source)
        ),
        path_quantified=False,
    )
)
