"""Unit tests for compiling configurations into SRPs (config.transfer)."""

import pytest

from repro.config import (
    Network,
    Prefix,
    VIRTUAL_DESTINATION,
    build_srp_from_network,
    compile_edges,
    parse_network,
    specialize_route_map,
    syntactic_policy_keys,
)
from repro.config.device import DeviceConfig
from repro.config.routemap import (
    CommunityList,
    PrefixList,
    PrefixListEntry,
    RouteMap,
    RouteMapClause,
)
from repro.srp import solve

DEST = Prefix.parse("10.0.1.0/24")

NETWORK_TEXT = """
device leaf
  network 10.0.1.0/24
  bgp-neighbor spine export EXPORT
  route-map EXPORT 10 permit
    match prefix-list OWN
  prefix-list OWN permit 10.0.1.0/24

device spine
  bgp-neighbor leaf import IMPORT
  bgp-neighbor edge export EXPORT-ALL
  route-map IMPORT 10 permit
    set local-preference 200
  route-map EXPORT-ALL 10 permit

device edge
  bgp-neighbor spine import IMPORT-ALL
  route-map IMPORT-ALL 10 permit

link leaf spine
link spine edge
"""


@pytest.fixture
def network() -> Network:
    return parse_network(NETWORK_TEXT)


class TestCompileEdges:
    def test_bgp_sessions_detected(self, network):
        compiled = compile_edges(network, DEST)
        info = compiled[("spine", "leaf")]
        assert info.has_bgp
        assert info.export_map.name == "EXPORT"
        assert info.import_map.name == "IMPORT"

    def test_session_requires_both_sides(self, network):
        network.devices["edge"].bgp_neighbors.clear()
        compiled = compile_edges(network, DEST)
        assert not compiled[("edge", "spine")].has_bgp

    def test_static_route_detected_for_matching_destination(self, network):
        from repro.config.device import StaticRouteConfig

        network.devices["edge"].static_routes.append(
            StaticRouteConfig(prefix=DEST, next_hop="spine")
        )
        compiled = compile_edges(network, DEST)
        assert compiled[("edge", "spine")].has_static
        other = compile_edges(network, Prefix.parse("10.0.9.0/24"))
        assert not other[("edge", "spine")].has_static

    def test_acl_evaluated_against_destination(self, network):
        from repro.config.acl import Acl, AclLine

        edge = network.devices["edge"]
        edge.acls["BLOCK"] = Acl(
            name="BLOCK", lines=(AclLine(action="deny", prefix=DEST),), default_action="permit"
        )
        edge.interface_acls["spine"] = "BLOCK"
        compiled = compile_edges(network, DEST)
        assert not compiled[("edge", "spine")].acl_permits
        other = compile_edges(network, Prefix.parse("10.0.9.0/24"))
        assert other[("edge", "spine")].acl_permits


class TestSpecializeRouteMap:
    def device(self) -> DeviceConfig:
        device = DeviceConfig(name="r")
        device.prefix_lists["OWN"] = PrefixList(
            name="OWN", entries=(PrefixListEntry(prefix=DEST),)
        )
        device.community_lists["tags"] = CommunityList(name="tags", communities=("65001:1",))
        return device

    def test_prefix_clause_dropped_when_it_cannot_match(self):
        device = self.device()
        route_map = RouteMap(
            name="M",
            clauses=(
                RouteMapClause(sequence=10, action="permit", match_prefix_lists=("OWN",)),
            ),
        )
        matching = specialize_route_map(route_map, device, DEST)
        not_matching = specialize_route_map(route_map, device, Prefix.parse("10.0.2.0/24"))
        assert matching != not_matching
        assert not_matching == ("deny-all",)

    def test_community_lists_resolved_to_values(self):
        device = self.device()
        route_map = RouteMap(
            name="M",
            clauses=(
                RouteMapClause(
                    sequence=10, action="permit", match_community_lists=("tags",)
                ),
            ),
        )
        key = specialize_route_map(route_map, device, DEST)
        assert frozenset({"65001:1"}) in key[0]

    def test_ignored_communities_removed_from_set_actions(self):
        device = self.device()
        route_map = RouteMap(
            name="M",
            clauses=(
                RouteMapClause(sequence=10, action="permit", set_communities=("junk", "keep")),
            ),
        )
        with_junk = specialize_route_map(route_map, device, DEST)
        without = specialize_route_map(
            route_map, device, DEST, ignore_communities=frozenset({"junk"})
        )
        assert with_junk != without

    def test_missing_route_map_is_permit_all(self):
        assert specialize_route_map(None, self.device(), DEST) == ("permit-all",)


class TestBuildSrp:
    def test_solution_propagates_with_policies(self, network):
        srp = build_srp_from_network(network, DEST)
        solution = solve(srp)
        assert solution.labeling["spine"].bgp.local_pref == 200
        assert solution.labeling["spine"].bgp.as_path == ("leaf",)
        assert solution.labeling["edge"].bgp.as_path == ("spine", "leaf")
        assert solution.next_hops("edge") == {"spine"}

    def test_unoriginated_destination_rejected(self, network):
        with pytest.raises(ValueError):
            build_srp_from_network(network, Prefix.parse("192.168.0.0/16"))

    def test_node_prefs_from_configs(self, network):
        srp = build_srp_from_network(network, DEST)
        assert srp.prefs("spine") == (100, 200)
        assert srp.prefs("edge") == (100,)

    def test_multiple_origins_get_virtual_destination(self, network):
        network.devices["edge"].originated_prefixes.append(DEST)
        srp = build_srp_from_network(network, DEST)
        assert srp.destination == VIRTUAL_DESTINATION
        solution = solve(srp)
        assert solution.labeling["leaf"] is not None
        assert solution.labeling["edge"] is not None

    def test_export_filter_blocks_other_prefixes(self, network):
        # leaf's EXPORT map only permits 10.0.1.0/24; originate a second
        # prefix and check it does not propagate.
        other = Prefix.parse("10.0.5.0/24")
        network.devices["leaf"].originated_prefixes.append(other)
        srp = build_srp_from_network(network, other)
        solution = solve(srp)
        assert solution.labeling["spine"] is None
        assert solution.labeling["edge"] is None


class TestSyntacticPolicyKeys:
    def test_symmetric_edges_share_keys(self, small_fattree):
        prefix = Prefix.parse("10.0.0.0/24")
        keys = syntactic_policy_keys(small_fattree, prefix)
        # Two different core switches' sessions towards aggregation
        # switches carry identical policy.
        assert keys[("core0", "agg0_0")] == keys[("core1", "agg0_0")]

    def test_keys_differ_when_policy_differs(self, network):
        prefix = DEST
        keys = syntactic_policy_keys(network, prefix)
        assert keys[("spine", "leaf")] != keys[("edge", "spine")]


class TestPickleSafety:
    """SRPs (and their transfer functions) must survive pickling so the
    parallel pipeline can ship compression work across processes."""

    def test_srp_round_trips_through_pickle(self, network=None):
        import pickle

        net = parse_network(NETWORK_TEXT)
        srp = build_srp_from_network(net, DEST)
        clone = pickle.loads(pickle.dumps(srp))
        for edge in srp.graph.edges:
            assert clone.transfer(edge, None) == srp.transfer(edge, None)
            assert clone.transfer(edge, srp.initial) == srp.transfer(edge, srp.initial)
        assert clone.destination == srp.destination
        assert clone.edge_policies == srp.edge_policies

    def test_compiled_edges_pickle(self):
        import pickle

        net = parse_network(NETWORK_TEXT)
        compiled = compile_edges(net, DEST)
        clone = pickle.loads(pickle.dumps(compiled))
        assert set(clone) == set(compiled)
        for edge, info in compiled.items():
            assert clone[edge] == info
