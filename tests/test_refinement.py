"""Unit tests for the abstraction-refinement algorithm (Algorithm 1)."""

from repro.abstraction import (
    check_bgp_effective,
    check_effective,
    compute_abstraction,
    find_abstraction_partition,
    split_into_bgp_cases,
)
from repro.routing import SetLocalPref, build_bgp_srp, build_rip_srp, build_ospf_srp
from repro.topology import Graph, chain_topology, full_mesh_topology, ring_topology


class TestRipRefinement:
    def test_figure1_compresses_to_three_nodes(self, figure1_srp):
        result = compute_abstraction(figure1_srp)
        assert result.num_abstract_nodes == 3
        assert result.num_abstract_edges == 2
        groups = {frozenset(g) for g in result.abstraction.groups()}
        assert frozenset({"b1", "b2"}) in groups

    def test_resulting_abstraction_is_effective(self, figure1_srp):
        result = compute_abstraction(figure1_srp)
        assert check_effective(figure1_srp, result.abstraction).is_effective

    def test_chain_cannot_compress(self):
        """A chain has no symmetry: every node is a different distance from
        the destination, so the abstraction keeps every node separate."""
        graph, _ = chain_topology(5)
        srp = build_rip_srp(graph, "r0")
        result = compute_abstraction(srp)
        assert result.num_abstract_nodes == 5

    def test_ring_compresses_to_about_half(self):
        graph, _ = ring_topology(10)
        srp = build_rip_srp(graph, "r0")
        result = compute_abstraction(srp)
        assert result.num_abstract_nodes == 6
        assert check_effective(srp, result.abstraction).is_effective

    def test_full_mesh_compresses_to_two_nodes(self):
        graph, _ = full_mesh_topology(8)
        srp = build_rip_srp(graph, "r0")
        result = compute_abstraction(srp)
        assert result.num_abstract_nodes == 2
        assert result.num_abstract_edges == 1


class TestOspfRefinement:
    def test_cost_differences_prevent_merging(self):
        graph = Graph()
        for node in ("b1", "b2"):
            graph.add_undirected_edge("a", node)
            graph.add_undirected_edge(node, "d")
        equal = build_ospf_srp(graph, "d")
        unequal = build_ospf_srp(graph, "d", link_costs={("b1", "d"): 10})
        assert compute_abstraction(equal).num_abstract_nodes == 3
        assert compute_abstraction(unequal).num_abstract_nodes == 4


class TestBgpRefinement:
    def test_figure3_refinement_steps(self, figure2_srp):
        partition, iterations = find_abstraction_partition(figure2_srp)
        # Destination, a, and the b-group: three groups before case splitting.
        assert partition.num_groups() == 3
        assert iterations >= 2
        groups = {frozenset(partition.members(g)) for g in partition.groups()}
        assert frozenset({"b1", "b2", "b3"}) in groups
        assert frozenset({"a"}) in groups
        assert frozenset({"d"}) in groups

    def test_bgp_case_split_uses_pref_count(self, figure2_srp):
        partition, _ = find_abstraction_partition(figure2_srp)
        splits = split_into_bgp_cases(figure2_srp, partition)
        assert len(splits) == 1
        copies = next(iter(splits.values()))
        assert len(copies) == 2  # |prefs| = {100, 200}

    def test_figure3_final_abstraction_size(self, figure2_srp):
        result = compute_abstraction(figure2_srp)
        assert result.num_abstract_nodes == 4
        assert result.num_abstract_edges == 4
        assert result.split_counts and list(result.split_counts.values()) == [2]

    def test_disabling_case_split_gives_naive_abstraction(self, figure2_srp):
        result = compute_abstraction(figure2_srp, bgp_case_split=False)
        assert result.num_abstract_nodes == 3

    def test_no_split_without_policy(self):
        """Shortest-path BGP uses only the default local preference, so no
        case splitting is needed even with loop prevention (Theorem 4.4)."""
        graph = Graph()
        for b in ("b1", "b2", "b3"):
            graph.add_undirected_edge("a", b)
            graph.add_undirected_edge(b, "d")
        srp = build_bgp_srp(graph, "d")
        result = compute_abstraction(srp)
        assert result.split_counts == {}
        assert result.num_abstract_nodes == 3

    def test_bgp_effective_conditions_hold(self, figure2_srp):
        result = compute_abstraction(figure2_srp)
        report = check_bgp_effective(figure2_srp, result.abstraction)
        assert report.is_effective

    def test_policy_differences_split_nodes(self):
        graph = Graph()
        for b in ("b1", "b2", "b3"):
            graph.add_undirected_edge("a", b)
            graph.add_undirected_edge(b, "d")
        # Only b1 prefers routes from a; b2/b3 are plain.
        imports = {("b1", "a"): SetLocalPref(200)}
        srp = build_bgp_srp(graph, "d", import_policies=imports)
        result = compute_abstraction(srp)
        groups = {frozenset(g) for g in result.abstraction.groups()}
        assert frozenset({"b2", "b3"}) in groups
        assert frozenset({"b1"}) in groups

    def test_iterations_and_timing_reported(self, figure2_srp):
        result = compute_abstraction(figure2_srp)
        assert result.iterations >= 1
        assert result.elapsed_seconds >= 0.0


class TestCustomPolicyKeys:
    def test_explicit_keys_override_srp_policies(self, figure1_srp):
        keys = {edge: ("same",) for edge in figure1_srp.graph.edges}
        keys[("b1", "d")] = ("different",)
        result = compute_abstraction(figure1_srp, policy_keys=keys)
        groups = {frozenset(g) for g in result.abstraction.groups()}
        assert frozenset({"b1"}) in groups
        assert frozenset({"b2"}) in groups


class TestRefinementCoverage:
    """Corner cases of the refinement module itself."""

    def test_max_iterations_stops_early_with_coarser_partition(self):
        graph, _ = chain_topology(6)
        srp = build_rip_srp(graph, "r0")
        full, full_iterations = find_abstraction_partition(srp)
        capped, iterations = find_abstraction_partition(srp, max_iterations=1)
        assert iterations == 1
        assert full_iterations > 1
        # One pass cannot finish separating a chain; the partition is a
        # coarsening of the fixed point.
        assert capped.num_groups() < full.num_groups()
        assert full.num_groups() == 6

    def test_compute_abstraction_forwards_max_iterations(self):
        graph, _ = chain_topology(6)
        srp = build_rip_srp(graph, "r0")
        capped = compute_abstraction(srp, max_iterations=1)
        full = compute_abstraction(srp)
        assert capped.iterations == 1
        assert capped.num_abstract_nodes < full.num_abstract_nodes

    def test_transfer_violation_pass_is_noop_at_signature_fixed_point(self):
        """At the signature fixed point the explicit transfer-equivalence
        check cannot find further splits: the (policy, target) pair sets
        determine the per-target policy sets.  The pass exists as a safety
        net and must be a no-op on refined partitions."""
        from repro.abstraction.refinement import _split_transfer_violations
        from repro.abstraction.partition import UnionSplitFind

        graph, _ = ring_topology(8)
        srp = build_rip_srp(graph, "r0")
        partition, _ = find_abstraction_partition(srp)
        before = partition.num_groups()
        keys = {edge: srp.policy_key(edge) for edge in graph.edges}
        assert _split_transfer_violations(graph, keys, partition) == []
        assert partition.num_groups() == before
        assert isinstance(partition, UnionSplitFind)

    def test_destination_group_is_never_case_split(self, figure2_srp):
        partition, _ = find_abstraction_partition(figure2_srp)
        splits = split_into_bgp_cases(figure2_srp, partition)
        destination_name = partition.canonical_names()["d"]
        assert destination_name not in splits

    def test_split_copy_names_derive_from_base(self, figure2_srp):
        result = compute_abstraction(figure2_srp)
        for base, copies in result.abstraction.split_groups.items():
            assert len(copies) == result.split_counts[base]
            assert all(copy.startswith(f"{base}_case") for copy in copies)
            # Copies share the base group's concrete members.
            for copy in copies:
                assert result.abstraction.concrete_nodes(copy) == (
                    result.abstraction.concrete_nodes(base)
                )

    def test_result_sizes_match_materialised_abstraction(self, figure2_srp):
        result = compute_abstraction(figure2_srp)
        assert result.num_abstract_nodes == result.abstraction.num_abstract_nodes()
        assert result.num_abstract_edges == result.abstraction.num_abstract_edges()
        assert result.elapsed_seconds >= 0.0
