"""Unit tests for the directed graph substrate."""

import pytest

from repro.topology import Graph, GraphError


def test_add_nodes_and_edges():
    g = Graph()
    g.add_edge("a", "b")
    assert g.has_node("a") and g.has_node("b")
    assert g.has_edge("a", "b")
    assert not g.has_edge("b", "a")
    assert g.num_nodes() == 2
    assert g.num_edges() == 1


def test_constructor_with_nodes_and_edges():
    g = Graph(nodes=["x"], edges=[("a", "b"), ("b", "c")])
    assert set(g.nodes) == {"x", "a", "b", "c"}
    assert g.num_edges() == 2


def test_add_undirected_edge_adds_both_directions():
    g = Graph()
    g.add_undirected_edge("a", "b")
    assert g.has_edge("a", "b") and g.has_edge("b", "a")
    assert g.num_undirected_edges() == 1
    assert g.num_edges() == 2


def test_duplicate_edges_are_idempotent():
    g = Graph()
    g.add_edge("a", "b")
    g.add_edge("a", "b")
    assert g.num_edges() == 1


def test_successors_and_predecessors():
    g = Graph(edges=[("a", "b"), ("a", "c"), ("d", "a")])
    assert g.successors("a") == {"b", "c"}
    assert g.predecessors("a") == {"d"}
    assert g.out_edges("a") == [("a", "b"), ("a", "c")] or set(g.out_edges("a")) == {("a", "b"), ("a", "c")}
    assert g.in_edges("a") == [("d", "a")]
    assert g.degree("a") == 3


def test_remove_edge_and_node():
    g = Graph(edges=[("a", "b"), ("b", "c")])
    g.remove_edge("a", "b")
    assert not g.has_edge("a", "b")
    g.remove_node("b")
    assert not g.has_node("b")
    assert g.num_edges() == 0


def test_remove_missing_edge_raises():
    g = Graph(nodes=["a", "b"])
    with pytest.raises(GraphError):
        g.remove_edge("a", "b")
    with pytest.raises(GraphError):
        g.remove_node("zzz")


def test_self_loop_detection():
    g = Graph(edges=[("a", "a")])
    assert g.has_self_loop()
    g2 = Graph(edges=[("a", "b")])
    assert not g2.has_self_loop()


def test_copy_is_independent():
    g = Graph(edges=[("a", "b")])
    copy = g.copy()
    copy.add_edge("b", "c")
    assert not g.has_node("c")
    assert copy.has_edge("b", "c")


def test_subgraph_keeps_internal_edges_only():
    g = Graph(edges=[("a", "b"), ("b", "c"), ("c", "a")])
    sub = g.subgraph(["a", "b"])
    assert set(sub.nodes) == {"a", "b"}
    assert sub.has_edge("a", "b")
    assert not sub.has_edge("b", "c")


def test_subgraph_unknown_node_raises():
    g = Graph(edges=[("a", "b")])
    with pytest.raises(GraphError):
        g.subgraph(["a", "zzz"])


def test_reverse():
    g = Graph(edges=[("a", "b")])
    r = g.reverse()
    assert r.has_edge("b", "a")
    assert not r.has_edge("a", "b")


def test_bfs_distances_and_reachability():
    g = Graph(edges=[("a", "b"), ("b", "c"), ("x", "y")])
    dist = g.bfs_distances("a")
    assert dist == {"a": 0, "b": 1, "c": 2}
    assert g.reachable_from("a") == {"a", "b", "c"}
    assert g.is_connected_to("a", "c")
    assert not g.is_connected_to("a", "y")


def test_bfs_from_unknown_node_raises():
    g = Graph(nodes=["a"])
    with pytest.raises(GraphError):
        g.bfs_distances("zzz")


def test_cycle_detection():
    acyclic = Graph(edges=[("a", "b"), ("b", "c")])
    assert acyclic.is_dag()
    assert acyclic.find_cycle() == []
    cyclic = Graph(edges=[("a", "b"), ("b", "c"), ("c", "a")])
    assert not cyclic.is_dag()
    cycle = cyclic.find_cycle()
    assert len(cycle) >= 3
    assert cycle[0] == cycle[-1]


def test_len_iter_contains():
    g = Graph(nodes=["a", "b"])
    assert len(g) == 2
    assert "a" in g
    assert set(iter(g)) == {"a", "b"}


def test_undirected_edge_count_with_one_direction_only():
    g = Graph(edges=[("a", "b")])
    assert g.num_undirected_edges() == 1
