"""Unit tests for multi-protocol networks (§6)."""

from repro.routing import (
    BgpAttribute,
    MultiProtocol,
    MultiProtocolConfig,
    OspfAttribute,
    RibAttribute,
    StaticAttribute,
    build_multiprotocol_srp,
)
from repro.srp import solve
from repro.topology import Graph, chain_topology


def both_directions(*pairs):
    edges = set()
    for u, v in pairs:
        edges.add((u, v))
        edges.add((v, u))
    return edges


def test_admin_distance_prefers_static_then_bgp_then_ospf():
    protocol = MultiProtocol()
    static = RibAttribute(static=StaticAttribute(), chosen="static")
    bgp = RibAttribute(bgp=BgpAttribute(), chosen="ebgp")
    ospf = RibAttribute(ospf=OspfAttribute(cost=1), chosen="ospf")
    assert protocol.prefer(static, bgp)
    assert protocol.prefer(bgp, ospf)
    assert protocol.prefer(static, ospf)


def test_bgp_tie_break_inside_rib():
    protocol = MultiProtocol()
    short = RibAttribute(bgp=BgpAttribute(as_path=("a",)), chosen="ebgp")
    long = RibAttribute(bgp=BgpAttribute(as_path=("a", "b")), chosen="ebgp")
    assert protocol.prefer(short, long)


def test_bgp_only_network():
    graph, _ = chain_topology(3)
    config = MultiProtocolConfig(bgp_edges=both_directions(("r0", "r1"), ("r1", "r2")))
    srp = build_multiprotocol_srp(graph, "r0", config)
    solution = solve(srp)
    assert solution.labeling["r2"].chosen == "ebgp"
    assert solution.labeling["r2"].bgp.as_path == ("r1", "r0")


def test_ospf_only_network():
    graph, _ = chain_topology(3)
    config = MultiProtocolConfig(
        ospf_edges=both_directions(("r0", "r1"), ("r1", "r2")),
        ospf_costs={("r2", "r1"): 7, ("r1", "r0"): 3},
    )
    srp = build_multiprotocol_srp(graph, "r0", config)
    solution = solve(srp)
    assert solution.labeling["r2"].chosen == "ospf"
    assert solution.labeling["r2"].ospf.cost == 10


def test_static_route_overrides_bgp():
    graph = Graph()
    graph.add_undirected_edge("a", "b")
    graph.add_undirected_edge("a", "d")
    graph.add_undirected_edge("b", "d")
    config = MultiProtocolConfig(
        bgp_edges=both_directions(("a", "b"), ("a", "d"), ("b", "d")),
        static_edges={("a", "b")},
    )
    srp = build_multiprotocol_srp(graph, "d", config)
    solution = solve(srp)
    # BGP would choose the direct link, but the static route wins by
    # administrative distance and points at b.
    assert solution.labeling["a"].chosen == "static"
    assert solution.next_hops("a") == {"b"}


def test_no_protocol_means_no_route():
    graph, _ = chain_topology(3)
    config = MultiProtocolConfig(bgp_edges=both_directions(("r0", "r1")))
    srp = build_multiprotocol_srp(graph, "r0", config)
    solution = solve(srp)
    assert solution.labeling["r1"] is not None
    assert solution.labeling["r2"] is None


def test_redistribution_injects_ospf_route_into_bgp():
    # r0 -(ospf)- r1 -(bgp)- r2 ; r1 redistributes OSPF into BGP.
    graph, _ = chain_topology(3)
    config = MultiProtocolConfig(
        ospf_edges=both_directions(("r0", "r1")),
        bgp_edges=both_directions(("r1", "r2")),
        redistribute_ospf_into_bgp={"r1"},
    )
    srp = build_multiprotocol_srp(graph, "r0", config)
    solution = solve(srp)
    assert solution.labeling["r1"].chosen == "ospf"
    assert solution.labeling["r2"] is not None
    assert solution.labeling["r2"].chosen == "ebgp"


def test_without_redistribution_bgp_island_is_unreachable():
    graph, _ = chain_topology(3)
    config = MultiProtocolConfig(
        ospf_edges=both_directions(("r0", "r1")),
        bgp_edges=both_directions(("r1", "r2")),
    )
    srp = build_multiprotocol_srp(graph, "r0", config)
    solution = solve(srp)
    assert solution.labeling["r2"] is None
