"""Unit tests for the eBGP model, policies and loop prevention (§3.2, §4.3)."""


from repro.routing import (
    AddCommunity,
    AllowAll,
    BgpAttribute,
    BgpProtocol,
    DenyAll,
    FilterCommunity,
    PrependAs,
    RemoveCommunity,
    SetLocalPref,
    build_bgp_srp,
    chain,
    policy_local_prefs,
)
from repro.srp import solve
from repro.topology import Graph, chain_topology


class TestBgpPreference:
    def test_local_pref_dominates_path_length(self):
        bgp = BgpProtocol()
        long_but_preferred = BgpAttribute(local_pref=200, as_path=("a", "b", "c"))
        short = BgpAttribute(local_pref=100, as_path=("x",))
        assert bgp.prefer(long_but_preferred, short)

    def test_path_length_breaks_ties(self):
        bgp = BgpProtocol()
        assert bgp.prefer(BgpAttribute(as_path=("a",)), BgpAttribute(as_path=("a", "b")))

    def test_equal_attributes_not_strictly_preferred(self):
        bgp = BgpProtocol()
        a = BgpAttribute(as_path=("x",))
        b = BgpAttribute(as_path=("y",))
        assert bgp.equally_preferred(a, b)


class TestBgpPolicies:
    def test_allow_and_deny(self):
        attr = BgpAttribute()
        assert AllowAll().apply(attr) == attr
        assert DenyAll().apply(attr) is None

    def test_set_local_pref_unconditional(self):
        assert SetLocalPref(300).apply(BgpAttribute()).local_pref == 300

    def test_set_local_pref_community_guard(self):
        policy = SetLocalPref(300, match_any_community=frozenset({"65001:1"}))
        untagged = BgpAttribute()
        tagged = BgpAttribute(communities=frozenset({"65001:1"}))
        assert policy.apply(untagged).local_pref == 100
        assert policy.apply(tagged).local_pref == 300

    def test_add_remove_filter_community(self):
        attr = AddCommunity("65001:9").apply(BgpAttribute())
        assert attr.has_community("65001:9")
        assert not RemoveCommunity("65001:9").apply(attr).has_community("65001:9")
        assert FilterCommunity(frozenset({"65001:9"})).apply(attr) is None
        assert FilterCommunity(frozenset({"65001:8"})).apply(attr) == attr

    def test_prepend(self):
        attr = PrependAs("me", count=2).apply(BgpAttribute())
        assert attr.as_path == ("me", "me")

    def test_chain_stops_on_denial(self):
        policy = chain(DenyAll(), AddCommunity("never"))
        assert policy.apply(BgpAttribute()) is None

    def test_chain_applies_in_order(self):
        policy = chain(AddCommunity("65001:1"), SetLocalPref(200, frozenset({"65001:1"})))
        assert policy.apply(BgpAttribute()).local_pref == 200

    def test_policy_local_prefs_collects_nested_values(self):
        policy = chain(SetLocalPref(200), chain(SetLocalPref(300)))
        assert policy_local_prefs(policy) == frozenset({200, 300})
        assert policy_local_prefs(AllowAll()) == frozenset()


class TestBgpSrp:
    def test_as_path_grows_along_chain(self):
        graph, _ = chain_topology(4)
        srp = build_bgp_srp(graph, "r0")
        solution = solve(srp)
        assert solution.labeling["r3"].as_path == ("r2", "r1", "r0")

    def test_shortest_as_path_wins_without_policy(self):
        graph = Graph()
        for u, v in [("a", "b"), ("b", "d"), ("a", "d")]:
            graph.add_undirected_edge(u, v)
        srp = build_bgp_srp(graph, "d")
        solution = solve(srp)
        assert solution.next_hops("a") == {"d"}

    def test_loop_prevention_rejects_routes_through_self(self):
        """The gadget of Figure 2: exactly one b router is forced downhill."""
        graph = Graph()
        for b in ("b1", "b2", "b3"):
            graph.add_undirected_edge("a", b)
            graph.add_undirected_edge(b, "d")
        imports = {(b, "a"): SetLocalPref(200) for b in ("b1", "b2", "b3")}
        srp = build_bgp_srp(graph, "d", import_policies=imports)
        solution = solve(srp)
        down = [b for b in ("b1", "b2", "b3") if solution.next_hops(b) == {"d"}]
        up = [b for b in ("b1", "b2", "b3") if solution.next_hops(b) == {"a"}]
        assert len(down) == 1
        assert len(up) == 2
        # The router forced downhill is the one a's route goes through.
        assert solution.labeling["a"].as_path[0] == down[0]
        assert solution.is_stable()

    def test_without_loop_prevention_route_is_accepted(self):
        graph = Graph()
        graph.add_undirected_edge("a", "b")
        graph.add_undirected_edge("b", "d")
        srp = build_bgp_srp(graph, "d", loop_prevention=False)
        # Manually push an attribute containing the receiver through transfer.
        attr = BgpAttribute(as_path=("a", "x"))
        transferred = srp.transfer(("a", "b"), attr)
        assert transferred is not None
        assert transferred.as_path[0] == "b"

    def test_export_policy_applies_before_import(self):
        graph = Graph()
        graph.add_undirected_edge("a", "d")
        exports = {("a", "d"): AddCommunity("65001:7")}
        imports = {("a", "d"): SetLocalPref(400, frozenset({"65001:7"}))}
        srp = build_bgp_srp(graph, "d", import_policies=imports, export_policies=exports)
        solution = solve(srp)
        assert solution.labeling["a"].local_pref == 400
        assert solution.labeling["a"].has_community("65001:7")

    def test_export_deny_blackholes_neighbour(self):
        graph, _ = chain_topology(3)
        exports = {("r1", "r0"): DenyAll()}
        srp = build_bgp_srp(graph, "r0", export_policies=exports)
        solution = solve(srp)
        assert solution.labeling["r1"] is None
        assert solution.labeling["r2"] is None

    def test_node_prefs_recorded_for_case_splitting(self):
        graph, _ = chain_topology(3)
        imports = {("r1", "r0"): SetLocalPref(250)}
        srp = build_bgp_srp(graph, "r0", import_policies=imports)
        assert srp.prefs("r1") == (100, 250)
        assert srp.prefs("r2") == (100,)

    def test_attribute_abstraction_maps_paths_and_strips_unused(self):
        protocol = BgpProtocol(unused_communities=frozenset({"junk"}))
        attr = BgpAttribute(
            local_pref=200,
            communities=frozenset({"junk", "keep"}),
            as_path=("b2", "d"),
        )
        mapped = protocol.abstract_attribute(attr, lambda node: "b" if node.startswith("b") else node)
        assert mapped.as_path == ("b", "d")
        assert mapped.communities == frozenset({"keep"})
        assert mapped.local_pref == 200
        assert protocol.abstract_attribute(None, lambda node: node) is None
