"""Tests for the unified telemetry layer (repro.obs): the metrics
registry, structured tracing across every executor, trace files, report
envelope blocks, and the serve scrape surfaces."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import metrics, trace
from repro.pipeline.core import CompressionPipeline
from repro.pipeline.encoded import EncodedNetwork


@pytest.fixture(autouse=True)
def clean_obs_state():
    """Each test starts from an empty, enabled registry and no trace."""
    metrics.reset()
    metrics.enable()
    yield
    if trace.enabled():
        trace.end()
    metrics.reset()
    metrics.enable()


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counter_gauge_histogram_basics(self):
        metrics.counter("t.count").inc()
        metrics.counter("t.count").inc(4)
        metrics.gauge("t.gauge").set(2.5)
        metrics.gauge("t.gauge").max(1.0)  # lower: no-op
        metrics.gauge("t.gauge").max(7.0)
        for value in (1.0, 2.0, 3.0, 4.0):
            metrics.histogram("t.hist").observe(value)
        collected = metrics.collect()
        assert collected["counters"]["t.count"] == 5
        assert collected["gauges"]["t.gauge"] == 7.0
        hist = collected["histograms"]["t.hist"]
        assert hist["count"] == 4 and hist["sum"] == 10.0
        assert hist["min"] == 1.0 and hist["max"] == 4.0

    def test_histogram_memory_is_bounded(self):
        hist = metrics.histogram("t.bounded", reservoir=64)
        for i in range(5000):
            hist.observe(float(i))
        assert hist.count == 5000
        assert len(hist._reservoir) == 64
        # Exact aggregates survive the sampling.
        assert hist.min == 0.0 and hist.max == 4999.0

    def test_histogram_reservoir_is_deterministic(self):
        a = metrics.MetricsRegistry()
        b = metrics.MetricsRegistry()
        for i in range(3000):
            a.histogram("same.name").observe(float(i % 97))
            b.histogram("same.name").observe(float(i % 97))
        assert a.histogram("same.name").summary() == b.histogram("same.name").summary()

    def test_disable_returns_null_instruments(self):
        metrics.counter("t.kept").inc(3)
        metrics.disable()
        assert not metrics.enabled()
        metrics.counter("t.kept").inc(100)
        metrics.histogram("t.dropped").observe(1.0)
        metrics.enable()
        collected = metrics.collect()
        assert collected["counters"]["t.kept"] == 3
        assert "t.dropped" not in collected["histograms"]

    def test_snapshot_delta_merge(self):
        metrics.counter("t.a").inc(2)
        before = metrics.snapshot_counters()
        metrics.counter("t.a").inc(3)
        metrics.counter("t.b").inc()
        delta = metrics.counters_delta(before)
        assert delta == {"t.a": 3, "t.b": 1}
        other = metrics.MetricsRegistry()
        other.merge_counters(delta)
        assert other.snapshot_counters() == {"t.a": 3, "t.b": 1}

    def test_absorb_cache_info(self):
        metrics.absorb_cache_info(
            "t.cache", {"hits": 10, "misses": 2}, {"hits": 15, "misses": 2, "overflows": 1}
        )
        counters = metrics.collect()["counters"]
        assert counters["t.cache.hits"] == 5
        assert counters["t.cache.overflows"] == 1
        assert "t.cache.misses" not in counters  # zero deltas are dropped

    def test_prometheus_rendering(self):
        metrics.counter("srp.scratch_solves").inc(7)
        metrics.gauge("process.peak_rss_mb").set(123.5)
        for value in range(10):
            metrics.histogram("pipeline.class_seconds").observe(float(value))
        text = metrics.render_prometheus([metrics.REGISTRY])
        assert "repro_srp_scratch_solves_total 7" in text
        assert "repro_process_peak_rss_mb 123.5" in text
        assert 'repro_pipeline_class_seconds{quantile="0.5"}' in text
        assert "repro_pipeline_class_seconds_count 10" in text

    def test_prometheus_sums_counters_across_registries(self):
        extra = metrics.MetricsRegistry()
        metrics.counter("t.shared").inc(2)
        extra.counter("t.shared").inc(5)
        text = metrics.render_prometheus([metrics.REGISTRY, extra])
        assert "repro_t_shared_total 7" in text


# ----------------------------------------------------------------------
# Tracing primitives
# ----------------------------------------------------------------------
class TestTrace:
    def test_disabled_span_is_shared_noop(self):
        assert trace.span("anything", cls="x") is trace.span("other") is trace._NULL_SPAN

    def test_name_is_a_legal_tag(self):
        trace.begin("run")
        with trace.span("scenario", name="link:a-b"):
            pass
        root = trace.end()
        assert root.children[0].tags == {"name": "link:a-b"}

    def test_span_tree_and_metric_deltas(self):
        trace.begin("run", command="test")
        with trace.span("outer"):
            metrics.counter("t.work").inc(2)
            with trace.span("inner", cls="c1"):
                metrics.counter("t.work").inc(5)
        root = trace.end()
        assert not trace.enabled()
        (outer,) = root.children
        (inner,) = outer.children
        assert outer.metrics == {"t.work": 7}
        assert inner.metrics == {"t.work": 5}
        assert outer.self_metrics() == {"t.work": 2}
        assert outer.duration_ms >= inner.duration_ms

    def test_capture_unit_detached_root(self):
        # A pool worker whose process never saw begin(): capture still works.
        assert not trace.enabled()
        with trace.capture_unit(True, True, cls="10.0.0.0/24") as blob:
            metrics.counter("t.unit").inc(3)
            with trace.span("compress", cls="10.0.0.0/24"):
                pass
        assert not trace.enabled()
        assert blob["span"]["name"] == "class"
        assert blob["span"]["children"][0]["name"] == "compress"
        assert blob["metrics"]["t.unit"] == 3

    def test_capture_unit_without_flags_is_free(self):
        with trace.capture_unit(False, False, cls="x") as blob:
            pass
        assert blob == {"span": None, "metrics": None}

    def test_merge_chunk_spans(self):
        chunks = [
            {"name": "class", "tags": {"cls": "p", "chunk": 0}, "dur_ms": 2.0,
             "metrics": {"a": 1}, "children": [{"name": "s1", "tags": {}, "dur_ms": 1.0,
                                               "metrics": {}, "children": []}]},
            {"name": "class", "tags": {"cls": "p", "chunk": 1}, "dur_ms": 3.0,
             "metrics": {"a": 2, "b": 1}, "children": [{"name": "s2", "tags": {}, "dur_ms": 1.0,
                                                        "metrics": {}, "children": []}]},
        ]
        merged = trace.merge_chunk_spans(chunks)
        assert merged["tags"] == {"cls": "p"}
        assert merged["dur_ms"] == 5.0
        assert merged["metrics"] == {"a": 3, "b": 1}
        assert [c["name"] for c in merged["children"]] == ["s1", "s2"]

    @given(
        st.lists(
            st.lists(st.text("ab", min_size=1, max_size=3), max_size=4),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_merge_chunk_spans_concatenates_in_chunk_order(self, chunk_children):
        chunks = [
            {
                "name": "class",
                "tags": {"cls": "p", "chunk": index},
                "dur_ms": float(index),
                "metrics": {"n": len(children)},
                "children": [
                    {"name": name, "tags": {}, "dur_ms": 0.0, "metrics": {}, "children": []}
                    for name in children
                ],
            }
            for index, children in enumerate(chunk_children)
        ]
        merged = trace.merge_chunk_spans(chunks)
        assert [c["name"] for c in merged["children"]] == [
            name for children in chunk_children for name in children
        ]
        assert merged["metrics"].get("n", 0) == sum(len(c) for c in chunk_children)
        assert "chunk" not in merged["tags"]

    def test_jsonl_round_trip(self, tmp_path):
        trace.begin("run", command="test")
        with trace.span("family", family="ring"):
            with trace.span("class", cls="10.0.0.0/24"):
                metrics.counter("t.x").inc()
        root = trace.end()
        path = tmp_path / "trace.jsonl"
        trace.write_jsonl(str(path), root, context={"command": "test"})

        lines = [json.loads(line) for line in path.read_text().splitlines()]
        header = lines[0]
        assert header["kind"] == "trace"
        assert header["schema_version"] == trace.TRACE_SCHEMA_VERSION
        assert header["command"] == "test"
        assert {"id", "parent", "name", "tags", "dur_ms", "self_ms", "metrics"} <= set(lines[1])

        read_header, read_root = trace.read_jsonl(str(path))
        assert read_header["command"] == "test"
        assert read_root.structure() == root.structure()

    def test_read_jsonl_rejects_wrong_kind(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"kind": "report", "schema_version": 1}) + "\n")
        with pytest.raises(ValueError, match="not a trace file"):
            trace.read_jsonl(str(path))

    def test_summary_and_hotspots(self):
        trace.begin("run")
        with trace.span("slow"):
            with trace.span("fast"):
                pass
        root = trace.end()
        info = trace.summary(root, top=5)
        assert info["span_count"] == 3
        assert info["root"] == "run"
        names = [row["name"] for row in info["hotspots"]]
        assert set(names) <= {"run", "slow", "fast"}


# ----------------------------------------------------------------------
# Cross-executor parity: one deterministic tree
# ----------------------------------------------------------------------
def _traced_structure(run):
    trace.begin("run")
    try:
        run()
    finally:
        root = trace.end()
    return root.structure()


class TestExecutorParity:
    def test_compress_serial_thread_process_stealing(self, small_fattree):
        artifact = EncodedNetwork.build(small_fattree)

        def run_with(**kwargs):
            return _traced_structure(
                lambda: CompressionPipeline(artifact=artifact, **kwargs).run()
            )

        serial = run_with(executor="serial")
        thread = run_with(executor="thread", workers=3)
        process = run_with(executor="process", workers=2, scheduler="static")
        stealing = run_with(executor="process", workers=2, scheduler="stealing")
        assert serial == thread == process == stealing

    def test_failure_split_units_reassemble(self, small_fattree):
        """Few classes + many workers forces scenario chunking; the
        merged chunk spans must reproduce the serial sweep's tree."""
        from repro.failures import FailureSweep

        kwargs = dict(k=1, soundness=False, oracle=False, limit=2)
        serial = _traced_structure(
            lambda: FailureSweep(small_fattree, executor="serial", **kwargs).run()
        )
        stolen = _traced_structure(
            lambda: FailureSweep(
                small_fattree, executor="process", workers=4, **kwargs
            ).run()
        )
        assert serial == stolen

    def test_delta_split_units_reassemble(self, small_fattree):
        from repro.delta import DeltaSweep
        from repro.netgen.changes import generated_change_script

        script = generated_change_script(small_fattree, "fattree")
        kwargs = dict(script=script, oracle=False, revalidate=True, limit=2)
        serial = _traced_structure(
            lambda: DeltaSweep(small_fattree, executor="serial", **kwargs).run()
        )
        stolen = _traced_structure(
            lambda: DeltaSweep(
                small_fattree, executor="process", workers=4, **kwargs
            ).run()
        )
        assert serial == stolen

    @given(st.integers(1, 6))
    @settings(max_examples=5, deadline=None)
    def test_thread_parity_any_worker_count(self, workers):
        # Built per example (hypothesis forbids fixture reuse across examples).
        from repro.netgen.families import build_topology

        network = build_topology("ring", 4)
        artifact = EncodedNetwork.build(network)
        serial = _traced_structure(
            lambda: CompressionPipeline(artifact=artifact, executor="serial").run()
        )
        threaded = _traced_structure(
            lambda: CompressionPipeline(
                artifact=artifact, executor="thread", workers=workers
            ).run()
        )
        assert serial == threaded

    def test_process_workers_ship_counter_deltas(self, small_fattree):
        artifact = EncodedNetwork.build(small_fattree)
        before = metrics.snapshot_counters()
        CompressionPipeline(artifact=artifact, executor="process", workers=2).run()
        delta = metrics.counters_delta(before)
        # The compress work happens in pool workers; their solver/class
        # counters must still land in the coordinator's registry.
        assert delta.get("pipeline.classes_completed", 0) == len(
            artifact.classes
        )
        assert delta.get("abstraction.refinement_cache.misses", 0) > 0


# ----------------------------------------------------------------------
# Report envelopes
# ----------------------------------------------------------------------
class TestReportEnvelope:
    def test_compress_report_carries_obs_metrics(self, small_ring):
        report = CompressionPipeline(small_ring, executor="serial").run().report
        data = report.to_dict()
        block = data["obs_metrics"]
        assert block["counters"].get("abstraction.refinement_cache.misses", 0) > 0
        assert "pipeline.class_seconds" in block["histograms"]
        assert block["gauges"].get("process.peak_rss_mb", 0) > 0
        assert data.get("trace_summary") is None or "trace_summary" not in data

    def test_trace_summary_attached_when_tracing(self, small_ring):
        trace.begin("run", command="compress")
        report = CompressionPipeline(small_ring, executor="serial").run().report
        trace.end()
        data = report.to_dict()
        assert data["trace_summary"]["root"] == "run"
        assert data["trace_summary"]["span_count"] > 1


# ----------------------------------------------------------------------
# Serve scrape surfaces
# ----------------------------------------------------------------------
class TestServeObservability:
    @pytest.fixture(scope="class")
    def service(self, request):
        from repro.netgen.families import build_topology
        from repro.serve import VerificationService
        from repro.api import Session

        network = build_topology("ring", 5)
        return VerificationService(Session(network))

    def test_query_stats_memory_is_bounded(self):
        from repro.serve.service import QueryStats

        stats = QueryStats()
        for i in range(5000):
            stats.record("verify", 0.001 * (i % 50), coalesced=i % 3 == 0)
        summary = stats.summary()["verify"]
        assert summary["count"] == 5000
        hist = stats.registry.histogram("serve.latency.verify")
        assert len(hist._reservoir) <= metrics.DEFAULT_RESERVOIR

    def test_stats_summary_shape_is_backward_compatible(self, service):
        service.verify(prefix=str(service.session.classes[0].prefix))
        summary = service.stats_summary()
        block = summary["queries"]["verify"]
        assert {"count", "coalesced", "mean_ms", "p50_ms", "p95_ms", "max_ms"} == set(block)
        assert summary["answer_cache"]["limit"] > 0
        assert summary["process"]["peak_rss_mb"] > 0

    def test_health_reports_rss_cache_and_store(self, service):
        health = service.health()
        assert health["ok"] and health["warm"]
        assert health["peak_rss_mb"] > 0
        assert health["answer_cache"]["size"] <= health["answer_cache"]["limit"]
        assert health["store"]["root"] is None

    def test_answer_cache_counters(self, service):
        prefix = str(service.session.classes[1].prefix)
        service.verify(prefix=prefix)
        service.verify(prefix=prefix)
        counters = service.registry.collect()["counters"]
        assert counters["serve.answer_cache.hits"] >= 1
        assert counters["serve.answer_cache.misses"] >= 1

    def test_metrics_endpoint_scrapes_prometheus_text(self, service):
        from repro.serve.http import create_server
        import threading
        import urllib.request

        service.verify(prefix=str(service.session.classes[2].prefix))
        server = create_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            with urllib.request.urlopen(f"http://{host}:{port}/metrics") as response:
                assert response.headers["Content-Type"].startswith("text/plain")
                body = response.read().decode("utf-8")
        finally:
            server.shutdown()
            server.server_close()
        assert 'repro_serve_latency_verify{quantile="0.5"}' in body
        assert "repro_serve_latency_verify_count" in body
        assert "repro_process_peak_rss_mb" in body
        # Global solver counters ride along on the same scrape.
        assert "repro_srp_scratch_solves_total" in body
