"""Tests for the parallel compression pipeline (repro.pipeline)."""

from __future__ import annotations

import pickle

import pytest

from repro.abstraction.bonsai import Bonsai
from repro.pipeline import (
    CompressionPipeline,
    EncodedNetwork,
    PipelineError,
    PipelineReport,
)
from repro.pipeline.cli import main as pipeline_main
from repro.pipeline.report import EcRecord


def run_pipeline(network, **kwargs):
    return CompressionPipeline(network, **kwargs).run()


# ----------------------------------------------------------------------
# Serial / parallel parity
# ----------------------------------------------------------------------
class TestParity:
    """Parallel output must be bit-identical to the serial fallback."""

    @pytest.mark.parametrize("fixture", ["small_ring", "small_mesh", "small_fattree"])
    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_parallel_matches_serial(self, request, fixture, executor):
        network = request.getfixturevalue(fixture)
        artifact = EncodedNetwork.build(network)
        serial = CompressionPipeline(artifact=artifact, executor="serial").run()
        parallel = CompressionPipeline(
            artifact=artifact, executor=executor, workers=2
        ).run()
        assert serial.report.canonical_records() == parallel.report.canonical_records()
        # Results stream back out of order but are re-sorted by class index.
        assert [str(r.equivalence_class.prefix) for r in parallel.results] == [
            str(r.equivalence_class.prefix) for r in serial.results
        ]

    def test_parity_with_prefer_bottom_policy(self, small_fattree_prefer_bottom):
        """Case splitting (multiple local-prefs) survives the fan-out."""
        artifact = EncodedNetwork.build(small_fattree_prefer_bottom)
        serial = CompressionPipeline(artifact=artifact, executor="serial").run()
        parallel = CompressionPipeline(
            artifact=artifact, executor="process", workers=2
        ).run()
        assert serial.report.canonical_records() == parallel.report.canonical_records()
        # The prefer-bottom policy yields a larger abstraction than plain
        # shortest path (Figure 11's point); make sure we exercised it.
        assert all(record.abstract_nodes > 6 for record in serial.report.records)

    def test_compress_all_delegates_and_matches(self, small_ring):
        serial_results = Bonsai(small_ring).compress_all()
        parallel_bonsai = Bonsai(small_ring)
        parallel_results = parallel_bonsai.compress_all(workers=2)
        assert parallel_bonsai.last_report is not None
        assert parallel_bonsai.last_report.executor == "process"
        assert [EcRecord.from_result(r).canonical() for r in serial_results] == [
            EcRecord.from_result(r).canonical() for r in parallel_results
        ]

    def test_limit_and_build_networks(self, small_fattree):
        run = run_pipeline(
            small_fattree, executor="process", workers=2, limit=3, build_networks=True
        )
        assert len(run.results) == 3
        for result in run.results:
            assert result.abstract_network is not None
            assert result.abstract_network.graph.num_nodes() == result.abstract_nodes


# ----------------------------------------------------------------------
# Batching
# ----------------------------------------------------------------------
class TestBatching:
    def test_default_batching_covers_all_classes(self, small_fattree):
        pipeline = CompressionPipeline(small_fattree, workers=2)
        classes = EncodedNetwork.build(small_fattree).classes
        batches = pipeline.partition(classes)
        flattened = [ec for batch in batches for _, ec in batch]
        assert flattened == list(classes)

    def test_explicit_batch_size(self, small_ring):
        pipeline = CompressionPipeline(small_ring, batch_size=3)
        batches = pipeline.partition(EncodedNetwork.build(small_ring).classes)
        assert all(len(batch) <= 3 for batch in batches)
        assert len(batches[0]) == 3

    def test_invalid_parameters_rejected(self, small_ring):
        with pytest.raises(ValueError):
            CompressionPipeline(small_ring, executor="fleet")
        with pytest.raises(ValueError):
            CompressionPipeline(small_ring, workers=0)
        with pytest.raises(ValueError):
            CompressionPipeline(small_ring, batch_size=0)
        with pytest.raises(ValueError):
            CompressionPipeline(small_ring, limit=-1)
        with pytest.raises(ValueError):
            CompressionPipeline()


# ----------------------------------------------------------------------
# Crash handling
# ----------------------------------------------------------------------
class TestCrashHandling:
    def test_worker_crash_surfaces_clean_error(self, small_ring, monkeypatch):
        def boom(self, equivalence_class, build_network=True):
            raise RuntimeError("synthetic worker crash")

        monkeypatch.setattr(Bonsai, "compress", boom)
        pipeline = CompressionPipeline(small_ring, executor="thread", workers=2)
        with pytest.raises(PipelineError) as excinfo:
            pipeline.run()
        message = str(excinfo.value)
        assert "10.0." in message  # names the equivalence class
        assert "synthetic worker crash" in message

    def test_serial_crash_surfaces_clean_error(self, small_ring, monkeypatch):
        def boom(self, equivalence_class, build_network=True):
            raise RuntimeError("synthetic serial crash")

        monkeypatch.setattr(Bonsai, "compress", boom)
        with pytest.raises(PipelineError, match="synthetic serial crash"):
            CompressionPipeline(small_ring, executor="serial").run()


# ----------------------------------------------------------------------
# The encoded artifact
# ----------------------------------------------------------------------
class TestEncodedNetwork:
    def test_round_trip_preserves_classes_and_encoder(self, small_fattree):
        artifact = EncodedNetwork.build(small_fattree)
        clone = EncodedNetwork.from_bytes(artifact.to_bytes())
        assert [str(ec.prefix) for ec in clone.classes] == [
            str(ec.prefix) for ec in artifact.classes
        ]
        # The clone owns a *different* manager with the same node store.
        assert clone.encoder is not artifact.encoder
        assert clone.encoder.manager is not artifact.encoder.manager
        assert clone.encoder.manager.num_nodes() == artifact.encoder.manager.num_nodes()

    def test_from_bytes_rejects_other_payloads(self):
        with pytest.raises(TypeError):
            EncodedNetwork.from_bytes(pickle.dumps({"not": "an artifact"}))

    def test_pipeline_managers_are_bounded_by_default(self, small_ring):
        artifact = EncodedNetwork.build(small_ring)
        assert artifact.encoder.manager.cache_limit is not None
        clone = EncodedNetwork.from_bytes(artifact.to_bytes())
        assert clone.encoder.manager.cache_limit == artifact.encoder.manager.cache_limit

    def test_syntactic_mode_has_no_encoder(self, small_ring):
        artifact = EncodedNetwork.build(small_ring, use_bdds=False)
        assert artifact.encoder is None
        run = CompressionPipeline(artifact=artifact, executor="serial").run()
        assert run.report.num_classes == len(artifact.classes)


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
class TestPipelineReport:
    def test_json_round_trip(self, small_mesh):
        report = run_pipeline(small_mesh, executor="serial").report
        clone = PipelineReport.from_json(report.to_json())
        assert clone == report
        assert clone.canonical_records() == report.canonical_records()
        assert clone.mean_abstract_nodes == report.mean_abstract_nodes

    def test_speedup_is_recorded(self, small_ring):
        report = run_pipeline(small_ring, executor="serial").report
        assert report.speedup is None
        report.serial_seconds = report.total_seconds * 2
        assert report.speedup == pytest.approx(2.0)
        clone = PipelineReport.from_json(report.to_json())
        assert clone.speedup == pytest.approx(2.0)

    def test_records_match_table1_style_summary(self, small_mesh):
        """The pipeline's aggregates agree with Bonsai.summarize."""
        bonsai = Bonsai(small_mesh)
        results = bonsai.compress_all()
        summary = bonsai.summarize(results)
        report = bonsai.last_report
        assert report.mean_abstract_nodes == pytest.approx(summary.mean_abstract_nodes)
        assert report.mean_abstract_edges == pytest.approx(summary.mean_abstract_edges)
        assert report.num_classes == summary.classes_compressed


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_cli_serial_run_with_report(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = pipeline_main(
            [
                "--topo", "ring", "--size", "5",
                "--executor", "serial", "--output", str(out), "--per-class",
            ]
        )
        assert code == 0
        report = PipelineReport.from_json(out.read_text())
        assert report.num_classes == 5
        assert "compression pipeline" in capsys.readouterr().out

    def test_cli_parallel_smoke(self, capsys):
        code = pipeline_main(
            ["--topo", "fattree", "--size", "4", "--workers", "2"]
        )
        assert code == 0
        assert "speedup" not in capsys.readouterr().out

    def test_cli_rejects_bad_size(self, capsys):
        code = pipeline_main(["--topo", "fattree", "--size", "3"])
        assert code == 2
        assert "error" in capsys.readouterr().err
