"""Differential tests: the array-backed BDD backend vs the dict oracle.

Random formula DAGs are driven through both backends in lockstep and
every *node-id-insensitive* property must agree: evaluation under random
assignments, sat counts, supports, and restrict / quantification
round-trips.  Raw node ids -- and therefore ``size()`` -- are NOT
compared: the array backend uses complement edges, which legitimately
share more structure (an xor and its negation are one node apart).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd import (
    BACKEND_ENV_VAR,
    ArrayBddManager,
    BddError,
    BddManager,
    PolicyBddEncoder,
    available_backends,
    make_manager,
    resolve_backend,
)

NUM_VARS = 8

#: One step of a random formula DAG: an operation plus operand indices
#: (taken modulo the number of formulas built so far).
_OPS = ("not", "and", "or", "xor", "iff", "implies", "ite")


@st.composite
def formula_programs(draw):
    """A straight-line program over _OPS, starting from vars/constants."""
    steps = draw(
        st.lists(
            st.tuples(
                st.sampled_from(_OPS),
                st.integers(min_value=0, max_value=63),
                st.integers(min_value=0, max_value=63),
                st.integers(min_value=0, max_value=63),
            ),
            min_size=1,
            max_size=40,
        )
    )
    return steps


def _run_program(manager, steps):
    """Execute a program on one manager; returns every intermediate BDD."""
    from repro.bdd import FALSE, TRUE

    pool = [FALSE, TRUE] + [manager.var(i) for i in range(NUM_VARS)]
    pool += [manager.nvar(i) for i in range(0, NUM_VARS, 2)]
    for op, i, j, k in steps:
        a = pool[i % len(pool)]
        b = pool[j % len(pool)]
        c = pool[k % len(pool)]
        if op == "not":
            pool.append(manager.apply_not(a))
        elif op == "and":
            pool.append(manager.apply_and(a, b))
        elif op == "or":
            pool.append(manager.apply_or(a, b))
        elif op == "xor":
            pool.append(manager.apply_xor(a, b))
        elif op == "iff":
            pool.append(manager.apply_iff(a, b))
        elif op == "implies":
            pool.append(manager.apply_implies(a, b))
        else:
            pool.append(manager.ite(a, b, c))
    return pool


def _assignments():
    """A deterministic spread of total assignments over NUM_VARS."""
    patterns = [0, (1 << NUM_VARS) - 1, 0b10101010, 0b01010101, 0b00110111]
    return [
        {v: bool((bits >> v) & 1) for v in range(NUM_VARS)} for bits in patterns
    ]


class TestDifferential:
    @settings(max_examples=120, deadline=None)
    @given(formula_programs())
    def test_semantics_agree_on_random_dags(self, steps):
        dict_mgr = BddManager(num_vars=NUM_VARS)
        array_mgr = ArrayBddManager(num_vars=NUM_VARS)
        dict_pool = _run_program(dict_mgr, steps)
        array_pool = _run_program(array_mgr, steps)
        assert len(dict_pool) == len(array_pool)
        for df, af in zip(dict_pool, array_pool):
            assert dict_mgr.sat_count(df) == array_mgr.sat_count(af)
            assert dict_mgr.support(df) == array_mgr.support(af)
            for assignment in _assignments():
                assert dict_mgr.evaluate(df, assignment) == array_mgr.evaluate(
                    af, assignment
                )

    @settings(max_examples=60, deadline=None)
    @given(
        formula_programs(),
        st.integers(min_value=0, max_value=NUM_VARS - 1),
        st.booleans(),
    )
    def test_restrict_and_quantification_round_trips(self, steps, var, value):
        dict_mgr = BddManager(num_vars=NUM_VARS)
        array_mgr = ArrayBddManager(num_vars=NUM_VARS)
        df = _run_program(dict_mgr, steps)[-1]
        af = _run_program(array_mgr, steps)[-1]
        pairs = [
            (dict_mgr.restrict(df, {var: value}), array_mgr.restrict(af, {var: value})),
            (dict_mgr.exists(df, [var]), array_mgr.exists(af, [var])),
            (dict_mgr.forall(df, [var]), array_mgr.forall(af, [var])),
        ]
        for d_result, a_result in pairs:
            assert dict_mgr.sat_count(d_result) == array_mgr.sat_count(a_result)
            for assignment in _assignments():
                assert dict_mgr.evaluate(
                    d_result, assignment
                ) == array_mgr.evaluate(a_result, assignment)
        # Shannon expansion: f == ite(x, f|x=1, f|x=0), on both backends.
        for mgr, f in ((dict_mgr, df), (array_mgr, af)):
            high = mgr.restrict(f, {var: True})
            low = mgr.restrict(f, {var: False})
            assert mgr.ite(mgr.var(var), high, low) == f

    @settings(max_examples=60, deadline=None)
    @given(formula_programs())
    def test_model_enumeration_agrees(self, steps):
        dict_mgr = BddManager(num_vars=NUM_VARS)
        array_mgr = ArrayBddManager(num_vars=NUM_VARS)
        df = _run_program(dict_mgr, steps)[-1]
        af = _run_program(array_mgr, steps)[-1]
        assert list(dict_mgr.satisfying_assignments(df)) == list(
            array_mgr.satisfying_assignments(af)
        )


class TestCanonicityWithinArrayBackend:
    """Canonicity (semantic equality == id equality) holds per manager."""

    @settings(max_examples=60, deadline=None)
    @given(formula_programs())
    def test_double_negation_and_idempotence(self, steps):
        mgr = ArrayBddManager(num_vars=NUM_VARS)
        f = _run_program(mgr, steps)[-1]
        assert mgr.apply_not(mgr.apply_not(f)) == f
        assert mgr.apply_and(f, f) == f
        assert mgr.apply_or(f, f) == f
        assert mgr.apply_xor(f, f) == 0


class TestRegistry:
    def test_available_backends(self):
        assert available_backends() == ["array", "dict"]

    def test_default_is_dict(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert resolve_backend() == "dict"
        assert make_manager().backend_name == "dict"

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "array")
        assert resolve_backend() == "array"
        assert make_manager().backend_name == "array"

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "array")
        assert make_manager(backend="dict").backend_name == "dict"

    def test_unknown_backend_rejected(self, monkeypatch):
        with pytest.raises(BddError):
            make_manager(backend="bogus")
        monkeypatch.setenv(BACKEND_ENV_VAR, "bogus")
        with pytest.raises(BddError):
            make_manager()

    def test_encoder_seam(self, monkeypatch):
        from repro.netgen.families import build_topology

        network = build_topology("ring", 4)
        assert (
            PolicyBddEncoder(network, backend="array").manager.backend_name
            == "array"
        )
        monkeypatch.setenv(BACKEND_ENV_VAR, "array")
        assert PolicyBddEncoder(network).manager.backend_name == "array"
        monkeypatch.delenv(BACKEND_ENV_VAR)
        assert PolicyBddEncoder(network).manager.backend_name == "dict"


class TestEncoderParity:
    """One small end-to-end check: same partitions out of both backends.

    (The bench's ``--check`` runs the full version of this on every
    netgen family; this is the fast in-suite guard.)
    """

    def test_ring_partitions_match(self):
        from repro.abstraction.bonsai import Bonsai
        from repro.netgen.families import build_topology

        network = build_topology("ring", 6)
        groups = {}
        for backend in ("dict", "array"):
            encoder = PolicyBddEncoder(network, backend=backend)
            encoder.encode_all_edges()
            bonsai = Bonsai(network, encoder=encoder)
            ec = bonsai.equivalence_classes()[0]
            result = bonsai.compress(ec, build_network=False)
            groups[backend] = frozenset(result.abstraction.groups())
        assert groups["dict"] == groups["array"]
