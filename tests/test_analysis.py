"""Tests for the data-plane, property checkers and the verification substitute."""

import pytest

from repro.abstraction import routable_equivalence_classes
from repro.analysis import (
    check_all_paths_reach,
    check_black_hole,
    check_multipath_consistency,
    check_path_length,
    check_reachability,
    check_routing_loop,
    check_waypointing,
    compute_data_plane,
    compute_forwarding_table,
    path_lengths,
    reachable_sources,
    single_reachability_query,
    verify_all_pairs_reachability,
    verify_with_abstraction,
)
from repro.config import Prefix, parse_network

BLACKHOLE_NETWORK = """
device src
  bgp-neighbor mid import IMP
  route-map IMP 10 permit

device mid
  bgp-neighbor src export EXP
  bgp-neighbor dst import IMP
  route-map IMP 10 permit
  route-map EXP 10 permit
  acl BLOCK deny 10.0.1.0/24 default permit
  interface-acl dst BLOCK

device dst
  network 10.0.1.0/24
  bgp-neighbor mid export EXP
  route-map EXP 10 permit

link src mid
link mid dst
"""

LOOP_NETWORK = """
device a
  static-route 10.0.1.0/24 next-hop b

device b
  static-route 10.0.1.0/24 next-hop a

device dst
  network 10.0.1.0/24

link a b
link b dst
"""


class TestForwardingTable:
    def test_fattree_forwarding(self, small_fattree):
        ec = routable_equivalence_classes(small_fattree)[0]
        table = compute_forwarding_table(small_fattree, ec)
        origin = next(iter(ec.origins))
        assert table.delivers(origin)
        for node in small_fattree.graph.nodes:
            assert table.reachable(node)
        outcome, path = table.path_outcome("edge1_1")
        assert outcome == "delivered"
        assert path[-1] == origin

    def test_acl_blocks_data_plane_but_not_routes(self):
        network = parse_network(BLACKHOLE_NETWORK)
        ec = routable_equivalence_classes(network)[0]
        table = compute_forwarding_table(network, ec)
        # mid learned the route but its outbound ACL towards dst drops the
        # traffic: a black hole at mid (and hence for src).
        assert table.next_hops["mid"] == set()
        assert ("mid", "dst") in table.acl_blocked
        assert not table.reachable("src")

    def test_static_loop_detected(self):
        network = parse_network(LOOP_NETWORK)
        ec = routable_equivalence_classes(network)[0]
        table = compute_forwarding_table(network, ec)
        outcome, path = table.path_outcome("a")
        assert outcome == "loop"
        assert path.count("a") == 2

    def test_data_plane_table_lookup(self, small_fattree):
        data_plane = compute_data_plane(small_fattree, limit=2)
        assert len(data_plane.tables) == 2
        some_prefix = next(iter(data_plane.tables))
        assert data_plane.table_for(some_prefix) is not None
        assert data_plane.reachable("core0", some_prefix)
        assert data_plane.table_for(Prefix.parse("192.0.2.0/24")) is None


class TestPropertyCheckers:
    @pytest.fixture
    def fattree_table(self, small_fattree):
        ec = routable_equivalence_classes(small_fattree)[0]
        return compute_forwarding_table(small_fattree, ec), ec

    def test_reachability(self, fattree_table):
        table, _ = fattree_table
        assert check_reachability(table, "core0").holds
        assert check_all_paths_reach(table, "edge1_0").holds

    def test_path_lengths(self, fattree_table):
        table, ec = fattree_table
        origin = next(iter(ec.origins))
        # Another edge switch in the same pod is exactly two hops away.
        same_pod = "edge0_1" if origin != "edge0_1" else "edge0_0"
        assert check_path_length(table, same_pod, 2).holds
        assert not check_path_length(table, same_pod, 5).holds
        assert path_lengths(table, same_pod) == {2}

    def test_waypointing_through_aggregation(self, fattree_table):
        table, _ = fattree_table
        aggs = [n for n in table.next_hops if str(n).startswith("agg")]
        cores_and_aggs = aggs + [n for n in table.next_hops if str(n).startswith("core")]
        assert check_waypointing(table, "edge1_0", cores_and_aggs).holds
        assert not check_waypointing(table, "edge1_0", ["edge3_1"]).holds

    def test_no_blackhole_or_loop_in_fattree(self, fattree_table):
        table, _ = fattree_table
        assert not check_black_hole(table, "edge1_0").holds
        assert not check_routing_loop(table).holds
        assert check_multipath_consistency(table, "edge1_0").holds

    def test_blackhole_detected(self):
        network = parse_network(BLACKHOLE_NETWORK)
        ec = routable_equivalence_classes(network)[0]
        table = compute_forwarding_table(network, ec)
        assert check_black_hole(table, "src").holds
        assert not check_reachability(table, "src").holds

    def test_loop_detected(self):
        network = parse_network(LOOP_NETWORK)
        ec = routable_equivalence_classes(network)[0]
        table = compute_forwarding_table(network, ec)
        assert check_routing_loop(table).holds

    def test_reachable_sources(self, fattree_table):
        table, _ = fattree_table
        assert len(reachable_sources(table)) == 20


class TestStructuredCounterexamples:
    """Failing checks name the offending node/cycle, not just a boolean."""

    def test_routing_loop_counterexample_carries_cycle(self):
        network = parse_network(LOOP_NETWORK)
        ec = routable_equivalence_classes(network)[0]
        table = compute_forwarding_table(network, ec)
        result = check_routing_loop(table)
        assert result.holds
        witness = result.counterexample
        assert witness is not None and witness.kind == "loop"
        assert witness.node in ("a", "b")
        # The cycle is closed (first == last) and is the a<->b two-cycle.
        assert witness.cycle[0] == witness.cycle[-1]
        assert set(witness.cycle) == {"a", "b"}
        assert witness.to_dict()["cycle"] == [str(n) for n in witness.cycle]

    def test_routing_loop_counterexample_respects_sources(self):
        network = parse_network(LOOP_NETWORK)
        ec = routable_equivalence_classes(network)[0]
        table = compute_forwarding_table(network, ec)
        result = check_routing_loop(table, sources=["b"])
        assert result.counterexample.node == "b"
        assert not check_routing_loop(table, sources=["dst"]).holds

    def test_multipath_counterexample_names_diverging_source(self, broken_acl_network):
        ec = next(
            ec
            for ec in routable_equivalence_classes(broken_acl_network)
            if ec.prefix == Prefix.parse("10.0.1.0/24")
        )
        table = compute_forwarding_table(broken_acl_network, ec)
        result = check_multipath_consistency(table, "x")
        assert not result.holds
        witness = result.counterexample
        assert witness.kind == "divergence"
        assert witness.node == "x"
        # The recorded path is the dropped one; the detail names both.
        assert witness.path[0] == "x"
        assert "delivers via" in witness.detail and "drops via" in witness.detail

    def test_consistent_source_has_no_counterexample(self, broken_acl_network):
        ec = next(
            ec
            for ec in routable_equivalence_classes(broken_acl_network)
            if ec.prefix == Prefix.parse("10.0.2.0/24")
        )
        table = compute_forwarding_table(broken_acl_network, ec)
        result = check_multipath_consistency(table, "x")
        assert result.holds
        assert result.counterexample is None

    def test_blackhole_counterexample_names_dropping_device(self):
        network = parse_network(BLACKHOLE_NETWORK)
        ec = routable_equivalence_classes(network)[0]
        table = compute_forwarding_table(network, ec)
        result = check_black_hole(table, "src")
        assert result.counterexample.kind == "blackhole"
        assert result.counterexample.node == "mid"
        unreachable = check_reachability(table, "src")
        assert unreachable.counterexample.kind == "blackhole"
        assert unreachable.counterexample.path == ("src", "mid")


class TestVerifier:
    def test_concrete_and_abstract_agree_on_reachability(self, small_fattree):
        concrete = verify_all_pairs_reachability(small_fattree)
        abstract = verify_with_abstraction(small_fattree)
        assert concrete.unreachable_pairs == 0
        assert abstract.unreachable_pairs == 0
        assert not concrete.timed_out and not abstract.timed_out
        assert concrete.classes_checked == abstract.classes_checked == 8

    def test_verification_detects_blackhole_on_both(self):
        network = parse_network(BLACKHOLE_NETWORK)
        concrete = verify_all_pairs_reachability(network)
        abstract = verify_with_abstraction(network)
        assert concrete.unreachable_pairs > 0
        assert abstract.unreachable_pairs > 0

    def test_timeout_reported(self, small_fattree):
        result = verify_all_pairs_reachability(small_fattree, timeout_seconds=0.0)
        assert result.timed_out
        assert result.classes_checked == 0

    def test_timeout_raised_with_partial_result(self, small_fattree):
        from repro.analysis import VerificationTimeout

        with pytest.raises(VerificationTimeout) as excinfo:
            verify_all_pairs_reachability(
                small_fattree, timeout_seconds=0.0, raise_on_timeout=True
            )
        partial = excinfo.value.partial
        assert partial is not None and partial.timed_out
        assert partial.classes_checked == 0

    def test_abstract_timeout_raised_and_reported(self, small_fattree):
        """verify_with_abstraction's timeout path: flagged result by
        default, VerificationTimeout with the partial result on demand."""
        from repro.analysis import VerificationTimeout

        reported = verify_with_abstraction(small_fattree, timeout_seconds=0.0)
        assert reported.timed_out
        assert reported.classes_checked == 0
        with pytest.raises(VerificationTimeout) as excinfo:
            verify_with_abstraction(
                small_fattree, timeout_seconds=0.0, raise_on_timeout=True
            )
        assert excinfo.value.partial.timed_out
        assert excinfo.value.partial.network_name.endswith("(abstract)")

    def test_single_query_with_and_without_abstraction(self, small_fattree):
        destination = Prefix.parse("10.0.1.0/24")
        reachable_plain, _ = single_reachability_query(
            small_fattree, "core0", destination, use_abstraction=False
        )
        reachable_abstract, _ = single_reachability_query(
            small_fattree, "core0", destination, use_abstraction=True
        )
        assert reachable_plain and reachable_abstract

    def test_single_query_unknown_destination(self, small_fattree):
        reachable, _ = single_reachability_query(
            small_fattree, "core0", Prefix.parse("203.0.113.0/24")
        )
        assert not reachable
