"""Unit tests for NetworkAbstraction (the pair (f, h))."""

import pytest

from repro.abstraction import NetworkAbstraction
from repro.routing import BgpProtocol, BgpAttribute
from repro.topology import Graph


@pytest.fixture
def line_graph() -> Graph:
    g = Graph()
    g.add_undirected_edge("a", "b1")
    g.add_undirected_edge("a", "b2")
    g.add_undirected_edge("b1", "d")
    g.add_undirected_edge("b2", "d")
    return g


@pytest.fixture
def abstraction(line_graph) -> NetworkAbstraction:
    node_map = {"a": "A", "b1": "B", "b2": "B", "d": "D"}
    return NetworkAbstraction.from_node_map(line_graph, node_map, protocol=BgpProtocol())


def test_missing_nodes_rejected(line_graph):
    with pytest.raises(ValueError):
        NetworkAbstraction.from_node_map(line_graph, {"a": "A"})


def test_abstract_graph_induced_by_f(abstraction):
    g = abstraction.abstract_graph
    assert set(g.nodes) == {"A", "B", "D"}
    assert g.has_edge("A", "B") and g.has_edge("B", "A")
    assert g.has_edge("B", "D")
    assert not g.has_edge("A", "D")
    assert abstraction.num_abstract_nodes() == 3
    assert abstraction.num_abstract_edges() == 2


def test_f_on_nodes_edges_paths(abstraction):
    assert abstraction.f("b1") == "B"
    assert abstraction.f_edge(("a", "b1")) == ("A", "B")
    assert abstraction.f_path(["a", "b1", "d"]) == ("A", "B", "D")


def test_concrete_nodes_inverse(abstraction):
    assert abstraction.concrete_nodes("B") == frozenset({"b1", "b2"})
    assert abstraction.concrete_nodes("A") == frozenset({"a"})


def test_h_uses_protocol_attribute_abstraction(abstraction):
    attr = BgpAttribute(as_path=("b1", "d"))
    assert abstraction.h(attr).as_path == ("B", "D")
    assert abstraction.h(None) is None


def test_h_identity_without_protocol(line_graph):
    plain = NetworkAbstraction.from_node_map(
        line_graph, {"a": "A", "b1": "B", "b2": "B", "d": "D"}
    )
    attr = BgpAttribute(as_path=("b1",))
    assert plain.h(attr) is attr


def test_compression_ratio(abstraction, line_graph):
    node_ratio, edge_ratio = abstraction.compression_ratio(line_graph)
    assert node_ratio == pytest.approx(4 / 3)
    assert edge_ratio == pytest.approx(4 / 2)


def test_groups(abstraction):
    groups = {frozenset(group) for group in abstraction.groups()}
    assert frozenset({"b1", "b2"}) in groups
    assert len(groups) == 3


def test_split_groups_create_copies(line_graph):
    node_map = {"a": "A", "b1": "B", "b2": "B", "d": "D"}
    split = NetworkAbstraction.from_node_map(
        line_graph, node_map, split_groups={"B": ("B_case0", "B_case1")}
    )
    g = split.abstract_graph
    assert "B_case0" in g.nodes and "B_case1" in g.nodes
    assert "B" not in g.nodes
    assert g.has_edge("A", "B_case0") and g.has_edge("A", "B_case1")
    assert g.has_edge("B_case0", "D") and g.has_edge("B_case1", "D")
    # b1 and b2 are not adjacent, so the copies have no edge between them.
    assert not g.has_edge("B_case0", "B_case1")
    assert split.base_of("B_case1") == "B"
    assert split.copies_of("B") == ("B_case0", "B_case1")
    assert split.copies_of("A") == ("A",)
    assert split.concrete_nodes("B_case0") == frozenset({"b1", "b2"})
