"""Unit tests for the union-split-find partition structure."""

import pytest

from repro.abstraction import PartitionError, UnionSplitFind


def test_initial_partition_is_single_group():
    p = UnionSplitFind(["a", "b", "c"])
    assert p.num_groups() == 1
    assert p.same_group("a", "c")
    assert set(p.partitions()[0]) == {"a", "b", "c"}


def test_empty_node_set_rejected():
    with pytest.raises(PartitionError):
        UnionSplitFind([])


def test_duplicate_nodes_rejected():
    with pytest.raises(PartitionError):
        UnionSplitFind(["a", "a"])


def test_split_moves_subset_to_new_group():
    p = UnionSplitFind(["a", "b", "c", "d"])
    new_group = p.split({"a", "b"})
    assert p.num_groups() == 2
    assert p.same_group("a", "b")
    assert not p.same_group("a", "c")
    assert p.members(new_group) == frozenset({"a", "b"})


def test_split_whole_group_is_noop():
    p = UnionSplitFind(["a", "b"])
    group = p.find("a")
    assert p.split({"a", "b"}) == group
    assert p.num_groups() == 1


def test_split_across_groups_rejected():
    p = UnionSplitFind(["a", "b", "c"])
    p.split({"a"})
    with pytest.raises(PartitionError):
        p.split({"a", "b"})


def test_split_empty_rejected():
    p = UnionSplitFind(["a"])
    with pytest.raises(PartitionError):
        p.split(set())


def test_find_unknown_node_rejected():
    p = UnionSplitFind(["a"])
    with pytest.raises(PartitionError):
        p.find("zzz")
    with pytest.raises(PartitionError):
        p.members(999)


def test_split_by_key_groups_members():
    p = UnionSplitFind(["a", "b", "c", "d"])
    group = p.find("a")
    result = p.split_by_key(group, {"a": 1, "b": 1, "c": 2, "d": 3})
    assert len(result) == 3
    assert p.same_group("a", "b")
    assert not p.same_group("a", "c")
    assert not p.same_group("c", "d")


def test_split_by_key_single_key_is_noop():
    p = UnionSplitFind(["a", "b"])
    group = p.find("a")
    assert p.split_by_key(group, {"a": 1, "b": 1}) == [group]


def test_split_by_key_missing_nodes_get_own_groups():
    p = UnionSplitFind(["a", "b", "c"])
    p.split_by_key(p.find("a"), {"a": 1, "b": 1})
    assert p.same_group("a", "b")
    assert not p.same_group("a", "c")


def test_canonical_names_are_deterministic():
    p = UnionSplitFind(["b", "a", "c"])
    p.split({"c"})
    names1 = p.canonical_names()
    names2 = p.canonical_names()
    assert names1 == names2
    assert names1["a"] == names1["b"]
    assert names1["a"] != names1["c"]


def test_dunder_helpers():
    p = UnionSplitFind(["a", "b"])
    assert len(p) == 1
    assert "a" in p
    assert "zzz" not in p
    assert set(p.nodes()) == {"a", "b"}
    assert p.as_mapping()["a"] == p.find("a")
