"""Unit tests for device configurations and whole-network views."""

import pytest

from repro.config import (
    BgpNeighborConfig,
    ConfigError,
    DeviceConfig,
    Network,
    Prefix,
    RouteMap,
    RouteMapClause,
    StaticRouteConfig,
    CommunityList,
)
from repro.topology import Graph


def simple_device(name="r1") -> DeviceConfig:
    device = DeviceConfig(name=name)
    device.route_maps["SETPREF"] = RouteMap(
        name="SETPREF",
        clauses=(
            RouteMapClause(
                sequence=10,
                action="permit",
                match_community_lists=("tags",),
                set_local_pref=250,
                set_communities=("65001:99",),
            ),
        ),
    )
    device.community_lists["tags"] = CommunityList(name="tags", communities=("65001:1",))
    device.bgp_neighbors["r2"] = BgpNeighborConfig(peer="r2", import_policy="SETPREF")
    device.originated_prefixes.append(Prefix.parse("10.0.1.0/24"))
    return device


class TestDeviceConfig:
    def test_asn_defaults_to_name(self):
        assert DeviceConfig(name="r7").asn == "r7"

    def test_validate_detects_missing_references(self):
        device = DeviceConfig(name="r1")
        device.bgp_neighbors["r2"] = BgpNeighborConfig(peer="r2", import_policy="MISSING")
        problems = device.validate()
        assert any("MISSING" in problem for problem in problems)
        with pytest.raises(ConfigError):
            device.assert_valid()

    def test_validate_detects_missing_community_list(self):
        device = simple_device()
        del device.community_lists["tags"]
        assert device.validate()

    def test_valid_device_has_no_problems(self):
        assert simple_device().validate() == []

    def test_originates(self):
        device = simple_device()
        assert device.originates(Prefix.parse("10.0.1.0/24"))
        assert device.originates(Prefix.parse("10.0.1.128/25"))
        assert not device.originates(Prefix.parse("10.0.2.0/24"))

    def test_local_pref_values_include_default(self):
        assert simple_device().local_pref_values() == frozenset({100, 250})

    def test_community_views(self):
        device = simple_device()
        assert device.matched_communities() == frozenset({"65001:1"})
        assert device.set_communities() == frozenset({"65001:99"})

    def test_static_route_longest_match(self):
        device = DeviceConfig(name="r1")
        device.static_routes.append(
            StaticRouteConfig(prefix=Prefix.parse("10.0.0.0/8"), next_hop="a")
        )
        device.static_routes.append(
            StaticRouteConfig(prefix=Prefix.parse("10.0.1.0/24"), next_hop="b")
        )
        chosen = device.static_route_for(Prefix.parse("10.0.1.0/24"))
        assert chosen is not None and chosen.next_hop == "b"
        assert device.static_route_for(Prefix.parse("172.16.0.0/16")) is None

    def test_config_line_count_positive(self):
        assert simple_device().config_line_count() > 5


class TestNetwork:
    def build(self) -> Network:
        graph = Graph()
        graph.add_undirected_edge("r1", "r2")
        devices = {"r1": simple_device("r1"), "r2": DeviceConfig(name="r2")}
        devices["r2"].originated_prefixes.append(Prefix.parse("10.0.2.0/24"))
        return Network(graph=graph, devices=devices, name="test")

    def test_missing_devices_get_empty_configs(self):
        graph = Graph()
        graph.add_undirected_edge("a", "b")
        network = Network(graph=graph)
        assert set(network.devices) == {"a", "b"}

    def test_validate_detects_non_adjacent_neighbor(self):
        network = self.build()
        network.devices["r1"].bgp_neighbors["r9"] = BgpNeighborConfig(peer="r9")
        assert any("not adjacent" in problem for problem in network.validate())

    def test_valid_network(self):
        network = self.build()
        network.assert_valid()

    def test_community_universe_and_unused(self):
        network = self.build()
        assert network.community_universe() == frozenset({"65001:1", "65001:99"})
        assert network.unused_communities() == frozenset({"65001:99"})

    def test_originators_of(self):
        network = self.build()
        assert network.originators_of(Prefix.parse("10.0.1.0/24")) == {"r1"}
        assert network.originators_of(Prefix.parse("10.0.2.0/24")) == {"r2"}

    def test_equivalence_classes_cover_origins(self):
        network = self.build()
        classes = dict(network.destination_equivalence_classes())
        assert classes[Prefix.parse("10.0.1.0/24")] == {"r1"}
        assert classes[Prefix.parse("10.0.2.0/24")] == {"r2"}

    def test_stats_keys(self):
        stats = self.build().stats()
        assert stats["nodes"] == 2
        assert stats["edges"] == 1
        assert stats["equivalence_classes"] == 2
        assert stats["config_lines"] > 0
