"""Tests for the cost-aware shard scheduler (repro.pipeline.shard),
the costs sidecar, and streaming/memory-bounded report aggregation."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.pipeline import shard
from repro.pipeline.core import ClassFanOut, CompressionPipeline, PipelineError
from repro.pipeline.encoded import EncodedNetwork
from repro.pipeline.report import PipelineReport
from repro.pipeline.shard import (
    ShardCoordinator,
    WorkUnit,
    _chunk_bounds,
    _split_delta_options,
    _split_failure_options,
    heuristic_cost,
    lookup_costs,
    remember_costs,
    resolve_cost_store,
)
from repro.pipeline.stream import RecordSpill
from repro.store import ArtifactStore


# ----------------------------------------------------------------------
# Planning primitives
# ----------------------------------------------------------------------
class TestChunkBounds:
    def test_even_split(self):
        assert _chunk_bounds(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_remainder_front_loaded(self):
        bounds = _chunk_bounds(10, 3)
        assert bounds == [(0, 4), (4, 7), (7, 10)]

    def test_fewer_items_than_pieces(self):
        assert _chunk_bounds(2, 5) == [(0, 1), (1, 2)]

    @given(st.integers(1, 50), st.integers(1, 10))
    @settings(max_examples=30, deadline=None)
    def test_bounds_partition_the_range(self, total, pieces):
        bounds = _chunk_bounds(total, pieces)
        assert bounds[0][0] == 0 and bounds[-1][1] == total
        for (_, end), (start, _) in zip(bounds, bounds[1:]):
            assert end == start
        assert all(end > start for start, end in bounds)


class TestSplitters:
    def test_failure_split_slices_scenarios(self):
        scenarios = [("link", i) for i in range(6)]
        plan = _split_failure_options({"scenarios": scenarios}, 3)
        assert plan is not None
        patches, fractions = plan
        merged = [s for patch in patches for s in patch["scenarios"]]
        assert merged == scenarios
        assert sum(fractions) == pytest.approx(1.0)

    def test_failure_split_declines_single_scenario(self):
        assert _split_failure_options({"scenarios": [("link", 0)]}, 4) is None
        assert _split_failure_options({}, 4) is None

    def test_delta_split_covers_all_steps(self):
        plan = _split_delta_options({"script": ["a", "b", "c", "d", "e"]}, 2)
        assert plan is not None
        patches, fractions = plan
        ranges = [tuple(p["step_range"]) for p in patches]
        assert ranges == [(0, 3), (3, 5)]
        assert sum(fractions) == pytest.approx(1.0)

    def test_delta_split_declines_single_step(self):
        assert _split_delta_options({"script": ["a"]}, 4) is None


class TestCoordinatorPlan:
    def _coordinator(self, artifact, **kwargs):
        defaults = dict(
            artifact=artifact,
            task_path="repro.pipeline.core:compress_class_task",
            options={},
            classes=artifact.classes,
            workers=2,
        )
        defaults.update(kwargs)
        return ShardCoordinator(**defaults)

    def test_units_sorted_largest_first(self, small_fattree):
        artifact = EncodedNetwork.build(small_fattree)
        prefixes = [str(ec.prefix) for ec in artifact.classes]
        costs = {p: float(i + 1) for i, p in enumerate(prefixes)}
        coordinator = self._coordinator(artifact, unit_costs=costs)
        coordinator.plan()
        planned = [u.cost for u in coordinator.units]
        assert planned == sorted(planned, reverse=True)
        assert coordinator.warm

    def test_bundles_cover_every_class_once(self, small_fattree):
        artifact = EncodedNetwork.build(small_fattree)
        coordinator = self._coordinator(artifact)
        bundles = coordinator.plan()
        seen = [u.index for bundle in bundles for u in bundle]
        assert sorted(seen) == list(range(len(artifact.classes)))

    def test_cold_plan_uses_heuristic(self, small_fattree):
        artifact = EncodedNetwork.build(small_fattree)
        coordinator = self._coordinator(artifact, fingerprint="deadbeef" * 8)
        coordinator.plan()
        assert not coordinator.warm
        expected = {heuristic_cost(ec) for ec in artifact.classes}
        assert {u.cost for u in coordinator.units} <= expected

    def test_failure_task_splits_when_classes_scarce(self, small_fattree):
        artifact = EncodedNetwork.build(small_fattree)
        scenarios = [("link", i) for i in range(8)]
        coordinator = ShardCoordinator(
            artifact=artifact,
            task_path="repro.failures.sweep:failure_class_task",
            options={"scenarios": scenarios},
            classes=artifact.classes[:2],
            workers=4,
        )
        coordinator.plan()
        by_index = {}
        for unit in coordinator.units:
            by_index.setdefault(unit.index, []).append(unit)
        for index, units in by_index.items():
            assert len(units) > 1
            merged = [
                s for u in sorted(units, key=lambda u: u.chunk)
                for s in u.patch["scenarios"]
            ]
            assert merged == scenarios

    def test_uid_identifies_chunk(self):
        unit = WorkUnit(index=3, equivalence_class=None, chunk=2, chunks=4)
        assert unit.uid == (3, 2)


# ----------------------------------------------------------------------
# The cost model (sidecar + in-process cache)
# ----------------------------------------------------------------------
class TestCostStore:
    FP = "ab" * 32
    TASK = "repro.pipeline.core:compress_class_task"

    def test_record_and_load_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.record_costs(self.FP, self.TASK, {"10.0.0.0/24": 1.5}, {"10.0.0.0/24": 3})
        data = store.load_costs(self.FP)
        block = data["tasks"][self.TASK]
        assert block["unit_seconds"] == {"10.0.0.0/24": 1.5}
        assert block["unit_counts"] == {"10.0.0.0/24": 3}
        assert block["num_units"] == 1
        assert block["total_seconds"] == pytest.approx(1.5)

    def test_record_merges_tasks(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.record_costs(self.FP, "task:a", {"p": 1.0})
        store.record_costs(self.FP, "task:b", {"p": 2.0})
        data = store.load_costs(self.FP)
        assert set(data["tasks"]) == {"task:a", "task:b"}

    def test_load_tolerates_missing_and_corrupt(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.load_costs(self.FP) == {}
        entry = store.entry_dir(self.FP)
        entry.mkdir(parents=True)
        (entry / "costs.json").write_text("{not json")
        assert store.load_costs(self.FP) == {}

    def test_load_refuses_schema_and_fingerprint_mismatch(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.record_costs(self.FP, self.TASK, {"p": 1.0})
        path = store.entry_dir(self.FP) / "costs.json"

        data = json.loads(path.read_text())
        data["costs_schema_version"] = 999
        path.write_text(json.dumps(data))
        assert store.load_costs(self.FP) == {}

        data["costs_schema_version"] = 1
        data["fingerprint"] = "cd" * 32
        path.write_text(json.dumps(data))
        assert store.load_costs(self.FP) == {}

    def test_delete_removes_costs_sidecar(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.record_costs(self.FP, self.TASK, {"p": 1.0})
        assert store.delete(self.FP)
        assert store.load_costs(self.FP) == {}

    def test_lookup_overlays_cache_on_store(self, tmp_path):
        fp = "ee" * 32
        store = ArtifactStore(tmp_path)
        store.record_costs(fp, self.TASK, {"a": 1.0, "b": 2.0})
        remember_costs(fp, self.TASK, {"b": 9.0, "c": 3.0})
        merged = lookup_costs(fp, self.TASK, cost_store=store)
        assert merged == {"a": 1.0, "b": 9.0, "c": 3.0}

    def test_resolve_cost_store(self, tmp_path):
        assert resolve_cost_store(None) is None
        store = ArtifactStore(tmp_path)
        assert resolve_cost_store(store) is store
        resolved = resolve_cost_store(str(tmp_path))
        assert isinstance(resolved, ArtifactStore)
        assert resolved.root == store.root

    def test_fanout_records_costs_into_store(self, small_fattree, tmp_path):
        store = ArtifactStore(tmp_path)
        fanout = ClassFanOut(
            small_fattree, task="compress", executor="serial", cost_store=store
        )
        fanout.execute()
        from repro.store.fingerprint import network_fingerprint

        data = store.load_costs(network_fingerprint(small_fattree))
        seconds = data["tasks"][fanout.task]["unit_seconds"]
        assert set(seconds) == {str(ec.prefix) for ec in fanout.last_classes}
        assert all(v >= 0.0 for v in seconds.values())


# ----------------------------------------------------------------------
# Validation regressions
# ----------------------------------------------------------------------
class TestValidation:
    def test_rejects_nonpositive_workers(self, small_fattree):
        with pytest.raises(ValueError, match="workers"):
            ClassFanOut(small_fattree, workers=0)
        with pytest.raises(ValueError, match="workers"):
            ClassFanOut(small_fattree, workers=-2)

    def test_rejects_empty_task_name(self, small_fattree):
        with pytest.raises(ValueError, match="non-empty"):
            ClassFanOut(small_fattree, task="")
        with pytest.raises(ValueError, match="non-empty"):
            ClassFanOut(small_fattree, task="   ")
        with pytest.raises(ValueError, match="non-empty"):
            ClassFanOut(small_fattree, task=None)

    def test_rejects_unknown_scheduler(self, small_fattree):
        with pytest.raises(ValueError, match="scheduler"):
            ClassFanOut(small_fattree, scheduler="psychic")


# ----------------------------------------------------------------------
# Parity: stolen results must be bit-identical to serial ones
# ----------------------------------------------------------------------
class TestStealingParity:
    def test_compress_stealing_matches_serial(self, small_fattree):
        artifact = EncodedNetwork.build(small_fattree)
        serial = CompressionPipeline(artifact=artifact, executor="serial").run()
        stolen = CompressionPipeline(
            artifact=artifact, executor="process", workers=2, scheduler="stealing"
        ).run()
        assert serial.report.canonical_records() == stolen.report.canonical_records()

    def test_explicit_batch_size_forces_static(self, small_fattree):
        fanout = ClassFanOut(
            small_fattree, executor="process", workers=2, batch_size=2
        )
        fanout.execute()
        assert fanout.last_scheduler == "static"

    def test_stealing_reports_scheduler_and_costs(self, small_fattree):
        fanout = ClassFanOut(small_fattree, executor="process", workers=2)
        results = fanout.execute()
        assert fanout.last_scheduler == "stealing"
        assert len(results) == len(fanout.last_classes)
        assert set(fanout.last_unit_seconds) == {
            str(ec.prefix) for ec in fanout.last_classes
        }

    def test_failure_split_parity(self, small_fattree):
        """Few classes + many workers forces scenario chunking; merged
        records must equal the serial (unsplit) sweep's."""
        from repro.failures import FailureSweep

        kwargs = dict(k=1, soundness=False, oracle=True, limit=2)
        serial = FailureSweep(small_fattree, executor="serial", **kwargs).run()
        stolen = FailureSweep(
            small_fattree, executor="process", workers=4, **kwargs
        ).run()
        assert serial.canonical_records() == stolen.canonical_records()

    def test_delta_split_parity(self, small_fattree):
        """Step-range chunks fast-forward by re-solving the chain prefix;
        outcomes must equal the serial chained sweep's."""
        from repro.delta import DeltaSweep
        from repro.netgen.changes import generated_change_script

        script = generated_change_script(small_fattree, "fattree")
        kwargs = dict(script=script, oracle=True, revalidate=True, limit=2)
        serial = DeltaSweep(small_fattree, executor="serial", **kwargs).run()
        stolen = DeltaSweep(
            small_fattree, executor="process", workers=4, **kwargs
        ).run()
        assert serial.canonical_records() == stolen.canonical_records()

    def test_worker_crash_surfaces_clean_error(self, small_fattree):
        """A crash inside a stolen unit must carry the class and cause."""
        fanout = ClassFanOut(
            small_fattree,
            task="bench-sleep",
            task_options={"default_sleep": "not-a-number"},
            executor="process",
            workers=2,
        )
        with pytest.raises(PipelineError) as excinfo:
            fanout.execute()
        message = str(excinfo.value)
        assert "10.0." in message
        assert "ValueError" in message

    @given(
        executor_workers=st.sampled_from(
            [("serial", 1), ("thread", 2), ("process", 2), ("process", 3)]
        ),
        scheduler=st.sampled_from(["stealing", "static"]),
        limit=st.sampled_from([None, 3]),
    )
    @settings(max_examples=6, deadline=None)
    def test_any_configuration_matches_serial(
        self, shared_fattree_artifact, executor_workers, scheduler, limit
    ):
        executor, workers = executor_workers
        serial = CompressionPipeline(
            artifact=shared_fattree_artifact, executor="serial", limit=limit
        ).run()
        other = CompressionPipeline(
            artifact=shared_fattree_artifact,
            executor=executor,
            workers=workers,
            scheduler=scheduler,
            limit=limit,
        ).run()
        assert serial.report.canonical_records() == other.report.canonical_records()


@pytest.fixture(scope="module")
def shared_fattree_artifact():
    from repro.netgen.families import build_topology

    return EncodedNetwork.build(build_topology("fattree", 4))


# ----------------------------------------------------------------------
# Streaming aggregation and the record spill
# ----------------------------------------------------------------------
class TestRecordSpill:
    def test_round_trip_in_index_order(self, tmp_path):
        spill = RecordSpill(tmp_path / "records.jsonl")
        spill.append(2, {"name": "c"})
        spill.append(0, {"name": "a"})
        spill.append(1, {"name": "b"})
        assert len(spill) == 3
        assert [p["name"] for _, p in spill] == ["a", "b", "c"]
        spill.close()

    def test_anonymous_spill_cleans_up(self):
        import os

        spill = RecordSpill()
        spill.append(0, {"x": 1})
        path = spill.path
        assert os.path.exists(path)
        spill.close()
        assert not os.path.exists(path)
        with pytest.raises(ValueError):
            spill.append(1, {"y": 2})


class TestStreamingReports:
    def test_run_streaming_matches_run(self, small_fattree):
        artifact = EncodedNetwork.build(small_fattree)
        plain = CompressionPipeline(artifact=artifact, executor="serial").run().report
        streamed = CompressionPipeline(
            artifact=artifact, executor="serial"
        ).run_streaming(spill=False)
        assert plain.canonical_records() == streamed.canonical_records()
        assert streamed.ok()

    def test_spilled_report_roundtrips_via_write_json(self, small_fattree, tmp_path):
        artifact = EncodedNetwork.build(small_fattree)
        report = CompressionPipeline(
            artifact=artifact, executor="serial"
        ).run_streaming(spill=True, spill_path=tmp_path / "spill.jsonl")
        assert report.spill is not None
        assert report.records == []  # nothing materialised in memory
        assert report.ok()
        out = tmp_path / "report.json"
        report.write_json(out)
        loaded = PipelineReport.from_dict(json.loads(out.read_text()))
        plain = CompressionPipeline(artifact=artifact, executor="serial").run().report
        assert loaded.canonical_records() == plain.canonical_records()
        assert loaded.num_classes == plain.num_classes

    def test_streaming_failure_sweep_matches_plain(self, small_fattree, tmp_path):
        from repro.failures import FailureSweep

        kwargs = dict(k=1, soundness=False, oracle=False, limit=2)
        plain = FailureSweep(small_fattree, executor="serial", **kwargs).run()
        spilled = FailureSweep(
            small_fattree,
            executor="serial",
            spill=True,
            spill_path=tmp_path / "fail.jsonl",
            **kwargs,
        ).run()
        assert spilled.records == []
        assert plain.canonical_records() == spilled.canonical_records()
        assert plain.k_resilience() == spilled.k_resilience()


# ----------------------------------------------------------------------
# The synthetic skew task
# ----------------------------------------------------------------------
class TestSleepTask:
    def test_sleep_task_registered_and_runs(self, small_fattree):
        fanout = ClassFanOut(
            small_fattree,
            task="bench-sleep",
            task_options={"default_sleep": 0.0},
            executor="serial",
        )
        results = fanout.execute()
        assert results == [str(ec.prefix) for ec in fanout.last_classes]

    def test_sleep_task_module_import_registers(self):
        assert "bench-sleep" in shard._core.CLASS_TASKS
