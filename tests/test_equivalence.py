"""Unit and integration tests for abstract SRPs and CP-equivalence (§4.2)."""


from repro.abstraction import (
    build_abstract_srp,
    check_bgp_solution_equivalence,
    check_cp_equivalence,
    check_solution_equivalence,
    compute_abstraction,
)
from repro.routing import (
    RipAttribute,
    build_bgp_srp,
    build_ospf_srp,
    build_rip_srp,
    build_static_srp,
)
from repro.srp import Solution, solve
from repro.topology import Graph, full_mesh_topology, ring_topology


class TestBuildAbstractSrp:
    def test_rip_abstract_srp_solves_to_same_hops(self, figure1_srp):
        result = compute_abstraction(figure1_srp)
        abstract = build_abstract_srp(figure1_srp, result.abstraction)
        solution = solve(abstract)
        dest = result.abstraction.f("d")
        a_node = result.abstraction.f("a")
        assert solution.labeling[dest] == RipAttribute(0)
        assert solution.labeling[a_node] == RipAttribute(2)

    def test_bgp_abstract_srp_has_loop_prevention_on_abstract_names(self, figure2_srp):
        result = compute_abstraction(figure2_srp)
        abstract = build_abstract_srp(figure2_srp, result.abstraction)
        solution = solve(abstract)
        assert solution.is_stable()
        # One of the split copies routes down, the other goes through a.
        copies = [n for n in abstract.graph.nodes if "case" in str(n)]
        assert len(copies) == 2
        next_hops = {frozenset(solution.next_hops(copy)) for copy in copies}
        assert len(next_hops) == 2

    def test_generic_delegation_for_ospf(self):
        graph, _ = ring_topology(6)
        srp = build_ospf_srp(graph, "r0")
        result = compute_abstraction(srp)
        abstract = build_abstract_srp(srp, result.abstraction)
        solution = solve(abstract)
        assert solution.is_stable()


class TestCpEquivalenceRip:
    def test_figure1(self, figure1_srp):
        result = compute_abstraction(figure1_srp)
        report = check_cp_equivalence(figure1_srp, result.abstraction, strict_labels=True)
        assert report.cp_equivalent, report.violations

    def test_ring(self):
        graph, _ = ring_topology(9)
        srp = build_rip_srp(graph, "r0")
        result = compute_abstraction(srp)
        report = check_cp_equivalence(srp, result.abstraction, strict_labels=True)
        assert report.cp_equivalent, report.violations

    def test_full_mesh(self):
        graph, _ = full_mesh_topology(6)
        srp = build_rip_srp(graph, "r0")
        result = compute_abstraction(srp)
        report = check_cp_equivalence(srp, result.abstraction, strict_labels=True)
        assert report.cp_equivalent, report.violations

    def test_broken_abstraction_detected(self, figure1_srp):
        """Forcing b1 and d into one abstract node breaks label equivalence."""
        from repro.abstraction import NetworkAbstraction

        bad = NetworkAbstraction.from_node_map(
            figure1_srp.graph,
            {"a": "A", "b1": "D", "b2": "B", "d": "D"},
            protocol=figure1_srp.protocol,
        )
        report = check_cp_equivalence(figure1_srp, bad)
        assert not report.cp_equivalent


class TestCpEquivalenceBgp:
    def test_figure2_gadget(self, figure2_srp):
        result = compute_abstraction(figure2_srp)
        report = check_cp_equivalence(figure2_srp, result.abstraction)
        assert report.cp_equivalent, report.violations

    def test_naive_abstraction_without_split_fails(self, figure2_srp):
        """Figure 2(b): collapsing all three b routers into one node cannot
        represent the solution (it would need a forwarding loop)."""
        result = compute_abstraction(figure2_srp, bgp_case_split=False)
        report = check_cp_equivalence(figure2_srp, result.abstraction)
        assert not report.cp_equivalent

    def test_plain_shortest_path_bgp(self):
        graph, _ = full_mesh_topology(5)
        srp = build_bgp_srp(graph, "r0")
        result = compute_abstraction(srp)
        report = check_cp_equivalence(srp, result.abstraction)
        assert report.cp_equivalent, report.violations

    def test_every_concrete_solution_matches_some_refinement(self, figure2_srp):
        """Theorem 4.5: for each concrete solution there is an assignment of
        concrete nodes to split copies relating the two networks."""
        from repro.srp import enumerate_solutions

        result = compute_abstraction(figure2_srp)
        abstract = build_abstract_srp(figure2_srp, result.abstraction)
        abstract_solution = solve(abstract)
        for concrete_solution in enumerate_solutions(figure2_srp):
            report = check_bgp_solution_equivalence(
                concrete_solution, abstract_solution, result.abstraction
            )
            assert report.cp_equivalent, report.violations


class TestCpEquivalenceStatic:
    def test_static_routes_fwd_equivalent(self):
        graph = Graph()
        for b in ("b1", "b2"):
            graph.add_undirected_edge("a", b)
            graph.add_undirected_edge(b, "d")
        srp = build_static_srp(
            graph, "d", static_edges=[("a", "b1"), ("a", "b2"), ("b1", "d"), ("b2", "d")]
        )
        result = compute_abstraction(srp)
        assert result.num_abstract_nodes == 3
        report = check_cp_equivalence(srp, result.abstraction)
        assert report.fwd_equivalent, report.violations


class TestSolutionEquivalenceChecker:
    def test_mismatched_labels_reported(self, figure1_srp):
        result = compute_abstraction(figure1_srp)
        abstract = build_abstract_srp(figure1_srp, result.abstraction)
        concrete_solution = solve(figure1_srp)
        broken = Solution(srp=abstract, labeling=dict(solve(abstract).labeling))
        a_node = result.abstraction.f("a")
        broken.labeling[a_node] = RipAttribute(9)
        report = check_solution_equivalence(concrete_solution, broken, result.abstraction)
        assert not report.label_equivalent
        assert report.violations
