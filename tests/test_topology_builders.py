"""Unit tests for the topology builders used by the evaluation workloads."""

import pytest

from repro.topology import (
    chain_topology,
    fattree_topology,
    full_mesh_topology,
    grid_topology,
    ring_topology,
    star_topology,
)
from repro.topology.builders import fattree_size_for_nodes


def test_chain_topology():
    g, roles = chain_topology(4)
    assert g.num_nodes() == 4
    assert g.num_undirected_edges() == 3
    assert all(role == "chain" for role in roles.values())


def test_chain_requires_positive_length():
    with pytest.raises(ValueError):
        chain_topology(0)


def test_ring_topology_sizes():
    g, _ = ring_topology(10)
    assert g.num_nodes() == 10
    assert g.num_undirected_edges() == 10
    assert all(g.degree(node) == 4 for node in g.nodes)  # 2 undirected = 4 directed


def test_ring_minimum_size():
    with pytest.raises(ValueError):
        ring_topology(2)


def test_full_mesh_topology():
    g, _ = full_mesh_topology(6)
    assert g.num_nodes() == 6
    assert g.num_undirected_edges() == 6 * 5 // 2


def test_full_mesh_minimum_size():
    with pytest.raises(ValueError):
        full_mesh_topology(1)


def test_star_topology():
    g, roles = star_topology(5)
    assert g.num_nodes() == 6
    assert g.num_undirected_edges() == 5
    hubs = [node for node, role in roles.items() if role == "hub"]
    assert len(hubs) == 1
    assert g.degree(hubs[0]) == 10


def test_grid_topology():
    g, _ = grid_topology(3, 4)
    assert g.num_nodes() == 12
    # 3 rows * 3 horizontal + 4 cols * 2 vertical = 9 + 8.
    assert g.num_undirected_edges() == 17


@pytest.mark.parametrize("k,expected_nodes", [(4, 20), (6, 45), (12, 180), (20, 500)])
def test_fattree_node_counts(k, expected_nodes):
    g, _ = fattree_topology(k)
    assert g.num_nodes() == expected_nodes


def test_fattree_structure_k4():
    g, roles = fattree_topology(4)
    cores = [n for n, r in roles.items() if r == "core"]
    aggs = [n for n, r in roles.items() if r == "aggregation"]
    edges = [n for n, r in roles.items() if r == "edge"]
    assert len(cores) == 4
    assert len(aggs) == 8
    assert len(edges) == 8
    # Every edge switch connects to every aggregation switch in its pod.
    assert g.has_edge("edge0_0", "agg0_0")
    assert g.has_edge("edge0_0", "agg0_1")
    assert not g.has_edge("edge0_0", "agg1_0")
    # Aggregation switches uplink to k/2 cores.
    assert sum(1 for peer in g.successors("agg0_0") if peer.startswith("core")) == 2


def test_fattree_rejects_odd_k():
    with pytest.raises(ValueError):
        fattree_topology(5)


def test_fattree_size_for_nodes():
    assert fattree_size_for_nodes(180) == 12
    assert fattree_size_for_nodes(181) == 14
    assert fattree_size_for_nodes(1) == 2


def test_paper_fattree_sizes():
    """The paper's Table 1(a) fat-trees have 180, 500 and 1125 nodes."""
    for k, nodes in [(12, 180), (20, 500), (30, 1125)]:
        assert 5 * k * k // 4 == nodes
