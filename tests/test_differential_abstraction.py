"""The paper's soundness theorem as an executable oracle.

For every generated topology family and every registered property, the
abstract (Bonsai-compressed) network's verdict must equal the concrete
network's verdict on every node (§4.4: CP-equivalence preserves
reachability, path lengths, loops, black holes, waypointing and multipath
consistency).  The :class:`~repro.analysis.batch.BatchVerifier` computes
both sides per destination equivalence class; these tests assert the
differential result node by node, and additionally that abstract
counterexamples lift back through the abstraction mapping to real
concrete devices.
"""

from __future__ import annotations

import pytest

from repro.abstraction import Bonsai, routable_equivalence_classes
from repro.analysis import (
    BatchVerifier,
    PropertySuite,
    lift_counterexample,
    registered_properties,
)
from repro.analysis.properties import Counterexample
from repro.config import Prefix
from repro.netgen import fattree_network
from repro.netgen.families import TOPOLOGY_FAMILIES, build_topology, default_size
from repro.pipeline import EncodedNetwork

FAMILIES = sorted(TOPOLOGY_FAMILIES)
PROPERTIES = registered_properties()


@pytest.fixture(scope="module")
def family_reports():
    """One serial differential run per family at its default (small) size."""
    reports = {}
    for family in FAMILIES:
        network = build_topology(family, default_size(family))
        reports[family] = BatchVerifier(network, executor="serial").run()
    return reports


class TestSoundnessOracle:
    @pytest.mark.parametrize("prop", PROPERTIES)
    @pytest.mark.parametrize("family", FAMILIES)
    def test_abstract_verdict_equals_concrete_verdict(
        self, family_reports, family, prop
    ):
        report = family_reports[family]
        assert report.records, f"no equivalence classes verified for {family}"
        for record in report.records:
            verdict = next(v for v in record.verdicts if v.property == prop)
            assert verdict.nodes_checked > 0
            assert verdict.mismatched == [], (
                f"{family} {record.prefix} {prop}: abstract and concrete "
                f"verdicts diverge on {verdict.mismatched}"
            )
            # Divergence-free means the failing node sets coincide exactly.
            assert verdict.concrete_failing == verdict.abstract_failing

    @pytest.mark.parametrize("family", FAMILIES)
    def test_report_level_agreement(self, family_reports, family):
        report = family_reports[family]
        assert report.verdicts_agree()
        assert report.mismatches() == []
        assert set(report.properties) == set(PROPERTIES)
        assert report.num_classes == len(report.records)

    def test_case_split_network_verdicts_agree(self):
        """BGP case splitting (multiple local-prefs) survives the oracle:
        verdicts are lifted over every copy with the property's quantifier."""
        network = fattree_network(4, policy="prefer_bottom")
        report = BatchVerifier(network, executor="serial").run()
        assert report.verdicts_agree()


class TestBrokenNetworkDifferential:
    """A network with a real violation: both sides must report it."""

    @pytest.fixture()
    def report(self, broken_acl_network):
        return BatchVerifier(broken_acl_network, executor="serial").run()

    def _verdict(self, report, prefix, prop):
        record = next(r for r in report.records if r.prefix == prefix)
        return next(v for v in record.verdicts if v.property == prop)

    def test_black_hole_fails_on_both_sides(self, report):
        verdict = self._verdict(report, "10.0.1.0/24", "black-hole-freedom")
        assert verdict.concrete_failing  # the violation is real...
        assert verdict.concrete_failing == verdict.abstract_failing
        assert verdict.mismatched == []  # ...and preserved, not masked

    def test_multipath_divergence_fails_on_both_sides(self, report):
        verdict = self._verdict(report, "10.0.1.0/24", "multipath-consistency")
        assert "x" in verdict.concrete_failing
        assert verdict.concrete_failing == verdict.abstract_failing

    def test_healthy_destination_passes_on_both_sides(self, report):
        for prop in PROPERTIES:
            verdict = self._verdict(report, "10.0.2.0/24", prop)
            assert verdict.concrete_failing == []
            assert verdict.abstract_failing == []

    def test_counterexamples_lift_to_concrete_devices(self, report):
        """Abstract witnesses must name abstract nodes whose concrete
        members include the concrete witness (counterexample lifting)."""
        verdict = self._verdict(report, "10.0.1.0/24", "black-hole-freedom")
        assert verdict.counterexamples
        for entry in verdict.counterexamples:
            concrete = entry["concrete"]
            abstract = entry["abstract"]
            assert concrete is not None and abstract is not None
            candidates = abstract["concrete_candidates"]
            assert candidates, "abstract witness mentions no nodes"
            assert all(members for members in candidates.values())
            # The concrete offending device is represented somewhere in
            # the lifted witness.
            lifted_union = {name for members in candidates.values() for name in members}
            assert concrete["node"] in lifted_union


class TestCounterexampleLifting:
    def test_lift_maps_every_abstract_node_to_its_members(self, broken_acl_network):
        network = broken_acl_network
        ec = next(
            ec
            for ec in routable_equivalence_classes(network)
            if ec.prefix == Prefix.parse("10.0.1.0/24")
        )
        result = Bonsai(network).compress(ec, build_network=True)
        abstraction = result.abstraction
        witness = Counterexample(
            kind="blackhole",
            node=abstraction.f("s2"),
            path=(abstraction.f("x"), abstraction.f("s2")),
        )
        lifted = lift_counterexample(abstraction, witness)
        assert lifted["abstract"]["kind"] == "blackhole"
        assert "s2" in lifted["concrete_candidates"][abstraction.f("s2")]
        assert "x" in lifted["concrete_candidates"][abstraction.f("x")]


class TestSuiteSelectionDifferential:
    def test_subset_suite_still_agrees(self, broken_acl_network):
        suite = PropertySuite.from_names(["reachability", "routing-loop-freedom"])
        report = BatchVerifier(
            broken_acl_network, suite=suite, executor="serial"
        ).run()
        assert [v.property for r in report.records for v in r.verdicts] == [
            "reachability",
            "routing-loop-freedom",
        ] * len(report.records)
        assert report.verdicts_agree()

    def test_explicit_waypoints_lift_through_abstraction(self):
        """Waypointing through an explicit device set: the abstract check
        uses the f-image of the waypoints and must agree with the concrete
        verdict on every node."""
        network = fattree_network(4)
        aggs = tuple(
            sorted(str(n) for n in network.graph.nodes if str(n).startswith("agg"))
        )
        suite = PropertySuite.from_names(["waypointing"], waypoints=aggs)
        report = BatchVerifier(network, suite=suite, executor="serial").run()
        assert report.verdicts_agree()

    def test_non_closed_waypoints_flagged_not_comparable(self):
        """A waypoint set that names only *some* members of a merged group
        cannot be expressed on the abstract network; the engine flags the
        verdict instead of reporting a phantom soundness violation."""
        network = fattree_network(4)
        suite = PropertySuite.from_names(
            ["waypointing"], waypoints=("agg0_0", "agg0_1")
        )
        report = BatchVerifier(network, suite=suite, executor="serial").run()
        assert report.verdicts_agree()  # non-comparable is not a mismatch
        flagged = [
            v
            for record in report.records
            for v in record.verdicts
            if not v.comparable
        ]
        assert flagged, "the subset waypoint set should be non-closed somewhere"
        for verdict in flagged:
            assert verdict.mismatched == []
            assert "not a union of abstraction groups" in verdict.note

    def test_tight_path_bound_fails_identically(self):
        """An unsatisfiable hop bound fails on *both* networks for exactly
        the same sources -- the differential harness also covers failing
        verdicts, not just passing ones."""
        network = fattree_network(4)
        suite = PropertySuite.from_names(["bounded-path-length"], path_bound=1)
        report = BatchVerifier(network, suite=suite, executor="serial").run()
        assert report.verdicts_agree()
        failing = [
            v
            for record in report.records
            for v in record.verdicts
            if v.concrete_failing
        ]
        assert failing, "a 1-hop bound should fail somewhere in a fat-tree"


@pytest.fixture(scope="module")
def shared_artifact():
    return EncodedNetwork.build(build_topology("mesh", 6))


class TestExecutorDifferentialParity:
    """The differential verdicts are executor-independent."""

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_parallel_matches_serial(self, shared_artifact, executor):
        serial = BatchVerifier(artifact=shared_artifact, executor="serial").run()
        parallel = BatchVerifier(
            artifact=shared_artifact, executor=executor, workers=2
        ).run()
        assert serial.canonical_records() == parallel.canonical_records()
        assert parallel.verdicts_agree()
