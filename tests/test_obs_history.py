"""Tests for the bench-history store (repro.obs.history): record
round trips, the rolling-median regression check (including an injected
2x regression), trend rendering, the paranoid reader, and the
``bench history`` CLI."""

from __future__ import annotations

import json

import pytest

from repro.obs import history
from repro.obs.jsonl import ObsFileError
from repro.pipeline.cli import main as pipeline_main


def _seed(path, values, bench="hotpaths", stage="srp_solve"):
    """Append one record per value for a single (bench, stage)."""
    for i, value in enumerate(values):
        history.append(
            str(path), bench, {stage: value},
            timestamp=1_700_000_000.0 + i, sha=f"sha{i}",
        )


# ----------------------------------------------------------------------
# Records
# ----------------------------------------------------------------------
class TestRecords:
    def test_append_read_roundtrip(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        record = history.append(
            str(path), "hotpaths", {"srp_solve": 0.5, "compress": 1.25},
            counters={"solver.rounds": 42}, peak_rss_mb=123.4,
            meta={"mode": "quick"}, timestamp=1_700_000_000.0, sha="abc123",
        )
        assert record["kind"] == "bench_history"
        assert record["schema_version"] == history.HISTORY_SCHEMA_VERSION
        loaded = history.read_history(str(path))
        assert loaded == [record]
        assert loaded[0]["stages"] == {"srp_solve": 0.5, "compress": 1.25}
        assert loaded[0]["peak_rss_mb"] == 123.4
        assert loaded[0]["git_sha"] == "abc123"

    def test_append_is_append_only(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        _seed(path, [0.1, 0.2, 0.3])
        records = history.read_history(str(path))
        assert [r["stages"]["srp_solve"] for r in records] == [0.1, 0.2, 0.3]

    def test_git_sha_is_tolerant(self):
        sha = history.git_sha()
        assert sha is None or isinstance(sha, str)

    def test_default_path_env_override(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBS_HISTORY", raising=False)
        assert history.default_history_path(None) == history.DEFAULT_PATH
        monkeypatch.setenv("REPRO_OBS_HISTORY", "/tmp/h.jsonl")
        assert history.default_history_path(None) == "/tmp/h.jsonl"
        assert history.default_history_path("explicit.jsonl") == "explicit.jsonl"


# ----------------------------------------------------------------------
# Regression check
# ----------------------------------------------------------------------
class TestRegressionCheck:
    def test_stable_series_is_ok(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        _seed(path, [1.0, 1.02, 0.98, 1.01, 1.0])
        ok, findings = history.regression_check(history.read_history(str(path)))
        assert ok
        assert len(findings) == 1 and not findings[0]["regressed"]

    def test_detects_injected_2x_regression(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        _seed(path, [1.0, 1.02, 0.98, 2.0])
        ok, findings = history.regression_check(history.read_history(str(path)))
        assert not ok
        finding = findings[0]
        assert finding["regressed"]
        assert finding["latest"] == 2.0
        assert finding["median"] == 1.0
        assert finding["bound"] == pytest.approx(1.0 * 1.25 + 0.02)

    def test_rolling_window_limits_reference(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        # Old slow runs fall outside the window; the check tracks the
        # recent (faster) regime, so the same latest value regresses.
        _seed(path, [10.0, 10.0, 10.0, 1.0, 1.0, 1.0, 1.0, 1.0, 2.0])
        ok, findings = history.regression_check(
            history.read_history(str(path)), window=5
        )
        assert not ok and findings[0]["median"] == 1.0

    def test_single_run_is_not_checked(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        _seed(path, [1.0])
        ok, findings = history.regression_check(history.read_history(str(path)))
        assert ok and findings == []

    def test_benches_are_independent(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        _seed(path, [1.0, 1.0], bench="hotpaths")
        _seed(path, [1.0, 5.0], bench="serve")
        ok, findings = history.regression_check(history.read_history(str(path)))
        assert not ok
        by_bench = {f["bench"]: f["regressed"] for f in findings}
        assert by_bench == {"hotpaths": False, "serve": True}

    def test_absolute_slack_absorbs_millisecond_noise(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        # 3x relative jump, but under the 20ms absolute floor.
        _seed(path, [0.004, 0.012])
        ok, _ = history.regression_check(history.read_history(str(path)))
        assert ok


class TestTrends:
    def test_trend_lines_cover_stages(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        _seed(path, [0.5, 0.6, 0.7])
        lines = history.trend_lines(history.read_history(str(path)))
        assert lines[0] == "hotpaths:"
        assert "srp_solve" in lines[1] and "n=3" in lines[1]


# ----------------------------------------------------------------------
# Paranoid reader
# ----------------------------------------------------------------------
class TestHistoryReader:
    def test_refuses_empty_and_truncated(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        path.write_text("")
        with pytest.raises(ObsFileError) as err:
            history.read_history(str(path))
        assert err.value.reason == "empty"
        _seed(path, [1.0, 2.0])
        path.write_text(path.read_text().rstrip("\n"))
        with pytest.raises(ObsFileError) as err:
            history.read_history(str(path))
        assert err.value.reason == "truncated"

    def test_refuses_corrupt_line_mid_file(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        _seed(path, [1.0, 2.0, 3.0])
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:10]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ObsFileError) as err:
            history.read_history(str(path))
        assert err.value.reason == "corrupt_json"

    def test_refuses_wrong_kind_and_schema(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        _seed(path, [1.0])
        record = json.loads(path.read_text())
        record["schema_version"] = history.HISTORY_SCHEMA_VERSION + 1
        path.write_text(json.dumps(record) + "\n")
        with pytest.raises(ObsFileError) as err:
            history.read_history(str(path))
        assert err.value.reason == "schema_mismatch"
        record["schema_version"] = history.HISTORY_SCHEMA_VERSION
        record["kind"] = "something_else"
        path.write_text(json.dumps(record) + "\n")
        with pytest.raises(ObsFileError) as err:
            history.read_history(str(path))
        assert err.value.reason == "wrong_kind"

    def test_refuses_record_missing_stages(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        _seed(path, [1.0])
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps({
                "kind": "bench_history",
                "schema_version": history.HISTORY_SCHEMA_VERSION,
            }) + "\n")
        with pytest.raises(ObsFileError) as err:
            history.read_history(str(path))
        assert err.value.reason == "missing_field"


# ----------------------------------------------------------------------
# CLI: bench history
# ----------------------------------------------------------------------
class TestBenchHistoryCli:
    def test_trends_print_without_check(self, tmp_path, capsys):
        path = tmp_path / "hist.jsonl"
        _seed(path, [1.0, 1.1, 0.9])
        code = pipeline_main(["bench", "history", "--history", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "hotpaths:" in out and "srp_solve" in out

    def test_check_passes_on_stable_history(self, tmp_path, capsys):
        path = tmp_path / "hist.jsonl"
        _seed(path, [1.0, 1.0, 1.0])
        code = pipeline_main(["bench", "history", "--history", str(path), "--check"])
        assert code == 0
        capsys.readouterr()

    def test_check_fails_on_injected_regression(self, tmp_path, capsys):
        path = tmp_path / "hist.jsonl"
        _seed(path, [1.0, 1.0, 2.0])
        code = pipeline_main(["bench", "history", "--history", str(path), "--check"])
        assert code == 1
        assert "REGRESSED" in capsys.readouterr().err

    def test_missing_history_is_an_error(self, tmp_path, capsys):
        code = pipeline_main(
            ["bench", "history", "--history", str(tmp_path / "nope.jsonl")]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_bench_filter(self, tmp_path, capsys):
        path = tmp_path / "hist.jsonl"
        _seed(path, [1.0, 1.0], bench="hotpaths")
        _seed(path, [2.0, 2.0], bench="serve")
        code = pipeline_main(
            ["bench", "history", "--history", str(path), "--bench", "serve"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "serve:" in out and "hotpaths:" not in out
