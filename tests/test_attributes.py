"""Unit tests for routing-message attributes."""

import pytest

from repro.routing import (
    ADMIN_DISTANCE,
    BgpAttribute,
    OspfAttribute,
    RibAttribute,
    RipAttribute,
    StaticAttribute,
)


class TestRipAttribute:
    def test_increment(self):
        assert RipAttribute(3).incremented() == RipAttribute(4)

    def test_increment_at_limit_drops(self):
        assert RipAttribute(15).incremented() is None

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            RipAttribute(-1)

    def test_ordering(self):
        assert RipAttribute(1) < RipAttribute(2)


class TestOspfAttribute:
    def test_add_cost(self):
        a = OspfAttribute(cost=5)
        assert a.with_added_cost(3).cost == 8

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            OspfAttribute(cost=-1)
        with pytest.raises(ValueError):
            OspfAttribute(cost=1).with_added_cost(-2)

    def test_crossing_area_marks_inter_area(self):
        a = OspfAttribute(cost=5, inter_area=False, area=0)
        crossed = a.crossing_area(2)
        assert crossed.inter_area
        assert crossed.area == 2
        assert crossed.cost == 5


class TestBgpAttribute:
    def test_defaults(self):
        a = BgpAttribute()
        assert a.local_pref == 100
        assert a.communities == frozenset()
        assert a.as_path == ()
        assert a.path_length == 0

    def test_communities(self):
        a = BgpAttribute().with_community("65001:1")
        assert a.has_community("65001:1")
        assert not a.without_community("65001:1").has_community("65001:1")

    def test_prepend_and_loop_detection(self):
        a = BgpAttribute().prepended("r1").prepended("r2")
        assert a.as_path == ("r2", "r1")
        assert a.contains_as("r1")
        assert not a.contains_as("r3")

    def test_with_local_pref(self):
        assert BgpAttribute().with_local_pref(250).local_pref == 250

    def test_negative_local_pref_rejected(self):
        with pytest.raises(ValueError):
            BgpAttribute(local_pref=-5)

    def test_immutability(self):
        a = BgpAttribute()
        a.with_community("x")
        assert a.communities == frozenset()


class TestRibAttribute:
    def test_best_protocol_order(self):
        rib = RibAttribute(
            bgp=BgpAttribute(), ospf=OspfAttribute(cost=1), static=StaticAttribute()
        )
        assert rib.best_protocol() == "static"
        rib = RibAttribute(bgp=BgpAttribute(), ospf=OspfAttribute(cost=1))
        assert rib.best_protocol() == "ebgp"
        rib = RibAttribute(ospf=OspfAttribute(cost=1))
        assert rib.best_protocol() == "ospf"

    def test_empty(self):
        rib = RibAttribute()
        assert rib.is_empty
        assert rib.best_protocol() is None

    def test_invalid_chosen_rejected(self):
        with pytest.raises(ValueError):
            RibAttribute(chosen="bogus")

    def test_admin_distances_follow_convention(self):
        assert ADMIN_DISTANCE["static"] < ADMIN_DISTANCE["ebgp"] < ADMIN_DISTANCE["ospf"]
