"""Tests for the persistent baseline artifact store (`repro.store`)."""

from __future__ import annotations

import json
import pickle

import pytest

from repro.netgen.families import build_topology
from repro.srp.solver import COUNTERS
from repro.store import (
    ARTIFACT_SCHEMA_VERSION,
    STORE_SCHEMA_VERSION,
    ArtifactStore,
    BaselineArtifact,
    StoreError,
    canonical_form,
    network_fingerprint,
)

#: Small instances of every generated family (round-trip coverage).
FAMILY_SIZES = (
    ("datacenter", 2),
    ("fattree", 4),
    ("mesh", 4),
    ("ring", 5),
    ("wan", 2),
)


@pytest.fixture(scope="module")
def ring_network():
    return build_topology("ring", 5)


@pytest.fixture(scope="module")
def ring_artifact(ring_network):
    return BaselineArtifact.build(ring_network)


# ----------------------------------------------------------------------
# Content fingerprints
# ----------------------------------------------------------------------
class TestFingerprint:
    def test_deterministic_across_rebuilds(self):
        a = network_fingerprint(build_topology("ring", 5))
        b = network_fingerprint(build_topology("ring", 5))
        assert a == b
        assert len(a) == 64  # sha256 hex

    def test_distinguishes_networks(self):
        assert network_fingerprint(build_topology("ring", 5)) != network_fingerprint(
            build_topology("ring", 6)
        )
        assert network_fingerprint(build_topology("ring", 5)) != network_fingerprint(
            build_topology("mesh", 5)
        )

    def test_name_is_not_content(self, ring_network):
        """Renaming a network must not change its content fingerprint."""
        other = build_topology("ring", 5)
        other.name = "renamed"
        assert network_fingerprint(other) == network_fingerprint(ring_network)

    def test_canonical_form_sorts_unordered_collections(self):
        assert canonical_form({"b": 1, "a": 2}) == canonical_form({"a": 2, "b": 1})
        assert canonical_form({3, 1, 2}) == canonical_form({2, 1, 3})


# ----------------------------------------------------------------------
# Artifact build
# ----------------------------------------------------------------------
class TestBaselineArtifact:
    def test_build_covers_every_class(self, ring_network, ring_artifact):
        assert ring_artifact.fingerprint == network_fingerprint(ring_network)
        assert len(ring_artifact.baselines) == len(ring_artifact.encoded.classes)
        for baseline in ring_artifact.baselines.values():
            assert baseline.labeling
            assert baseline.transfer_memo
            assert baseline.signature
            assert baseline.partition
            assert baseline.compression is not None
            assert baseline.table is not None

    def test_matches(self, ring_network, ring_artifact):
        assert ring_artifact.matches(ring_network)
        assert not ring_artifact.matches(build_topology("mesh", 4))

    def test_no_compress_build(self, ring_network):
        artifact = BaselineArtifact.build(ring_network, compress=False, limit=2)
        assert len(artifact.baselines) == 2
        for baseline in artifact.baselines.values():
            assert baseline.compression is None
            assert baseline.labeling

    def test_stats(self, ring_artifact):
        stats = ring_artifact.stats()
        assert stats["num_classes"] == len(ring_artifact.baselines)
        assert stats["compressed_classes"] == len(ring_artifact.baselines)
        assert stats["schema_version"] == ARTIFACT_SCHEMA_VERSION


# ----------------------------------------------------------------------
# Store round trips
# ----------------------------------------------------------------------
class TestStoreRoundTrip:
    def test_save_load_identity(self, tmp_path, ring_artifact):
        store = ArtifactStore(tmp_path)
        entry = store.save(ring_artifact)
        assert (entry / "meta.json").is_file()
        assert (entry / "payload.pkl").is_file()

        loaded = store.load(ring_artifact.fingerprint)
        assert loaded.fingerprint == ring_artifact.fingerprint
        assert set(loaded.baselines) == set(ring_artifact.baselines)
        for prefix, original in ring_artifact.baselines.items():
            copy = loaded.baselines[prefix]
            assert copy.labeling == original.labeling
            assert copy.transfer_memo == original.transfer_memo
            assert copy.signature == original.signature
            assert copy.partition == original.partition
            assert copy.origins == original.origins

    @pytest.mark.parametrize("family,size", FAMILY_SIZES)
    def test_every_family_round_trips(self, tmp_path, family, size):
        network = build_topology(family, size)
        artifact = BaselineArtifact.build(network, limit=2)
        store = ArtifactStore(tmp_path)
        store.save(artifact)
        loaded = store.load_for(network)
        assert loaded.fingerprint == network_fingerprint(network)
        assert set(loaded.baselines) == set(artifact.baselines)
        for prefix, original in artifact.baselines.items():
            assert loaded.baselines[prefix].labeling == original.labeling
            assert loaded.baselines[prefix].signature == original.signature
            assert loaded.baselines[prefix].partition == original.partition

    def test_list_and_meta(self, tmp_path, ring_artifact):
        store = ArtifactStore(tmp_path)
        assert store.list() == []
        store.save(ring_artifact)
        entries = store.list()
        assert len(entries) == 1
        assert entries[0]["fingerprint"] == ring_artifact.fingerprint
        assert entries[0]["num_classes"] == len(ring_artifact.baselines)
        meta = store.meta(ring_artifact.fingerprint)
        assert meta["store_schema_version"] == STORE_SCHEMA_VERSION
        assert meta["artifact_schema_version"] == ARTIFACT_SCHEMA_VERSION

    def test_delete(self, tmp_path, ring_artifact):
        store = ArtifactStore(tmp_path)
        store.save(ring_artifact)
        assert store.has(ring_artifact.fingerprint)
        assert store.delete(ring_artifact.fingerprint)
        assert not store.has(ring_artifact.fingerprint)
        assert not store.delete(ring_artifact.fingerprint)


# ----------------------------------------------------------------------
# Corruption: every failure refuses with a diagnostic, never serves junk
# ----------------------------------------------------------------------
class TestStoreCorruption:
    @pytest.fixture()
    def saved(self, tmp_path, ring_artifact):
        store = ArtifactStore(tmp_path)
        entry = store.save(ring_artifact)
        return store, entry, ring_artifact.fingerprint

    def test_missing_entry(self, tmp_path):
        with pytest.raises(StoreError, match="no artifact"):
            ArtifactStore(tmp_path).load("0" * 64)

    def test_truncated_payload(self, saved):
        store, entry, fingerprint = saved
        payload = entry / "payload.pkl"
        payload.write_bytes(payload.read_bytes()[:-20])
        with pytest.raises(StoreError, match="checksum mismatch"):
            store.load(fingerprint)

    def test_bit_flipped_payload(self, saved):
        store, entry, fingerprint = saved
        payload = entry / "payload.pkl"
        raw = bytearray(payload.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        payload.write_bytes(bytes(raw))
        with pytest.raises(StoreError, match="checksum mismatch"):
            store.load(fingerprint)

    def test_unparseable_meta(self, saved):
        store, entry, fingerprint = saved
        (entry / "meta.json").write_text("{not json")
        with pytest.raises(StoreError, match="unreadable meta"):
            store.load(fingerprint)

    def test_store_schema_mismatch(self, saved):
        store, entry, fingerprint = saved
        meta = json.loads((entry / "meta.json").read_text())
        meta["store_schema_version"] = STORE_SCHEMA_VERSION + 1
        (entry / "meta.json").write_text(json.dumps(meta))
        with pytest.raises(StoreError, match="store schema mismatch"):
            store.load(fingerprint)

    def test_artifact_schema_mismatch(self, saved):
        store, entry, fingerprint = saved
        meta = json.loads((entry / "meta.json").read_text())
        meta["artifact_schema_version"] = ARTIFACT_SCHEMA_VERSION + 1
        (entry / "meta.json").write_text(json.dumps(meta))
        with pytest.raises(StoreError, match="artifact schema mismatch"):
            store.load(fingerprint)

    def test_foreign_fingerprint_in_meta(self, saved):
        store, entry, fingerprint = saved
        meta = json.loads((entry / "meta.json").read_text())
        meta["fingerprint"] = "f" * 64
        (entry / "meta.json").write_text(json.dumps(meta))
        with pytest.raises(StoreError, match="foreign entry"):
            store.load(fingerprint)

    def test_relocated_entry_refused(self, saved):
        """Moving an entry directory under another fingerprint is foreign."""
        store, entry, fingerprint = saved
        stolen = entry.parent / ("a" * 64)
        entry.rename(stolen)
        with pytest.raises(StoreError, match="foreign"):
            store.load("a" * 64)

    def test_payload_is_not_an_artifact(self, saved):
        store, entry, fingerprint = saved
        payload = pickle.dumps({"not": "an artifact"})
        (entry / "payload.pkl").write_bytes(payload)
        meta = json.loads((entry / "meta.json").read_text())
        import hashlib

        meta["payload_sha256"] = hashlib.sha256(payload).hexdigest()
        (entry / "meta.json").write_text(json.dumps(meta))
        with pytest.raises(StoreError, match="not a BaselineArtifact"):
            store.load(fingerprint)

    def test_load_or_build_rebuilds_after_corruption(
        self, saved, ring_network
    ):
        store, entry, fingerprint = saved
        payload = entry / "payload.pkl"
        payload.write_bytes(payload.read_bytes()[:-20])
        artifact, rebuilt, reason = store.load_or_build(ring_network, limit=2)
        assert rebuilt
        assert "checksum mismatch" in reason
        assert artifact.fingerprint == fingerprint
        # The rebuild replaced the corrupt entry: a fresh load verifies.
        again, rebuilt_again, _ = store.load_or_build(ring_network)
        assert not rebuilt_again
        assert again.fingerprint == fingerprint

    def test_load_or_build_clean_load(self, saved, ring_network):
        store, _, fingerprint = saved
        artifact, rebuilt, reason = store.load_or_build(ring_network)
        assert not rebuilt
        assert reason == ""
        assert artifact.fingerprint == fingerprint


# ----------------------------------------------------------------------
# The headline guarantee: delta against a stored baseline never re-solves
# ----------------------------------------------------------------------
class TestZeroBaselineResolves:
    def test_delta_from_store_has_zero_scratch_solves(self, ring_network, ring_artifact):
        from repro.delta import ChangeSet, DeltaSweep, LocalPrefOverride

        device = sorted(ring_network.devices)[0]
        peer = next(iter(ring_network.graph.successors(device)))
        script = [
            ChangeSet(
                name="prefer-peer",
                changes=[
                    LocalPrefOverride(
                        device=str(device), peer=str(peer), local_pref=320
                    )
                ],
            )
        ]
        kwargs = dict(
            script=script,
            oracle=False,
            revalidate=False,
            rebuild_oracle=False,
            executor="serial",
        )

        COUNTERS.reset()
        warm = DeltaSweep(ring_network, baseline=ring_artifact, **kwargs).run()
        counters = COUNTERS.snapshot()
        assert counters["scratch_solves"] == 0
        assert counters["seeded_solves"] > 0
        assert warm.baseline_fingerprint == ring_artifact.fingerprint
        assert all(record.baseline_from_store for record in warm.records)

        # Verdict parity with a from-scratch sweep of the same script.
        COUNTERS.reset()
        cold = DeltaSweep(ring_network, **kwargs).run()
        assert COUNTERS.snapshot()["scratch_solves"] > 0
        assert cold.baseline_fingerprint is None
        warm_canon = {r.prefix: r.canonical() for r in warm.records}
        cold_canon = {r.prefix: r.canonical() for r in cold.records}
        assert warm_canon == cold_canon

    def test_mismatched_baseline_is_refused(self, ring_artifact):
        from repro.delta import DeltaSweep
        from repro.netgen.changes import generated_change_script

        other = build_topology("mesh", 4)
        script = generated_change_script(other, "mesh", steps=1, seed=0)
        with pytest.raises(ValueError, match="fingerprints differ"):
            DeltaSweep(other, script=script, baseline=ring_artifact)
