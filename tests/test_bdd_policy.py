"""Unit tests for the policy-to-BDD encoder (§5.1, Figure 10)."""

import pytest

from repro.bdd import PolicyBddEncoder
from repro.config import Prefix, parse_network
from repro.config.transfer import compile_edges

#: Two leaves with semantically identical (but differently written)
#: policies, one leaf with a genuinely different policy, and a hub.
NETWORK_TEXT = """
device hub
  bgp-neighbor leaf1 import PREF
  bgp-neighbor leaf2 import PREF
  bgp-neighbor leaf3 import PREF
  community-list dept 65001:1 65001:2
  route-map PREF 10 permit
    match community dept
    set community 65001:3
    set local-preference 350
  route-map PREF 20 permit

device leaf1
  network 10.0.1.0/24
  bgp-neighbor hub export OUT
  route-map OUT 10 permit
    match prefix-list SITE
  prefix-list SITE permit 10.0.0.0/8 ge 8 le 32

device leaf2
  network 10.0.2.0/24
  bgp-neighbor hub export OUT2
  route-map OUT2 5 permit
    match prefix-list SITE2
  prefix-list SITE2 permit 10.0.0.0/8 ge 8 le 32

device leaf3
  network 10.0.3.0/24
  bgp-neighbor hub export OUT3
  route-map OUT3 10 permit
    match prefix-list OWN3
  prefix-list OWN3 permit 10.0.3.0/24

link hub leaf1
link hub leaf2
link hub leaf3
"""

DEST1 = Prefix.parse("10.0.1.0/24")
DEST3 = Prefix.parse("10.0.3.0/24")


@pytest.fixture
def network():
    return parse_network(NETWORK_TEXT)


@pytest.fixture
def encoder(network):
    return PolicyBddEncoder(network)


def test_universe_discovery(encoder):
    stats_before = encoder.stats()
    assert stats_before["communities"] == 2  # 65001:1 and 65001:2 are matched
    assert stats_before["local_pref_values"] == 2  # unchanged + 350


def test_identical_policies_share_bdd(network, encoder):
    compiled = compile_edges(network, DEST1)
    bdd1 = encoder.encode_edge(compiled[("hub", "leaf1")])
    bdd2 = encoder.encode_edge(compiled[("hub", "leaf2")])
    assert bdd1 == bdd2


def test_different_policies_get_different_bdds(network, encoder):
    compiled = compile_edges(network, DEST1)
    bdd_same = encoder.encode_edge(compiled[("hub", "leaf1")])
    bdd_diff = encoder.encode_edge(compiled[("hub", "leaf3")])
    assert bdd_same != bdd_diff


def test_specialization_collapses_prefix_differences(network, encoder):
    """leaf1 and leaf3 export maps differ, but for leaf3's own prefix both
    permit, so the specialized BDDs coincide; for leaf1's prefix they do not."""
    compiled = compile_edges(network, DEST1)
    generic1 = encoder.encode_edge(compiled[("hub", "leaf1")])
    generic3 = encoder.encode_edge(compiled[("hub", "leaf3")])
    assert generic1 != generic3
    specialized_own = encoder.specialize(generic3, DEST3)
    specialized_site = encoder.specialize(generic1, DEST3)
    assert specialized_own == specialized_site
    assert encoder.specialize(generic3, DEST1) != encoder.specialize(generic1, DEST1)


def test_specialized_policy_keys_group_edges(network, encoder):
    keys = encoder.specialized_policy_keys(DEST1)
    assert keys[("hub", "leaf1")] == keys[("hub", "leaf2")]
    assert keys[("hub", "leaf1")] != keys[("hub", "leaf3")]


def test_no_bgp_session_encodes_distinctly(network, encoder):
    network.devices["leaf3"].bgp_neighbors.clear()
    compiled = compile_edges(network, DEST1)
    bdd = encoder.encode_edge(compiled[("leaf3", "hub")])
    other = encoder.encode_edge(compiled[("leaf1", "hub")])
    assert bdd != other


def test_acl_participates_in_policy(network):
    text = NETWORK_TEXT + """
device hub
  acl BLOCK deny 10.0.1.0/24 default permit
  interface-acl leaf1 BLOCK
"""
    blocked = parse_network(text)
    encoder = PolicyBddEncoder(blocked)
    keys = encoder.specialized_policy_keys(DEST1)
    assert keys[("hub", "leaf1")] != keys[("hub", "leaf2")]
    # For an unrelated destination the ACL permits, so the keys match again.
    keys_other = encoder.specialized_policy_keys(Prefix.parse("10.0.2.0/24"))
    assert keys_other[("hub", "leaf1")] == keys_other[("hub", "leaf2")]


def test_encode_all_edges_covers_graph(network, encoder):
    bdds = encoder.encode_all_edges(destination=DEST1)
    assert set(bdds) == set(network.graph.edges)


def test_unique_role_count(network, encoder):
    # hub, leaf1/leaf2 (same role), leaf3 (distinct role) => 3 roles.
    assert encoder.unique_role_count(DEST1) == 3


def test_figure10_local_pref_encoding(network, encoder):
    """The Figure 10 policy maps tagged announcements to lp 350 and
    attaches 65001:3; untagged announcements fall through to clause 20."""
    compiled = compile_edges(network, DEST1)
    bdd = encoder.specialize(encoder.encode_edge(compiled[("hub", "leaf1")]), DEST1)
    manager = encoder.manager
    lp350 = encoder._lp_vars[350]
    c1_in = encoder._community_in["65001:1"]
    c3 = "65001:3"
    # Specialized to leaf1's own prefix nothing is dropped, and an
    # announcement tagged with 65001:1 must come out with lp' = 350.
    tagged_and_not_350 = manager.apply_and(
        bdd, manager.apply_and(manager.var(c1_in), manager.nvar(lp350))
    )
    assert tagged_and_not_350 == 0
    # 65001:3 is attached but never matched on anywhere, so the encoder does
    # not track it at all -- that is the unused-tag abstraction of §8.
    assert c3 not in encoder._community_out


class TestSpecializationCache:
    """The LRU cache reuses cofactors across equivalence classes."""

    def test_repeated_destinations_hit_the_cache(self, network):
        encoder = PolicyBddEncoder(network)
        compiled = compile_edges(network, Prefix.parse("10.0.1.0/24"))
        first = encoder.specialized_policy_keys(Prefix.parse("10.0.1.0/24"), compiled)
        info = encoder.specialize_cache_info()
        assert info["misses"] > 0
        # A destination with the same restriction assignment reuses every
        # cofactor; keys must be identical BDD ids.
        again = encoder.specialized_policy_keys(Prefix.parse("10.0.1.0/24"), compiled)
        assert again == first
        assert encoder.specialize_cache_info()["hits"] >= len(compiled)

    def test_cache_respects_limit(self, network):
        encoder = PolicyBddEncoder(network, specialize_cache_limit=2)
        for third_octet in range(8):
            encoder.specialized_policy_keys(Prefix.parse(f"10.0.{third_octet}.0/24"))
        assert encoder.specialize_cache_info()["size"] <= 2

    def test_cache_can_be_disabled(self, network):
        encoder = PolicyBddEncoder(network, specialize_cache_limit=0)
        keys = encoder.specialized_policy_keys(Prefix.parse("10.0.1.0/24"))
        assert keys
        info = encoder.specialize_cache_info()
        assert info["size"] == 0 and info["hits"] == 0

    def test_cached_and_uncached_results_agree(self, network):
        cached = PolicyBddEncoder(network)
        uncached = PolicyBddEncoder(network, specialize_cache_limit=0)
        for third_octet in (1, 2, 1, 3, 1):
            destination = Prefix.parse(f"10.0.{third_octet}.0/24")
            compiled = compile_edges(network, destination)
            a = cached.specialized_policy_keys(destination, compiled)
            b = uncached.specialized_policy_keys(destination, compiled)
            # Same manager state evolution => identical BDD identities.
            assert a == b
