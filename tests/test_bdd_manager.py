"""Unit tests for the ROBDD engine, run against both backends.

Every test here exercises only within-manager properties (canonicity,
semantic operations), which both the dict-based and the array-backed
manager must satisfy identically.  Raw node ids are NOT comparable
across backends and no test asserts any.
"""

import pytest

from repro.bdd import FALSE, TRUE, BddError, make_manager


@pytest.fixture(params=["dict", "array"])
def backend(request) -> str:
    return request.param


@pytest.fixture
def manager(backend):
    return make_manager(num_vars=4, backend=backend)


class TestBasics:
    def test_terminals(self, manager):
        assert FALSE == 0 and TRUE == 1
        assert manager.apply_not(TRUE) == FALSE
        assert manager.apply_not(FALSE) == TRUE

    def test_var_and_nvar_are_complements(self, manager):
        x = manager.var(0)
        assert manager.apply_not(x) == manager.nvar(0)
        assert manager.apply_or(x, manager.nvar(0)) == TRUE
        assert manager.apply_and(x, manager.nvar(0)) == FALSE

    def test_out_of_range_variable_rejected(self, manager):
        with pytest.raises(BddError):
            manager.var(99)
        with pytest.raises(BddError):
            manager.nvar(-1)

    def test_add_var_extends_order(self, backend):
        manager = make_manager(backend=backend)
        index = manager.add_var("custom")
        assert manager.var_name(index) == "custom"
        assert manager.var_index("custom") == index
        with pytest.raises(BddError):
            manager.var_index("missing")


class TestCanonicity:
    def test_hash_consing_makes_equal_functions_identical(self, manager):
        a, b = manager.var(0), manager.var(1)
        left = manager.apply_or(manager.apply_and(a, b), manager.apply_and(a, manager.apply_not(b)))
        assert left == a  # (a and b) or (a and not b) == a

    def test_demorgan(self, manager):
        a, b = manager.var(0), manager.var(1)
        lhs = manager.apply_not(manager.apply_and(a, b))
        rhs = manager.apply_or(manager.apply_not(a), manager.apply_not(b))
        assert lhs == rhs

    def test_commutativity_gives_same_node(self, manager):
        a, b = manager.var(2), manager.var(3)
        assert manager.apply_and(a, b) == manager.apply_and(b, a)

    def test_xor_and_iff(self, manager):
        a, b = manager.var(0), manager.var(1)
        assert manager.apply_xor(a, a) == FALSE
        assert manager.apply_iff(a, a) == TRUE
        assert manager.apply_not(manager.apply_xor(a, b)) == manager.apply_iff(a, b)

    def test_implies(self, manager):
        a = manager.var(0)
        assert manager.apply_implies(FALSE, a) == TRUE
        assert manager.apply_implies(a, TRUE) == TRUE
        assert manager.apply_implies(a, FALSE) == manager.apply_not(a)


class TestOperations:
    def test_conjoin_disjoin(self, manager):
        vars_ = [manager.var(i) for i in range(3)]
        conj = manager.conjoin(vars_)
        assert manager.evaluate(conj, {0: True, 1: True, 2: True})
        assert not manager.evaluate(conj, {0: True, 1: False, 2: True})
        disj = manager.disjoin(vars_)
        assert manager.evaluate(disj, {0: False, 1: False, 2: True})
        assert manager.conjoin([]) == TRUE
        assert manager.disjoin([]) == FALSE

    def test_restrict(self, manager):
        a, b = manager.var(0), manager.var(1)
        f = manager.apply_and(a, b)
        assert manager.restrict(f, {0: True}) == b
        assert manager.restrict(f, {0: False}) == FALSE
        assert manager.restrict(f, {0: True, 1: True}) == TRUE

    def test_exists_and_forall(self, manager):
        a, b = manager.var(0), manager.var(1)
        f = manager.apply_and(a, b)
        assert manager.exists(f, [0]) == b
        assert manager.forall(f, [0]) == FALSE
        g = manager.apply_or(a, b)
        assert manager.forall(g, [0]) == b

    def test_support(self, manager):
        a, c = manager.var(0), manager.var(2)
        f = manager.apply_or(a, c)
        assert manager.support(f) == [0, 2]
        assert manager.support(TRUE) == []

    def test_evaluate_requires_assignment(self, manager):
        f = manager.var(1)
        with pytest.raises(BddError):
            manager.evaluate(f, {})

    def test_sat_count(self, manager):
        a, b = manager.var(0), manager.var(1)
        assert manager.sat_count(TRUE, num_vars=4) == 16
        assert manager.sat_count(FALSE, num_vars=4) == 0
        assert manager.sat_count(a, num_vars=4) == 8
        assert manager.sat_count(manager.apply_and(a, b), num_vars=4) == 4
        assert manager.sat_count(manager.apply_xor(a, b), num_vars=4) == 8

    def test_sat_count_rejects_num_vars_below_support(self, manager):
        """Regression: num_vars smaller than the support used to return a
        float (negative exponent) instead of raising."""
        a, c = manager.var(0), manager.var(2)
        f = manager.apply_and(a, c)
        with pytest.raises(BddError):
            manager.sat_count(f, num_vars=2)
        with pytest.raises(BddError):
            manager.sat_count(TRUE, num_vars=-1)
        # The support boundary itself is fine (variables 0..2 need 3).
        assert manager.sat_count(f, num_vars=3) == 2

    def test_satisfying_assignments(self, manager):
        a, b = manager.var(0), manager.var(1)
        f = manager.apply_and(a, manager.apply_not(b))
        assignments = list(manager.satisfying_assignments(f))
        assert assignments == [{0: True, 1: False}]

    def test_size_and_expression(self, manager):
        a, b = manager.var(0), manager.var(1)
        f = manager.apply_and(a, b)
        assert manager.size(f) == 2
        assert "x0" in manager.to_expression(f)
        assert manager.to_expression(TRUE) == "true"

    def test_cofactors_and_top_var(self, manager):
        a, b = manager.var(0), manager.var(1)
        f = manager.apply_and(a, b)
        assert manager.top_var(f) == 0
        low, high = manager.cofactors(f)
        assert low == FALSE and high == b
        with pytest.raises(BddError):
            manager.top_var(TRUE)


class TestCacheLimit:
    """The ite memo cache stays bounded when a limit is set."""

    def test_invalid_limit_rejected(self, backend):
        with pytest.raises(ValueError):
            make_manager(num_vars=2, cache_limit=0, backend=backend)
        with pytest.raises(ValueError):
            make_manager(num_vars=2, cache_limit=-5, backend=backend)

    def test_unbounded_by_default(self, backend):
        manager = make_manager(num_vars=8, backend=backend)
        assert manager.cache_limit is None

    def test_cache_cleared_on_overflow(self, backend):
        limit = 50
        manager = make_manager(num_vars=12, cache_limit=limit, backend=backend)
        f = manager.conjoin(manager.var(i) for i in range(12))
        for i in range(12):
            f = manager.apply_or(f, manager.apply_xor(manager.var(i), manager.var((i + 1) % 12)))
        assert manager.ite_cache_size() <= limit

    def test_memory_bounded_across_many_restricts(self, backend):
        """Many specializations (restrict + quantification) keep the memo
        cache bounded, not growing with the number of destinations."""
        limit = 200
        manager = make_manager(num_vars=16, cache_limit=limit, backend=backend)
        f = manager.disjoin(
            manager.apply_and(manager.var(i), manager.var(i + 1)) for i in range(15)
        )
        for round_ in range(100):
            restricted = manager.restrict(f, {round_ % 16: bool(round_ % 2)})
            manager.exists(restricted, [(round_ + 3) % 16, (round_ + 7) % 16])
            assert manager.ite_cache_size() <= limit

    def test_bounded_manager_computes_same_results(self, backend):
        bounded = make_manager(num_vars=10, cache_limit=10, backend=backend)
        unbounded = make_manager(num_vars=10, backend=backend)
        for manager in (bounded, unbounded):
            acc = TRUE
            for i in range(9):
                acc = manager.apply_and(acc, manager.apply_or(manager.var(i), manager.var(i + 1)))
            manager._result = acc  # stash for comparison below
        assert bounded.sat_count(bounded._result, num_vars=10) == unbounded.sat_count(
            unbounded._result, num_vars=10
        )
