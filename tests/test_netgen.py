"""Tests for the configured-network generators (evaluation workloads)."""

import pytest

from repro.abstraction import Bonsai, routable_equivalence_classes
from repro.config import Prefix
from repro.netgen import (
    DATACENTER_PAPER_SCALE,
    WAN_PAPER_SCALE,
    DatacenterParams,
    WanParams,
    datacenter_network,
    fattree_network,
    prefix_for_index,
)
from repro.srp import solve
from repro.config.transfer import build_srp_from_network


class TestBase:
    def test_prefix_allocation_unique(self):
        prefixes = {prefix_for_index(i) for i in range(300)}
        assert len(prefixes) == 300

    def test_prefix_allocation_bounds(self):
        with pytest.raises(ValueError):
            prefix_for_index(-1)
        with pytest.raises(ValueError):
            prefix_for_index(256 * 256)


class TestSyntheticGenerators:
    def test_fattree_network_valid(self, small_fattree):
        assert small_fattree.validate() == []
        assert small_fattree.graph.num_nodes() == 20
        assert len(routable_equivalence_classes(small_fattree)) == 8

    def test_fattree_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            fattree_network(4, policy="bogus")

    def test_fattree_prefer_bottom_has_two_prefs_on_aggregation(self, small_fattree_prefer_bottom):
        prefix = Prefix.parse("10.0.0.0/24")
        srp = build_srp_from_network(small_fattree_prefer_bottom, prefix)
        assert srp.prefs("agg1_0") == (100, 200)
        assert srp.prefs("core0") == (100,)

    def test_ring_and_mesh_networks_valid(self, small_ring, small_mesh):
        assert small_ring.validate() == []
        assert small_mesh.validate() == []
        assert small_ring.graph.num_undirected_edges() == 8
        assert small_mesh.graph.num_undirected_edges() == 15

    def test_fattree_routes_converge(self, small_fattree):
        ec = routable_equivalence_classes(small_fattree)[0]
        srp = build_srp_from_network(small_fattree, ec.prefix)
        solution = solve(srp)
        assert all(solution.labeling[node] is not None for node in small_fattree.graph.nodes)


class TestDatacenter:
    def test_paper_scale_node_count(self):
        assert DATACENTER_PAPER_SCALE.total_devices == 197

    def test_small_datacenter_valid_and_routable(self, small_datacenter):
        assert small_datacenter.validate() == []
        classes = routable_equivalence_classes(small_datacenter)
        assert classes
        srp = build_srp_from_network(small_datacenter, classes[0].prefix)
        solution = solve(srp)
        origin = next(iter(classes[0].origins))
        assert solution.labeling[origin] is not None

    def test_unused_communities_present(self, small_datacenter):
        unused = small_datacenter.unused_communities()
        assert unused  # the cluster tags are attached but never matched

    def test_custom_params(self):
        params = DatacenterParams(clusters=2, spines_per_cluster=2, leaves_per_cluster=3,
                                  core_routers=1, static_leaves_per_cluster=0)
        network = datacenter_network(params)
        assert network.graph.num_nodes() == params.total_devices == 11
        assert network.validate() == []

    def test_role_diversity_between_clusters(self, small_datacenter):
        bonsai = Bonsai(small_datacenter)
        # Spines of different clusters use different export filters, so the
        # network has more than the three topological roles.
        assert bonsai.unique_roles(Prefix.parse("10.0.0.0/24")) >= 3

    def test_compression_shrinks_datacenter(self, small_datacenter):
        bonsai = Bonsai(small_datacenter)
        results = bonsai.compress_all(limit=2)
        summary = bonsai.summarize(results)
        assert summary.mean_abstract_nodes < small_datacenter.graph.num_nodes()
        assert summary.node_ratio > 1.5


class TestWan:
    def test_paper_scale_node_count(self):
        assert WAN_PAPER_SCALE.total_devices == 1086

    def test_small_wan_valid(self, small_wan):
        assert small_wan.validate() == []
        assert small_wan.graph.num_nodes() == WanParams(
            core_routers=2, regions=3, access_per_region=4, static_access_per_region=1
        ).total_devices

    def test_wan_uses_multiple_protocols(self, small_wan):
        has_ospf = any(dev.ospf_links for dev in small_wan.devices.values())
        has_static = any(dev.static_routes for dev in small_wan.devices.values())
        has_ibgp = any(
            session.ibgp
            for dev in small_wan.devices.values()
            for session in dev.bgp_neighbors.values()
        )
        assert has_ospf and has_static and has_ibgp

    def test_wan_routes_converge(self, small_wan):
        classes = routable_equivalence_classes(small_wan)
        region_class = next(ec for ec in classes if next(iter(ec.origins)).startswith("hub"))
        srp = build_srp_from_network(small_wan, region_class.prefix)
        solution = solve(srp)
        # Every access router in some region reaches the hub's aggregate.
        assert solution.labeling["r0a0"] is not None

    def test_compression_shrinks_wan(self, small_wan):
        bonsai = Bonsai(small_wan)
        results = bonsai.compress_all(limit=2)
        summary = bonsai.summarize(results)
        assert summary.node_ratio > 1.3
