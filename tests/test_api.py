"""Tests for the `repro.api` Session facade."""

from __future__ import annotations

import pytest

from repro.api import Session
from repro.netgen.families import build_topology
from repro.srp.solver import COUNTERS
from repro.store import ArtifactStore, StoreError


@pytest.fixture(scope="module")
def ring_session():
    return Session(build_topology("ring", 5))


def _failing_sets(report):
    """``{prefix: {property: (concrete, abstract, mismatched)}}`` for
    timing-free comparison between warm and batch verification runs."""
    out = {}
    for record in report.records:
        out[record.prefix] = {
            verdict.property: (
                tuple(sorted(verdict.concrete_failing)),
                tuple(sorted(verdict.abstract_failing)),
                tuple(sorted(verdict.mismatched)),
            )
            for verdict in record.verdicts
        }
    return out


class TestSessionConstruction:
    def test_needs_network_or_baseline(self):
        with pytest.raises(ValueError, match="needs a network"):
            Session()

    def test_builds_baseline_from_network(self, ring_session):
        assert len(ring_session.classes) == 5
        assert ring_session.fingerprint == ring_session.baseline.fingerprint
        assert not ring_session.rebuilt

    def test_rejects_foreign_baseline(self, ring_session):
        other = build_topology("mesh", 4)
        with pytest.raises(ValueError, match="fingerprints differ"):
            Session(other, baseline=ring_session.baseline)

    def test_class_for(self, ring_session):
        prefix = str(ring_session.classes[0].prefix)
        assert ring_session.class_for(prefix) is not None
        assert ring_session.class_for("203.0.113.0/24") is None


class TestWarmVerify:
    def test_warm_matches_batch_exactly(self, ring_session):
        warm = ring_session.verify()
        assert warm.executor == "warm"
        assert warm.verdicts_agree()
        cold = ring_session.verify(warm=False)
        assert cold.executor != "warm"
        assert _failing_sets(warm) == _failing_sets(cold)
        assert warm.kind == cold.kind == "verification"

    def test_warm_never_resolves_the_concrete_baseline(self, ring_session):
        """The warm path evaluates properties off the stored concrete
        forwarding tables; the only solves are the per-class *abstract*
        networks inside the lifted verdicts (compressed instances -- the
        cheap side of the paper's asymmetry)."""
        COUNTERS.reset()
        ring_session.verify()
        counters = COUNTERS.snapshot()
        assert counters["seeded_solves"] == 0
        assert counters["scratch_solves"] == len(ring_session.classes)

    def test_per_prefix(self, ring_session):
        prefix = str(ring_session.classes[0].prefix)
        report = ring_session.verify(prefix=prefix)
        assert report.num_classes == 1
        assert report.records[0].prefix == prefix
        with pytest.raises(ValueError, match="no destination class"):
            ring_session.verify(prefix="203.0.113.0/24")

    def test_selected_properties(self, ring_session):
        report = ring_session.verify(["reachability"])
        assert report.properties == ["reachability"]

    def test_explicit_waypoints_fall_back_to_batch(self, ring_session):
        node = str(sorted(ring_session.network.graph.nodes, key=str)[0])
        report = ring_session.verify(["waypointing"], waypoints=[node])
        assert report.executor != "warm"

    def test_uncompressed_baseline_falls_back(self):
        network = build_topology("ring", 5)
        session = Session(network, compress=False)
        report = session.verify()
        assert report.executor != "warm"
        assert report.verdicts_agree()


class TestSessionAnalyses:
    def test_failures(self, ring_session):
        report = ring_session.failures(k=1, sample=4, oracle=False, soundness=False)
        assert report.kind == "failures"
        assert report.num_classes == 5

    def test_k_resilience(self, ring_session):
        result = ring_session.k_resilience(
            max_k=1, sample=4, oracle=False, soundness=False
        )
        assert result["property"] == "reachability"
        assert "k=1" in result
        assert "breaking_k" in result

    def test_delta_uses_stored_baseline(self, ring_session):
        from repro.delta import ChangeSet, LocalPrefOverride

        device = sorted(ring_session.network.devices)[0]
        peer = next(iter(ring_session.network.graph.successors(device)))
        script = [
            ChangeSet(
                name="prefer-peer",
                changes=[
                    LocalPrefOverride(
                        device=str(device), peer=str(peer), local_pref=260
                    )
                ],
            )
        ]
        COUNTERS.reset()
        report = ring_session.delta(script, revalidate=False)
        assert report.kind == "delta"
        assert report.baseline_fingerprint == ring_session.fingerprint
        assert COUNTERS.snapshot()["scratch_solves"] == 0
        assert all(record.baseline_from_store for record in report.records)


class TestSessionPersistence:
    def test_save_and_load_round_trip(self, tmp_path, ring_session):
        entry = ring_session.save(tmp_path)
        assert entry.is_dir()
        loaded = Session.load(tmp_path, network=build_topology("ring", 5))
        assert loaded.fingerprint == ring_session.fingerprint
        assert _failing_sets(loaded.verify()) == _failing_sets(ring_session.verify())

    def test_load_by_fingerprint(self, tmp_path, ring_session):
        ring_session.save(tmp_path)
        loaded = Session.load(tmp_path, fingerprint=ring_session.fingerprint)
        assert loaded.fingerprint == ring_session.fingerprint

    def test_load_missing_is_strict(self, tmp_path):
        with pytest.raises(StoreError):
            Session.load(tmp_path, network=build_topology("ring", 5))
        with pytest.raises(ValueError, match="needs a network or a fingerprint"):
            Session.load(tmp_path)

    def test_save_needs_a_root(self, ring_session):
        with pytest.raises(ValueError, match="no store root"):
            Session(baseline=ring_session.baseline).save()

    def test_constructor_load_or_build(self, tmp_path):
        network = build_topology("ring", 5)
        first = Session(network, store=tmp_path)
        assert first.rebuilt  # nothing stored yet: built and saved
        assert ArtifactStore(tmp_path).has(first.fingerprint)
        second = Session(build_topology("ring", 5), store=tmp_path)
        assert not second.rebuilt  # warm load, no re-solve
        assert second.fingerprint == first.fingerprint


class TestReportEnvelope:
    def test_load_report_round_trips_every_kind(self, ring_session, tmp_path):
        from repro.reporting import load_report, registered_report_kinds

        assert set(registered_report_kinds()) >= {
            "compression",
            "verification",
            "failures",
            "delta",
        }
        verification = ring_session.verify()
        loaded = load_report(verification.to_json())
        assert type(loaded) is type(verification)
        assert loaded.kind == "verification"
        data = verification.to_dict()
        assert data["schema_version"] == 2
        assert data["kind"] == "verification"
        assert data["ok"] is True
        assert data["generated_by"].startswith("repro-bonsai")

    def test_load_report_rejects_unknown_kind(self):
        from repro.reporting import load_report

        with pytest.raises(ValueError, match="unknown report kind"):
            load_report({"kind": "bogus"})
        with pytest.raises(ValueError, match="no 'kind'"):
            load_report({"records": []})

    def test_compression_report_envelope(self):
        from repro.pipeline.core import CompressionPipeline
        from repro.reporting import load_report

        report = CompressionPipeline(
            build_topology("ring", 5), executor="serial"
        ).run().report
        loaded = load_report(report.to_dict())
        assert loaded.kind == "compression"
        assert loaded.num_classes == report.num_classes
