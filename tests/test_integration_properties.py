"""Integration tests: properties preserved across compression (§4.4).

For each property the paper lists as preserved by CP-equivalence, these
tests evaluate the property on the concrete network and on the compressed
network Bonsai emits, and assert the answers agree.
"""

import pytest

from repro.abstraction import Bonsai, routable_equivalence_classes
from repro.analysis import (
    check_black_hole,
    check_multipath_consistency,
    check_reachability,
    check_routing_loop,
    check_waypointing,
    compute_forwarding_table,
    path_lengths,
)
from repro.config import Prefix, parse_network

#: A small network with a deliberately broken ACL so that a black hole
#: exists and must survive compression.
BROKEN_NETWORK = """
device t1
  network 10.0.1.0/24
  bgp-neighbor s1 export OUT
  bgp-neighbor s2 export OUT
  route-map OUT 10 permit

device t2
  network 10.0.2.0/24
  bgp-neighbor s1 export OUT
  bgp-neighbor s2 export OUT
  route-map OUT 10 permit

device s1
  bgp-neighbor t1 import IN
  bgp-neighbor t2 import IN
  bgp-neighbor x import IN
  route-map IN 10 permit

device s2
  bgp-neighbor t1 import IN
  bgp-neighbor t2 import IN
  bgp-neighbor x import IN
  route-map IN 10 permit
  acl OOPS deny 10.0.1.0/24 default permit
  interface-acl t1 OOPS

device x
  bgp-neighbor s1 import IN export OUT
  bgp-neighbor s2 import IN export OUT
  route-map IN 10 permit
  route-map OUT 10 permit

link t1 s1
link t1 s2
link t2 s1
link t2 s2
link x s1
link x s2
"""


def compress_and_tables(network, ec):
    """Forwarding tables of the concrete network and its compression."""
    bonsai = Bonsai(network)
    result = bonsai.compress(ec, build_network=True)
    concrete_table = compute_forwarding_table(network, ec)
    abstract_network = result.abstract_network
    abstract_ec = next(
        abstract_ec
        for abstract_ec in routable_equivalence_classes(abstract_network)
        if abstract_ec.prefix.overlaps(ec.prefix)
    )
    abstract_table = compute_forwarding_table(abstract_network, abstract_ec)
    return result, concrete_table, abstract_table


class TestFattreePreservation:
    @pytest.fixture
    def setup(self, small_fattree):
        ec = routable_equivalence_classes(small_fattree)[0]
        return compress_and_tables(small_fattree, ec)

    def test_reachability_preserved(self, setup, small_fattree):
        result, concrete, abstract = setup
        for node in small_fattree.graph.nodes:
            mapped = result.abstraction.f(node)
            for copy in result.abstraction.copies_of(mapped):
                assert (
                    check_reachability(concrete, node).holds
                    == check_reachability(abstract, copy).holds
                )

    def test_path_length_preserved(self, setup, small_fattree):
        result, concrete, abstract = setup
        for node in ("edge1_0", "agg2_1", "core0"):
            mapped = result.abstraction.f(node)
            assert path_lengths(concrete, node) == path_lengths(abstract, mapped)

    def test_no_loops_or_blackholes_on_either_side(self, setup):
        _, concrete, abstract = setup
        assert not check_routing_loop(concrete).holds
        assert not check_routing_loop(abstract).holds
        assert not check_black_hole(concrete, "core0").holds
        assert all(
            not check_black_hole(abstract, node).holds for node in abstract.next_hops
        )

    def test_waypointing_preserved(self, setup, small_fattree):
        result, concrete, abstract = setup
        aggs = [n for n in small_fattree.graph.nodes if str(n).startswith("agg")]
        abstract_aggs = {result.abstraction.f(n) for n in aggs}
        assert check_waypointing(concrete, "edge1_0", aggs).holds == check_waypointing(
            abstract, result.abstraction.f("edge1_0"), abstract_aggs
        ).holds


class TestBlackHolePreservation:
    def test_acl_black_hole_survives_compression(self):
        network = parse_network(BROKEN_NETWORK)
        ec = next(
            ec
            for ec in routable_equivalence_classes(network)
            if ec.prefix == Prefix.parse("10.0.1.0/24")
        )
        result, concrete, abstract = compress_and_tables(network, ec)
        concrete_multipath = check_multipath_consistency(concrete, "x")
        abstract_source = result.abstraction.f("x")
        abstract_multipath = check_multipath_consistency(abstract, abstract_source)
        # Traffic from x is delivered via s1 but dropped via s2's ACL: the
        # inconsistency must be visible in the compressed network too.
        assert concrete_multipath.holds == abstract_multipath.holds

    def test_healthy_destination_consistent_on_both(self):
        network = parse_network(BROKEN_NETWORK)
        ec = next(
            ec
            for ec in routable_equivalence_classes(network)
            if ec.prefix == Prefix.parse("10.0.2.0/24")
        )
        result, concrete, abstract = compress_and_tables(network, ec)
        assert check_reachability(concrete, "x").holds
        assert check_reachability(abstract, result.abstraction.f("x")).holds
        assert check_multipath_consistency(concrete, "x").holds
        assert check_multipath_consistency(abstract, result.abstraction.f("x")).holds


class TestCompressionCounts:
    def test_broken_acl_prevents_s_routers_from_merging(self):
        """s1 and s2 differ only in the ACL, so for the affected destination
        they must not share an abstract node, while for the healthy
        destination they may."""
        network = parse_network(BROKEN_NETWORK)
        bonsai = Bonsai(network)
        affected = bonsai.compress_prefix(Prefix.parse("10.0.1.0/24"))
        healthy = bonsai.compress_prefix(Prefix.parse("10.0.2.0/24"))
        assert affected.abstraction.f("s1") != affected.abstraction.f("s2")
        assert healthy.abstraction.f("s1") == healthy.abstraction.f("s2")
        assert healthy.abstract_nodes < affected.abstract_nodes
