"""Unit tests for route maps, prefix lists, community lists and ACLs."""

import pytest

from repro.config import (
    Acl,
    AclLine,
    CommunityList,
    PERMIT_ALL_ACL,
    Prefix,
    PrefixList,
    PrefixListEntry,
    RouteMap,
    RouteMapClause,
)
from repro.config.routemap import DENY_ALL, PERMIT_ALL
from repro.routing import BgpAttribute

DEST = Prefix.parse("10.0.1.0/24")


class TestCommunityList:
    def test_matches_any_listed_community(self):
        clist = CommunityList(name="dept", communities=("65001:1", "65001:2"))
        assert clist.matches(BgpAttribute(communities=frozenset({"65001:2"})))
        assert not clist.matches(BgpAttribute(communities=frozenset({"65001:3"})))


class TestPrefixList:
    def test_exact_match_by_default(self):
        plist = PrefixList(
            name="own", entries=(PrefixListEntry(prefix=Prefix.parse("10.0.1.0/24")),)
        )
        assert plist.permits(DEST)
        assert not plist.permits(Prefix.parse("10.0.1.0/25"))

    def test_le_ge_bounds(self):
        entry = PrefixListEntry(prefix=Prefix.parse("10.0.0.0/8"), ge=16, le=24)
        plist = PrefixList(name="range", entries=(entry,))
        assert plist.permits(Prefix.parse("10.1.0.0/16"))
        assert plist.permits(DEST)
        assert not plist.permits(Prefix.parse("10.0.0.0/8"))
        assert not plist.permits(Prefix.parse("10.0.1.128/25"))

    def test_first_match_wins_and_implicit_deny(self):
        plist = PrefixList(
            name="mixed",
            entries=(
                PrefixListEntry(prefix=Prefix.parse("10.0.1.0/24"), action="deny"),
                PrefixListEntry(prefix=Prefix.parse("10.0.0.0/8"), action="permit", ge=8, le=32),
            ),
        )
        assert not plist.permits(DEST)
        assert plist.permits(Prefix.parse("10.0.2.0/24"))
        assert not plist.permits(Prefix.parse("172.16.0.0/16"))

    def test_invalid_action_rejected(self):
        with pytest.raises(ValueError):
            PrefixListEntry(prefix=DEST, action="allow")


class TestRouteMap:
    def figure10_route_map(self):
        """The route map of Figure 10."""
        return (
            RouteMap(
                name="M",
                clauses=(
                    RouteMapClause(
                        sequence=10,
                        action="permit",
                        match_community_lists=("dept",),
                        set_communities=("65001:3",),
                        set_local_pref=350,
                    ),
                ),
            ),
            {"dept": CommunityList(name="dept", communities=("65001:1", "65001:2"))},
        )

    def test_figure10_semantics(self):
        route_map, clists = self.figure10_route_map()
        tagged = BgpAttribute(communities=frozenset({"65001:1"}))
        result = route_map.evaluate(tagged, DEST, clists, {}, asn="r1")
        assert result.local_pref == 350
        assert result.has_community("65001:3")
        untagged = BgpAttribute()
        assert route_map.evaluate(untagged, DEST, clists, {}, asn="r1") is None

    def test_clauses_sorted_by_sequence(self):
        route_map = RouteMap(
            name="M",
            clauses=(
                RouteMapClause(sequence=20, action="deny"),
                RouteMapClause(sequence=10, action="permit"),
            ),
        )
        assert [clause.sequence for clause in route_map.clauses] == [10, 20]
        assert route_map.evaluate(BgpAttribute(), DEST, {}, {}, asn="r1") is not None

    def test_implicit_deny_when_no_clause_matches(self):
        route_map = RouteMap(
            name="M",
            clauses=(
                RouteMapClause(
                    sequence=10, action="permit", match_community_lists=("missing",)
                ),
            ),
        )
        assert route_map.evaluate(BgpAttribute(), DEST, {}, {}, asn="r1") is None

    def test_prefix_list_match(self):
        route_map = RouteMap(
            name="M",
            clauses=(
                RouteMapClause(
                    sequence=10, action="permit", match_prefix_lists=("own",)
                ),
            ),
        )
        plists = {
            "own": PrefixList(
                name="own", entries=(PrefixListEntry(prefix=DEST),)
            )
        }
        assert route_map.evaluate(BgpAttribute(), DEST, {}, plists, asn="r1") is not None
        assert (
            route_map.evaluate(BgpAttribute(), Prefix.parse("10.0.2.0/24"), {}, plists, asn="r1")
            is None
        )

    def test_delete_community_and_prepend(self):
        route_map = RouteMap(
            name="M",
            clauses=(
                RouteMapClause(
                    sequence=10,
                    action="permit",
                    delete_communities=("old",),
                    prepend_as=2,
                ),
            ),
        )
        attr = BgpAttribute(communities=frozenset({"old", "keep"}))
        result = route_map.evaluate(attr, DEST, {}, {}, asn="r9")
        assert result.communities == frozenset({"keep"})
        assert result.as_path == ("r9", "r9")

    def test_local_pref_values_and_references(self):
        route_map, clists = self.figure10_route_map()
        assert route_map.local_pref_values() == frozenset({350})
        assert route_map.referenced_community_lists() == frozenset({"dept"})
        assert route_map.matched_communities(clists) == frozenset({"65001:1", "65001:2"})
        assert route_map.set_community_values() == frozenset({"65001:3"})

    def test_permit_all_and_deny_all(self):
        assert PERMIT_ALL.evaluate(BgpAttribute(), DEST, {}, {}, asn="x") is not None
        assert DENY_ALL.evaluate(BgpAttribute(), DEST, {}, {}, asn="x") is None

    def test_invalid_action_rejected(self):
        with pytest.raises(ValueError):
            RouteMapClause(sequence=10, action="accept")
        with pytest.raises(ValueError):
            RouteMapClause(sequence=10, prepend_as=-1)


class TestAcl:
    def test_first_match_wins(self):
        acl = Acl(
            name="A",
            lines=(
                AclLine(action="deny", prefix=Prefix.parse("10.0.0.0/8")),
                AclLine(action="permit", prefix=Prefix.parse("0.0.0.0/0")),
            ),
            default_action="permit",
        )
        assert not acl.permits(DEST)
        assert acl.permits(Prefix.parse("192.168.0.0/16"))

    def test_implicit_deny_default(self):
        acl = Acl(name="A", lines=())
        assert not acl.permits(DEST)
        assert PERMIT_ALL_ACL.permits(DEST)

    def test_invalid_actions_rejected(self):
        with pytest.raises(ValueError):
            AclLine(action="drop", prefix=DEST)
        with pytest.raises(ValueError):
            Acl(name="A", default_action="drop")
