"""Tests for the structured event stream (repro.obs.events): the bus,
the JSONL sink and its paranoid reader, the bounded EventLog, the live
progress meter, pipeline emission, cross-executor parity of the
per-class completion stream, and the store's refusal events."""

from __future__ import annotations

import io
import json
import threading
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import events, metrics, trace
from repro.obs.jsonl import ObsFileError
from repro.pipeline.core import CompressionPipeline
from repro.pipeline.encoded import EncodedNetwork


@pytest.fixture(autouse=True)
def clean_obs_state():
    """Each test starts with an empty bus, registry, and no trace."""
    events.reset()
    metrics.reset()
    metrics.enable()
    yield
    if trace.enabled():
        trace.end()
    events.reset()
    metrics.reset()
    metrics.enable()


def _collect():
    """A list-subscriber; returns (list, unsubscribe)."""
    seen = []
    events.subscribe(seen.append)
    return seen


# ----------------------------------------------------------------------
# Bus
# ----------------------------------------------------------------------
class TestBus:
    def test_emit_without_subscribers_is_noop(self):
        assert not events.enabled()
        events.emit("x.y", a=1)  # must not raise, must not advance seq
        seen = _collect()
        events.emit("x.z")
        assert seen[0]["seq"] == 1

    def test_events_carry_seq_ts_type_and_fields(self):
        seen = _collect()
        events.emit("class.completed", cls="10.0.0.0/24", index=3)
        events.emit("sweep.end", task="compress")
        assert [e["seq"] for e in seen] == [1, 2]
        assert seen[0]["type"] == "class.completed"
        assert seen[0]["cls"] == "10.0.0.0/24" and seen[0]["index"] == 3
        assert isinstance(seen[0]["ts"], float)
        assert seen[1]["type"] == "sweep.end"

    def test_unsubscribe_stops_delivery(self):
        seen = []
        events.subscribe(seen.append)
        events.emit("a.b")
        events.unsubscribe(seen.append)
        events.emit("c.d")
        assert len(seen) == 1
        assert not events.enabled()

    def test_all_subscribers_observe_the_same_stream(self):
        first, second = _collect(), _collect()
        for i in range(5):
            events.emit("tick", i=i)
        assert first == second


# ----------------------------------------------------------------------
# JSONL sink + paranoid reader
# ----------------------------------------------------------------------
class TestEventFile:
    def test_writer_roundtrip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with events.EventWriter(str(path), context={"command": "test"}):
            events.emit("sweep.start", task="compress", classes=2)
            events.emit("class.completed", cls="a", index=0)
            events.emit("sweep.end", task="compress")
        header, records = events.read_jsonl(str(path))
        assert header["kind"] == "events"
        assert header["schema_version"] == events.EVENT_SCHEMA_VERSION
        assert header["command"] == "test"
        assert [r["type"] for r in records] == [
            "sweep.start", "class.completed", "sweep.end"
        ]
        assert [r["seq"] for r in records] == [1, 2, 3]

    def test_close_is_idempotent_and_stops_writing(self, tmp_path):
        path = tmp_path / "events.jsonl"
        writer = events.EventWriter(str(path))
        events.emit("one")
        writer.close()
        writer.close()
        events.emit("two")  # no subscriber anymore
        _, records = events.read_jsonl(str(path))
        assert [r["type"] for r in records] == ["one"]

    def _write_valid(self, path):
        with events.EventWriter(str(path)):
            events.emit("a")
            events.emit("b")

    def test_reader_refuses_truncated_tail(self, tmp_path):
        path = tmp_path / "events.jsonl"
        self._write_valid(path)
        path.write_text(path.read_text().rstrip("\n"))
        with pytest.raises(ObsFileError) as err:
            events.read_jsonl(str(path))
        assert err.value.reason == "truncated"

    def test_reader_refuses_corrupt_json_mid_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        self._write_valid(path)
        lines = path.read_text().splitlines()
        lines[1] = lines[1][: len(lines[1]) // 2]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ObsFileError) as err:
            events.read_jsonl(str(path))
        assert err.value.reason == "corrupt_json"

    def test_reader_refuses_wrong_schema_version(self, tmp_path):
        path = tmp_path / "events.jsonl"
        self._write_valid(path)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["schema_version"] = events.EVENT_SCHEMA_VERSION + 1
        lines[0] = json.dumps(header)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ObsFileError) as err:
            events.read_jsonl(str(path))
        assert err.value.reason == "schema_mismatch"

    def test_reader_refuses_wrong_kind_and_empty(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(json.dumps({"kind": "trace", "schema_version": 1}) + "\n")
        with pytest.raises(ObsFileError) as err:
            events.read_jsonl(str(path))
        assert err.value.reason == "wrong_kind"
        path.write_text("")
        with pytest.raises(ObsFileError) as err:
            events.read_jsonl(str(path))
        assert err.value.reason == "empty"

    def test_reader_refuses_record_missing_fields(self, tmp_path):
        path = tmp_path / "events.jsonl"
        self._write_valid(path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps({"not": "an event"}) + "\n")
        with pytest.raises(ObsFileError) as err:
            events.read_jsonl(str(path))
        assert err.value.reason == "missing_field"


# ----------------------------------------------------------------------
# Bounded EventLog (serve's /events backing store)
# ----------------------------------------------------------------------
class TestEventLog:
    def test_since_returns_events_after_cursor(self):
        log = events.EventLog(capacity=16)
        for i in range(4):
            events.emit("tick", i=i)
        page = log.since(cursor=2)
        assert [e["seq"] for e in page["events"]] == [3, 4]
        assert page["cursor"] == 4 and page["dropped"] == 0
        assert log.since(cursor=4)["events"] == []
        log.close()

    def test_ring_overflow_drops_oldest_and_counts(self):
        log = events.EventLog(capacity=3)
        for i in range(7):
            events.emit("tick", i=i)
        page = log.since(cursor=0)
        assert [e["seq"] for e in page["events"]] == [5, 6, 7]
        assert page["dropped"] == 4
        log.close()

    def test_long_poll_wakes_on_new_event(self):
        log = events.EventLog(capacity=8)

        def later():
            time.sleep(0.05)
            events.emit("late.arrival")

        thread = threading.Thread(target=later)
        thread.start()
        start = time.monotonic()
        page = log.since(cursor=0, timeout=5.0)
        elapsed = time.monotonic() - start
        thread.join()
        assert [e["type"] for e in page["events"]] == ["late.arrival"]
        assert elapsed < 4.0  # woke on notify, not on timeout
        log.close()

    def test_long_poll_times_out_empty(self):
        log = events.EventLog(capacity=8)
        page = log.since(cursor=0, timeout=0.05)
        assert page["events"] == [] and page["cursor"] == 0
        log.close()

    def test_capacity_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS_EVENT_BUFFER", "7")
        log = events.EventLog()
        assert log.capacity == 7
        log.close()
        monkeypatch.setenv("REPRO_OBS_EVENT_BUFFER", "junk")
        log = events.EventLog()
        assert log.capacity == 1024
        log.close()


# ----------------------------------------------------------------------
# Progress meter
# ----------------------------------------------------------------------
class TestProgressMeter:
    def test_cost_weighted_progress_and_eta(self):
        stream = io.StringIO()
        meter = events.ProgressMeter(stream=stream, min_interval=0.0)
        events.emit(
            "sweep.start", task="compress", classes=2,
            costs={"a": 3.0, "b": 1.0},
        )
        events.emit("class.completed", cls="a", index=0, seconds=0.1)
        events.emit("class.completed", cls="b", index=1, seconds=0.1)
        events.emit("sweep.end", task="compress")
        meter.close()
        out = stream.getvalue()
        # Completing the 3.0-cost class alone advances the bar to 75%.
        assert " 75.0%" in out
        assert "2/2 classes" in out and "100.0%" in out
        assert out.endswith("\n")

    def test_unknown_costs_fall_back_to_counts(self):
        stream = io.StringIO()
        meter = events.ProgressMeter(stream=stream, min_interval=0.0)
        events.emit("sweep.start", task="verify", classes=4, costs={})
        events.emit("class.completed", cls="x", index=0, seconds=0.0)
        meter.close()
        assert " 25.0%" in stream.getvalue()


# ----------------------------------------------------------------------
# Pipeline emission + executor parity
# ----------------------------------------------------------------------
def _completion_stream(**kwargs):
    """Run a compression sweep and return its coordinator event stream."""
    seen = []
    events.subscribe(seen.append)
    try:
        CompressionPipeline(**kwargs).run()
    finally:
        events.unsubscribe(seen.append)
    return seen


class TestPipelineEvents:
    def test_sweep_brackets_and_completions(self, small_fattree):
        artifact = EncodedNetwork.build(small_fattree)
        seen = _completion_stream(artifact=artifact, executor="serial")
        types = [e["type"] for e in seen]
        assert types[0] == "sweep.start" and types[-1] == "sweep.end"
        start = seen[0]
        assert start["classes"] == len(artifact.classes)
        assert set(start["costs"]) == {str(ec.prefix) for ec in artifact.classes}
        completed = [e for e in seen if e["type"] == "class.completed"]
        assert len(completed) == len(artifact.classes)
        assert sorted(e["index"] for e in completed) == list(
            range(len(artifact.classes))
        )
        end = seen[-1]
        assert end["classes"] == len(artifact.classes)
        assert end["seconds"] >= 0

    def test_completion_parity_across_executors(self, small_fattree):
        artifact = EncodedNetwork.build(small_fattree)

        def completions(**kwargs):
            stream = _completion_stream(artifact=artifact, **kwargs)
            return sorted(
                (e["index"], e["cls"])
                for e in stream
                if e["type"] == "class.completed"
            )

        serial = completions(executor="serial")
        thread = completions(executor="thread", workers=3)
        static = completions(executor="process", workers=2, scheduler="static")
        stealing = completions(executor="process", workers=2, scheduler="stealing")
        assert serial == thread == static == stealing
        assert len(serial) == len(artifact.classes)

    @given(st.integers(1, 6))
    @settings(max_examples=5, deadline=None)
    def test_thread_parity_any_worker_count(self, workers):
        # Built per example (hypothesis forbids fixture reuse across examples).
        from repro.netgen.families import build_topology

        events.reset()
        network = build_topology("ring", 4)
        artifact = EncodedNetwork.build(network)

        def completions(**kwargs):
            stream = _completion_stream(artifact=artifact, **kwargs)
            return sorted(
                (e["index"], e["cls"])
                for e in stream
                if e["type"] == "class.completed"
            )

        assert completions(executor="serial") == completions(
            executor="thread", workers=workers
        )

    def test_stealing_emits_only_known_event_types(self, small_fattree):
        artifact = EncodedNetwork.build(small_fattree)
        seen = _completion_stream(
            artifact=artifact, executor="process", workers=4, scheduler="stealing"
        )
        known = {
            "sweep.start", "sweep.end", "class.completed",
            "class.split", "units.stolen", "spill.open", "spill.close",
        }
        assert {e["type"] for e in seen} <= known


# ----------------------------------------------------------------------
# Store refusal observability (counter + event + surfaced counts)
# ----------------------------------------------------------------------
class TestStoreRefusalEvents:
    def test_checksum_refusal_emits_counter_and_event(self, tmp_path, small_fattree):
        from repro.store import ArtifactStore, BaselineArtifact
        from repro.store.store import StoreError, refusal_counts

        store = ArtifactStore(tmp_path)
        artifact = BaselineArtifact.build(small_fattree)
        entry = store.save(artifact)
        payload = entry / "payload.pkl"
        payload.write_bytes(payload.read_bytes()[:-10])

        seen = _collect()
        with pytest.raises(StoreError) as err:
            store.load(artifact.fingerprint)
        assert err.value.reason == "checksum_mismatch"
        refusals = [e for e in seen if e["type"] == "store.refused"]
        assert len(refusals) == 1
        assert refusals[0]["reason"] == "checksum_mismatch"
        assert refusals[0]["fingerprint"] == artifact.fingerprint[:12]
        assert refusal_counts() == {"checksum_mismatch": 1}
        collected = metrics.collect()["counters"]
        assert collected["store.refused.checksum_mismatch"] == 1

    def test_missing_refusal_reason(self, tmp_path):
        from repro.store import ArtifactStore
        from repro.store.store import StoreError, refusal_counts

        with pytest.raises(StoreError) as err:
            ArtifactStore(tmp_path).load("0" * 64)
        assert err.value.reason == "missing"
        assert refusal_counts().get("missing") == 1

    def test_successful_load_emits_store_loaded(self, tmp_path, small_fattree):
        from repro.store import ArtifactStore, BaselineArtifact

        store = ArtifactStore(tmp_path)
        artifact = BaselineArtifact.build(small_fattree)
        store.save(artifact)
        seen = _collect()
        store.load(artifact.fingerprint)
        assert [e["type"] for e in seen] == ["store.loaded"]
