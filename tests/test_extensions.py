"""Tests for the practical extensions (§6) and robustness of the algorithm.

Covers iBGP compressibility, export-policy-only differences (which must
still force a split to preserve transfer-equivalence), role counting
options, and compression of the policy-rich fat-tree through the full
config pipeline.
"""


from repro.abstraction import Bonsai, check_transfer_equivalence, compute_abstraction
from repro.abstraction.equivalence import check_cp_equivalence
from repro.config import Prefix, parse_network
from repro.config.transfer import build_srp_from_network
from repro.netgen import fattree_network
from repro.routing import SetLocalPref, build_bgp_srp
from repro.srp import solve
from repro.topology import Graph

IBGP_NETWORK = """
# Two core routers in one AS (iBGP between them), each with an eBGP customer.
device core1
  asn 65000
  bgp-neighbor core2 import IN export OUT session ibgp
  bgp-neighbor cust1 import IN export OUT
  route-map IN 10 permit
  route-map OUT 10 permit

device core2
  asn 65000
  bgp-neighbor core1 import IN export OUT session ibgp
  bgp-neighbor cust2 import IN export OUT
  route-map IN 10 permit
  route-map OUT 10 permit

device cust1
  network 10.0.1.0/24
  bgp-neighbor core1 import IN export OUT
  route-map IN 10 permit
  route-map OUT 10 permit

device cust2
  bgp-neighbor core2 import IN export OUT
  route-map IN 10 permit
  route-map OUT 10 permit

link core1 core2
link core1 cust1
link core2 cust2
"""

EXPORT_DIFFERENCE = """
# Two middle routers whose *import* behaviour is identical but whose export
# policies towards the top router differ; they must not share an abstract
# node for the destination below.
device top
  bgp-neighbor mid1 import IN
  bgp-neighbor mid2 import IN
  route-map IN 10 permit

device mid1
  bgp-neighbor top export PLAIN
  bgp-neighbor bottom import IN
  route-map PLAIN 10 permit
  route-map IN 10 permit

device mid2
  bgp-neighbor top export PREPEND
  bgp-neighbor bottom import IN
  route-map PREPEND 10 permit
    set as-path-prepend 3
  route-map IN 10 permit

device bottom
  network 10.0.1.0/24
  bgp-neighbor mid1 export OUT
  bgp-neighbor mid2 export OUT
  route-map OUT 10 permit

link top mid1
link top mid2
link mid1 bottom
link mid2 bottom
"""


class TestIbgp:
    def test_ibgp_session_does_not_prepend_or_loop_check(self):
        network = parse_network(IBGP_NETWORK)
        srp = build_srp_from_network(network, Prefix.parse("10.0.1.0/24"))
        solution = solve(srp)
        # core1 learns from cust1 with one AS hop; core2 learns over iBGP
        # with the same AS-path length (no prepend on the iBGP hop).
        assert solution.labeling["core1"].bgp.as_path == ("cust1",)
        assert solution.labeling["core2"].bgp.as_path == ("cust1",)
        assert solution.labeling["cust2"].bgp is not None

    def test_ibgp_network_is_compressible(self):
        network = parse_network(IBGP_NETWORK)
        bonsai = Bonsai(network)
        result = bonsai.compress_prefix(Prefix.parse("10.0.1.0/24"))
        # Nothing forces the two cores apart except topology distance from
        # the destination, so compression can do no worse than the
        # concrete network.
        assert result.abstract_nodes <= network.graph.num_nodes()


class TestExportPolicyDifferences:
    def test_export_only_difference_forces_split(self):
        network = parse_network(EXPORT_DIFFERENCE)
        bonsai = Bonsai(network)
        result = bonsai.compress_prefix(Prefix.parse("10.0.1.0/24"))
        assert result.abstraction.f("mid1") != result.abstraction.f("mid2")
        report = check_transfer_equivalence(
            result.concrete_srp,
            result.abstraction,
            policy_keys=bonsai.policy_keys(Prefix.parse("10.0.1.0/24")),
        )
        assert report.holds

    def test_export_only_difference_in_protocol_srp(self):
        """Same property at the SRP level, with direct BGP policies."""
        graph = Graph()
        for mid in ("m1", "m2"):
            graph.add_undirected_edge("top", mid)
            graph.add_undirected_edge(mid, "d")
        exports = {("top", "m2"): SetLocalPref(50)}
        srp = build_bgp_srp(graph, "d", export_policies=exports)
        result = compute_abstraction(srp)
        assert result.abstraction.f("m1") != result.abstraction.f("m2")


class TestRoleCounting:
    def test_generic_roles_see_unused_tags_only_when_requested(self, small_datacenter):
        bonsai = Bonsai(small_datacenter)
        raw = bonsai.unique_roles(None, include_unused_communities=True)
        ignored = bonsai.unique_roles(None)
        assert raw > ignored
        assert bonsai.unique_roles(None, ignore_static_routes=True) <= ignored

    def test_syntactic_role_counting_path(self, small_fattree):
        bonsai = Bonsai(small_fattree, use_bdds=False)
        assert bonsai.unique_roles(Prefix.parse("10.0.0.0/24")) >= 1


class TestPolicyRichFattreeEndToEnd:
    def test_prefer_bottom_compression_is_cp_equivalent(self, small_fattree_prefer_bottom):
        bonsai = Bonsai(small_fattree_prefer_bottom)
        ec = bonsai.equivalence_classes()[0]
        result = bonsai.compress(ec, build_network=True)
        report = check_cp_equivalence(
            result.concrete_srp, result.abstraction, abstract_srp=result.abstract_srp()
        )
        assert report.cp_equivalent, report.violations

    def test_prefer_bottom_abstract_network_converges(self, small_fattree_prefer_bottom):
        bonsai = Bonsai(small_fattree_prefer_bottom)
        ec = bonsai.equivalence_classes()[0]
        result = bonsai.compress(ec, build_network=True)
        solution = solve(result.abstract_srp())
        assert solution.is_stable()


class TestLargerPaperScaleSmoke:
    """Cheap smoke checks that the paper-scale generators stay consistent."""

    def test_fattree_k12_first_class(self):
        network = fattree_network(12)
        bonsai = Bonsai(network)
        result = bonsai.compress(bonsai.equivalence_classes()[0])
        assert result.abstract_nodes == 6
        assert result.abstract_edges == 5

    def test_fattree_prefer_bottom_k6_is_larger_but_bounded(self):
        network = fattree_network(6, policy="prefer_bottom")
        bonsai = Bonsai(network)
        result = bonsai.compress(bonsai.equivalence_classes()[0])
        assert 6 < result.abstract_nodes < network.graph.num_nodes()
