"""End-to-end reproductions of the paper's worked examples (Figures 1-9, 13).

Each test builds the exact network a figure describes, runs the relevant
part of the pipeline, and asserts the outcome the paper reports.
"""

import pytest

from repro.abstraction import (
    check_bgp_effective,
    check_cp_equivalence,
    compute_abstraction,
)
from repro.routing import (
    AddCommunity,
    BgpAttribute,
    RipAttribute,
    SetLocalPref,
    build_bgp_srp,
    build_static_srp,
)
from repro.srp import enumerate_solutions, solve
from repro.topology import Graph


class TestFigure1:
    """The RIP example: a - {b1, b2} - d compresses to â - b̂ - d̂."""

    def test_solution_labels(self, figure1_srp):
        solution = solve(figure1_srp)
        assert solution.labeling["d"] == RipAttribute(0)
        assert solution.labeling["b1"] == RipAttribute(1)
        assert solution.labeling["b2"] == RipAttribute(1)
        assert solution.labeling["a"] == RipAttribute(2)

    def test_abstraction_matches_figure(self, figure1_srp):
        result = compute_abstraction(figure1_srp)
        assert result.num_abstract_nodes == 3
        groups = {frozenset(group) for group in result.abstraction.groups()}
        assert groups == {
            frozenset({"a"}),
            frozenset({"b1", "b2"}),
            frozenset({"d"}),
        }

    def test_label_and_fwd_equivalence(self, figure1_srp):
        result = compute_abstraction(figure1_srp)
        report = check_cp_equivalence(figure1_srp, result.abstraction, strict_labels=True)
        assert report.cp_equivalent


class TestFigure2And3:
    """The BGP loop-prevention gadget and its refinement (Figures 2, 3, 9)."""

    def test_one_router_forced_uphill(self, figure2_srp):
        solution = solve(figure2_srp)
        up = [b for b in ("b1", "b2", "b3") if solution.next_hops(b) == {"a"}]
        down = [b for b in ("b1", "b2", "b3") if solution.next_hops(b) == {"d"}]
        assert len(down) == 1 and len(up) == 2

    def test_three_stable_solutions_exist(self, figure2_srp):
        assert len(enumerate_solutions(figure2_srp)) == 3

    def test_final_abstraction_has_4_nodes_4_edges(self, figure2_srp):
        result = compute_abstraction(figure2_srp)
        assert result.num_abstract_nodes == 4
        assert result.num_abstract_edges == 4

    def test_naive_3_node_abstraction_is_unsound(self, figure2_srp):
        naive = compute_abstraction(figure2_srp, bgp_case_split=False)
        assert naive.num_abstract_nodes == 3
        assert not check_cp_equivalence(figure2_srp, naive.abstraction).cp_equivalent

    def test_sound_abstraction_is_cp_equivalent(self, figure2_srp):
        result = compute_abstraction(figure2_srp)
        assert check_bgp_effective(figure2_srp, result.abstraction).is_effective
        assert check_cp_equivalence(figure2_srp, result.abstraction).cp_equivalent


class TestFigure5:
    """BGP with communities: a tags routes, b2 prefers tagged routes."""

    @pytest.fixture
    def figure5_srp(self):
        # Topology: d - b1 - a - b2 - d.  Router a adds tag 1 on exports to
        # b2; b2 raises the local preference of tagged routes, so it routes
        # to d the long way around through a.
        g = Graph()
        g.add_undirected_edge("d", "b1")
        g.add_undirected_edge("b1", "a")
        g.add_undirected_edge("a", "b2")
        g.add_undirected_edge("b2", "d")
        exports = {("b2", "a"): AddCommunity("1")}
        imports = {("b2", "a"): SetLocalPref(200, frozenset({"1"}))}
        return build_bgp_srp(g, "d", import_policies=imports, export_policies=exports)

    def test_b2_prefers_route_through_a(self, figure5_srp):
        solution = solve(figure5_srp)
        label = solution.labeling["b2"]
        assert label.local_pref == 200
        assert label.has_community("1")
        assert label.as_path == ("a", "b1", "d")
        assert solution.next_hops("b2") == {"a"}

    def test_labels_match_figure(self, figure5_srp):
        solution = solve(figure5_srp)
        assert solution.labeling["d"] == BgpAttribute()
        assert solution.labeling["b1"].as_path == ("d",)
        assert solution.labeling["a"].as_path == ("b1", "d")


class TestFigure6:
    """Static routes: only routers with a configured static route forward."""

    def test_static_chain(self):
        g = Graph()
        for u, v in [("a", "b1"), ("b1", "b2"), ("b2", "d")]:
            g.add_undirected_edge(u, v)
        srp = build_static_srp(g, "d", static_edges=[("a", "b1"), ("b2", "d")])
        solution = solve(srp)
        assert solution.labeling["a"] is not None
        assert solution.labeling["b1"] is None
        assert solution.labeling["b2"] is not None
        assert solution.labeling["d"] is not None


class TestFigure13:
    """The chain that realises the |prefs| bound of Theorem 4.4.

    Three u routers prefer v1 over v2 over v3 (three local preferences).
    In a stable solution u1 takes v1, u2 is blocked by loop prevention and
    falls back to v2, u3 falls back to v3: three distinct behaviours, which
    is exactly the bound |prefs(û)| = 3.
    """

    @pytest.fixture
    def figure13_srp(self):
        g = Graph()
        us = ["u1", "u2", "u3"]
        vs = ["v1", "v2", "v3"]
        for u in us:
            for v in vs:
                g.add_undirected_edge(u, v)
        # v1 reaches d only through the u routers; v2 and v3 reach d directly
        # but with increasingly long paths so that the u routers' preference
        # ordering (v1 > v2 > v3) is enforced purely by local preference.
        g.add_undirected_edge("v2", "d")
        g.add_undirected_edge("v3", "x")
        g.add_undirected_edge("x", "d")
        g.add_undirected_edge("v1", "u1")
        imports = {}
        for u in us:
            imports[(u, "v1")] = SetLocalPref(300)
            imports[(u, "v2")] = SetLocalPref(200)
            imports[(u, "v3")] = SetLocalPref(150)
        # v1 prefers routes from u2 (creating the dependency chain).
        imports[("v1", "u2")] = SetLocalPref(400)
        return build_bgp_srp(g, "d", import_policies=imports)

    def test_number_of_behaviours_bounded_by_prefs(self, figure13_srp):
        compute_abstraction(figure13_srp)
        solution = solve(figure13_srp)
        assert solution.is_stable()
        u_behaviours = {frozenset(solution.next_hops(u)) for u in ("u1", "u2", "u3")}
        # The number of distinct behaviours of the u routers never exceeds
        # the number of local-preference values they can assign (3).
        assert len(u_behaviours) <= 3


class TestFigure11Shape:
    """Abstraction size comparison for the two fat-tree policies."""

    def test_prefer_bottom_yields_larger_abstraction(
        self, small_fattree, small_fattree_prefer_bottom
    ):
        from repro.abstraction import Bonsai

        plain = Bonsai(small_fattree)
        policy = Bonsai(small_fattree_prefer_bottom)
        plain_nodes = plain.compress(plain.equivalence_classes()[0]).abstract_nodes
        policy_nodes = policy.compress(policy.equivalence_classes()[0]).abstract_nodes
        assert plain_nodes == 6
        assert policy_nodes > plain_nodes
