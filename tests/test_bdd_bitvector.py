"""Unit tests for BDD bit-vector helpers."""

import pytest

from repro.bdd import BddManager, BitVector, FALSE, TRUE


@pytest.fixture
def setup():
    manager = BddManager()
    vector = BitVector.declare(manager, "ip", 8)
    return manager, vector


def test_declare_allocates_named_variables(setup):
    manager, vector = setup
    assert vector.width == 8
    assert manager.var_name(vector.variables[0]) == "ip[0]"


def test_invalid_width_rejected():
    manager = BddManager()
    with pytest.raises(ValueError):
        BitVector.declare(manager, "x", 0)


def test_equals_constant(setup):
    manager, vector = setup
    f = vector.equals_constant(0b10100110)
    assert manager.evaluate(f, vector.assignment_for(0b10100110))
    assert not manager.evaluate(f, vector.assignment_for(0b10100111))


def test_equals_constant_out_of_range(setup):
    _, vector = setup
    with pytest.raises(ValueError):
        vector.equals_constant(256)


def test_matches_prefix(setup):
    manager, vector = setup
    # Match the top 3 bits of 0b101xxxxx.
    f = vector.matches_prefix(0b10100000, 3)
    assert manager.evaluate(f, vector.assignment_for(0b10111111))
    assert not manager.evaluate(f, vector.assignment_for(0b11100000))
    assert vector.matches_prefix(0, 0) == TRUE


def test_range_constraints(setup):
    manager, vector = setup
    le = vector.less_or_equal(100)
    ge = vector.greater_or_equal(50)
    rng = vector.in_range(50, 100)
    for value in (0, 49, 50, 99, 100, 101, 255):
        assignment = vector.assignment_for(value)
        assert manager.evaluate(le, assignment) == (value <= 100)
        assert manager.evaluate(ge, assignment) == (value >= 50)
        assert manager.evaluate(rng, assignment) == (50 <= value <= 100)


def test_range_edge_cases(setup):
    _, vector = setup
    assert vector.less_or_equal(255) == TRUE
    assert vector.greater_or_equal(0) == TRUE
    assert vector.less_or_equal(-1) == FALSE


def test_assignment_roundtrip(setup):
    _, vector = setup
    assignment = vector.assignment_for(0b11001010)
    assert vector.decode(assignment) == 0b11001010
