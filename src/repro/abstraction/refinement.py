"""The abstraction-refinement algorithm (Algorithm 1, §5).

Starting from the coarsest possible abstraction -- the destination alone in
one abstract node, everything else in another -- the algorithm repeatedly
splits abstract nodes whose members disagree on either

* the policies they apply on their edges (transfer-equivalence), or
* the abstract (respectively concrete, for BGP nodes with several local
  preference values) neighbours those edges lead to (the topological
  ∀∃ / ∀∀ conditions),

until a full pass makes no progress.  Finally, abstract nodes whose members
can assign more than one local-preference value are split into one copy per
value (Theorem 4.4), which is what lets the compressed network represent
every forwarding behaviour BGP loop prevention can force.

The algorithm is purely structural: it needs the topology, a canonical
policy key per edge (a BDD identifier in the full pipeline, or a syntactic
key), and the per-node local-preference sets.  It never simulates the
network.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Optional, Tuple

from repro.abstraction.mapping import NetworkAbstraction
from repro.abstraction.partition import UnionSplitFind
from repro.srp.instance import SRP
from repro.topology.graph import Edge, Graph, Node


@dataclass
class RefinementResult:
    """The outcome of running abstraction refinement on one SRP."""

    abstraction: NetworkAbstraction
    partition: UnionSplitFind
    iterations: int
    elapsed_seconds: float
    split_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def num_abstract_nodes(self) -> int:
        return self.abstraction.num_abstract_nodes()

    @property
    def num_abstract_edges(self) -> int:
        return self.abstraction.num_abstract_edges()


def _node_prefs(srp: SRP, nodes: FrozenSet[Node]) -> FrozenSet[int]:
    """The union of local-preference values over a group of concrete nodes."""
    values = set()
    for node in nodes:
        values.update(srp.prefs(node))
    return frozenset(values)


def _refine_group(
    graph: Graph,
    policy_keys: Dict[Edge, Hashable],
    partition: UnionSplitFind,
    group: int,
    use_concrete_neighbours: bool,
) -> int:
    """One call of the paper's ``Refine`` procedure on one abstract node.

    Each member node is summarised by the set of ``(policy, neighbour)``
    pairs over its outgoing edges, where ``neighbour`` is the concrete
    neighbour for BGP nodes with several local preferences (enforcing the
    ∀∀ condition) and the neighbour's abstract node otherwise (the ∀∃
    condition).  Members with different summaries are split apart.

    Returns the number of new groups created.
    """
    members = partition.members(group)
    signature: Dict[Node, Hashable] = {}
    for node in members:
        pairs = set()
        for edge in graph.out_edges(node):
            _, neighbour = edge
            policy = policy_keys.get(edge, ("default",))
            target = neighbour if use_concrete_neighbours else partition.find(neighbour)
            pairs.add(("out", policy, target))
        # Also summarise the node's incoming edges.  The policy key of an
        # edge (w, u) contains u's *export* policy towards w, so without
        # this, two nodes whose own export policies differ could be merged
        # and violate transfer-equivalence.
        for edge in graph.in_edges(node):
            source, _ = edge
            policy = policy_keys.get(edge, ("default",))
            origin = source if use_concrete_neighbours else partition.find(source)
            pairs.add(("in", policy, origin))
        signature[node] = frozenset(pairs)
    new_groups = partition.split_by_key(group, signature)
    return len(new_groups) - 1


def find_abstraction_partition(
    srp: SRP,
    policy_keys: Optional[Dict[Edge, Hashable]] = None,
    max_iterations: int = 10_000,
) -> Tuple[UnionSplitFind, int]:
    """Compute the pre-split partition (Algorithm 1 up to the fixed point).

    This is the dirty-group *worklist* form: a group is only re-examined
    when a node adjacent to one of its members moved to a different group
    (the split keeps the largest part in place, so the moved nodes are the
    smaller halves).  The refinement fixed point -- the coarsest partition
    stable under the signature function -- is independent of the
    examination order, so the resulting partition is identical to the
    full-rescan reference (:func:`find_abstraction_partition_reference`),
    which is kept as the equivalence-test oracle.

    Returns the partition and the number of worklist passes performed.
    """
    graph = srp.graph
    keys = policy_keys if policy_keys is not None else {
        edge: srp.policy_key(edge) for edge in graph.edges
    }

    partition = UnionSplitFind(graph.nodes)
    partition.split({srp.destination})
    group_of = partition.group_of

    # Static per-node inputs, materialised once: the (direction, policy,
    # neighbour) summary of every incident edge, the neighbours whose
    # group movement dirties the node's group, and the local-preference
    # value set (whose union decides the ∀∀ vs ∀∃ condition per group).
    default_key = ("default",)
    edge_summary: Dict[Node, Tuple] = {}
    neighbours_of: Dict[Node, Tuple] = {}
    pref_sets: Dict[Node, FrozenSet[int]] = {}
    for node in graph.nodes:
        summary = []
        for edge in graph.out_edges(node):
            summary.append(("out", keys.get(edge, default_key), edge[1]))
        # Also summarise the node's incoming edges.  The policy key of an
        # edge (w, u) contains u's *export* policy towards w, so without
        # this, two nodes whose own export policies differ could be merged
        # and violate transfer-equivalence.
        for edge in graph.in_edges(node):
            summary.append(("in", keys.get(edge, default_key), edge[0]))
        edge_summary[node] = tuple(summary)
        neighbours_of[node] = tuple({nb for _, _, nb in summary})
        pref_sets[node] = frozenset(srp.prefs(node))

    def refine(group: int) -> list:
        """Split ``group`` by member signature; returns the moved nodes."""
        members = partition.members(group)
        if len(members) <= 1:
            return []
        group_prefs = frozenset().union(*(pref_sets[node] for node in members))
        use_concrete = len(group_prefs) > 1
        signature: Dict[Node, Hashable] = {}
        if use_concrete:
            for node in members:
                signature[node] = frozenset(edge_summary[node])
        else:
            for node in members:
                signature[node] = frozenset(
                    (direction, policy, group_of[nb])
                    for direction, policy, nb in edge_summary[node]
                )
        new_groups = partition.split_by_key(group, signature)
        moved: list = []
        for new_group in new_groups[1:]:
            moved.extend(partition.members(new_group))
        return moved

    dirty = sorted(partition.groups())
    iterations = 0
    while iterations < max_iterations:
        iterations += 1
        moved_nodes: list = []
        for group in dirty:
            moved_nodes.extend(refine(group))
        if not moved_nodes:
            # Fixed point of the signature-based refinement.  Verify
            # transfer-equivalence explicitly and split any group whose
            # members still disagree on the policy towards some abstract
            # neighbour (possible with parallel edges of mixed policy);
            # continue refining if that created new groups.
            moved_nodes = _split_transfer_violations(
                graph, keys, partition, edge_summary
            )
            if not moved_nodes:
                break
        next_dirty = set()
        for node in moved_nodes:
            for neighbour in neighbours_of[node]:
                next_dirty.add(group_of[neighbour])
        dirty = sorted(next_dirty)
    return partition, iterations


def find_abstraction_partition_reference(
    srp: SRP,
    policy_keys: Optional[Dict[Edge, Hashable]] = None,
    max_iterations: int = 10_000,
) -> Tuple[UnionSplitFind, int]:
    """The original full-rescan refinement loop (reference oracle).

    Re-examines *every* group on every pass.  Kept (unoptimised) so
    equivalence tests and the hot-path benchmark can check that the
    worklist form computes the identical partition.
    """
    graph = srp.graph
    keys = policy_keys if policy_keys is not None else {
        edge: srp.policy_key(edge) for edge in graph.edges
    }

    partition = UnionSplitFind(graph.nodes)
    partition.split({srp.destination})

    iterations = 0
    for _ in range(max_iterations):
        iterations += 1
        before = partition.num_groups()
        for group in list(partition.groups()):
            members = partition.members(group)
            if len(members) <= 1:
                continue
            prefs = _node_prefs(srp, members)
            _refine_group(
                graph,
                keys,
                partition,
                group,
                use_concrete_neighbours=len(prefs) > 1,
            )
        if partition.num_groups() == before:
            if not _split_transfer_violations(graph, keys, partition):
                break
    return partition, iterations


def _split_transfer_violations(
    graph: Graph,
    policy_keys: Dict[Edge, Hashable],
    partition: UnionSplitFind,
    edge_summary: Optional[Dict[Node, Tuple]] = None,
) -> List[Node]:
    """Split groups whose members apply different policies towards the same
    abstract neighbour group.  Returns the nodes moved to new groups.

    ``edge_summary`` optionally reuses the worklist's precomputed
    per-node ``(direction, policy, neighbour)`` tuples instead of walking
    the graph's edge lists again.
    """
    group_of = partition.group_of
    default_key = ("default",)
    moved: List[Node] = []
    for group in list(partition.groups()):
        members = partition.members(group)
        if len(members) <= 1:
            continue
        signature: Dict[Node, Hashable] = {}
        for node in members:
            per_target: Dict[int, set] = {}
            if edge_summary is None:
                for edge in graph.out_edges(node):
                    _, neighbour = edge
                    per_target.setdefault(group_of[neighbour], set()).add(
                        policy_keys.get(edge, default_key)
                    )
            else:
                for direction, policy, neighbour in edge_summary[node]:
                    if direction == "out":
                        per_target.setdefault(group_of[neighbour], set()).add(policy)
            signature[node] = frozenset(
                (target, frozenset(keys)) for target, keys in per_target.items()
            )
        for new_group in partition.split_by_key(group, signature)[1:]:
            moved.extend(partition.members(new_group))
    return moved


def split_into_bgp_cases(
    srp: SRP, partition: UnionSplitFind
) -> Dict[str, Tuple[str, ...]]:
    """The final ``SplitIntoBGPCases`` step of Algorithm 1.

    Every abstract node whose members can assign ``k > 1`` local-preference
    values is split into ``min(k, |members|)`` copies; the mapping of
    concrete nodes to copies is solution-dependent (Theorem 4.5), so the
    copies share the base group's concrete members.

    Returns the ``split_groups`` dictionary consumed by
    :class:`~repro.abstraction.mapping.NetworkAbstraction`.
    """
    names = partition.canonical_names()
    base_of_group: Dict[int, str] = {}
    for node, name in names.items():
        base_of_group[partition.find(node)] = name

    split_groups: Dict[str, Tuple[str, ...]] = {}
    for group in partition.groups():
        members = partition.members(group)
        prefs = _node_prefs(srp, members)
        copies_needed = min(len(prefs), len(members))
        if copies_needed <= 1 or srp.destination in members:
            continue
        base = base_of_group[group]
        split_groups[base] = tuple(
            f"{base}_case{i}" for i in range(copies_needed)
        )
    return split_groups


def compute_abstraction(
    srp: SRP,
    policy_keys: Optional[Dict[Edge, Hashable]] = None,
    bgp_case_split: bool = True,
    max_iterations: int = 10_000,
) -> RefinementResult:
    """Run the complete compression algorithm on one SRP.

    Parameters
    ----------
    policy_keys:
        Canonical per-edge policy keys.  Defaults to the SRP's own
        ``edge_policies`` (syntactic keys); pass the specialized BDD keys
        from :class:`repro.bdd.policy.PolicyBddEncoder` for the full
        pipeline.
    bgp_case_split:
        Whether to perform the final local-preference case splitting.
        Disabling it reproduces the *unsound* naive abstraction of
        Figure 2(b) and is used by tests and the ablation benchmarks.
    """
    start = time.perf_counter()
    partition, iterations = find_abstraction_partition(srp, policy_keys, max_iterations)
    split_groups = split_into_bgp_cases(srp, partition) if bgp_case_split else {}
    names = partition.canonical_names()
    abstraction = NetworkAbstraction.from_node_map(
        srp.graph,
        names,
        protocol=srp.protocol,
        split_groups=split_groups,
    )
    elapsed = time.perf_counter() - start
    split_counts = {base: len(copies) for base, copies in split_groups.items()}
    return RefinementResult(
        abstraction=abstraction,
        partition=partition,
        iterations=iterations,
        elapsed_seconds=elapsed,
        split_counts=split_counts,
    )
