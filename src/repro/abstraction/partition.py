"""Union-split-find: the partition data structure behind Algorithm 1.

The compression algorithm maintains a partition of the concrete nodes into
disjoint groups (the abstract nodes) and repeatedly *splits* groups as it
discovers that their members cannot share an abstract node.  This is the
opposite refinement direction from union-find, hence the paper's name
"union-split-find".

The implementation keeps, for every node, the identifier of its group and,
for every group, the set of member nodes.  Splitting a subset out of a
group is O(subset size); looking up a node's group is O(1).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, List, Set

Node = Hashable


class PartitionError(Exception):
    """Raised on invalid partition operations."""


class UnionSplitFind:
    """A partition of a fixed node set supporting group splits."""

    def __init__(self, nodes: Iterable[Node]):
        nodes = list(nodes)
        if not nodes:
            raise PartitionError("cannot partition an empty node set")
        self._group_of: Dict[Node, int] = {}
        self._members: Dict[int, Set[Node]] = {}
        self._next_group = 0
        initial = self._new_group()
        for node in nodes:
            if node in self._group_of:
                raise PartitionError(f"duplicate node {node!r}")
            self._group_of[node] = initial
            self._members[initial].add(node)

    def _new_group(self) -> int:
        group = self._next_group
        self._next_group += 1
        self._members[group] = set()
        return group

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def find(self, node: Node) -> int:
        """The group identifier of ``node``."""
        try:
            return self._group_of[node]
        except KeyError as exc:
            raise PartitionError(f"unknown node {node!r}") from exc

    @property
    def group_of(self) -> Dict[Node, int]:
        """The live node -> group-id mapping.

        Exposed for hot loops (the refinement worklist) that cannot afford
        a method call per lookup; callers must treat it as read-only.
        """
        return self._group_of


    def members(self, group: int) -> FrozenSet[Node]:
        """The nodes in ``group``."""
        if group not in self._members:
            raise PartitionError(f"unknown group {group}")
        return frozenset(self._members[group])

    def groups(self) -> List[int]:
        """All group identifiers with at least one member."""
        return [group for group, members in self._members.items() if members]

    def partitions(self) -> List[FrozenSet[Node]]:
        """The current partition as a list of frozensets."""
        return [frozenset(members) for members in self._members.values() if members]

    def num_groups(self) -> int:
        return sum(1 for members in self._members.values() if members)

    def nodes(self) -> List[Node]:
        return list(self._group_of.keys())

    def same_group(self, a: Node, b: Node) -> bool:
        return self.find(a) == self.find(b)

    def __len__(self) -> int:
        return self.num_groups()

    def __contains__(self, node: Node) -> bool:
        return node in self._group_of

    # ------------------------------------------------------------------
    # Splitting
    # ------------------------------------------------------------------
    def split(self, nodes: Iterable[Node]) -> int:
        """Move ``nodes`` into a fresh group.

        All nodes must currently belong to the same group.  Splitting an
        entire group (or an empty set) is a no-op and returns the existing
        group id.  Returns the group id now containing ``nodes``.
        """
        subset = set(nodes)
        if not subset:
            raise PartitionError("cannot split an empty subset")
        groups = {self.find(node) for node in subset}
        if len(groups) != 1:
            raise PartitionError(f"nodes {sorted(map(str, subset))} span multiple groups")
        source = groups.pop()
        if subset == self._members[source]:
            return source
        target = self._new_group()
        for node in subset:
            self._members[source].discard(node)
            self._members[target].add(node)
            self._group_of[node] = target
        return target

    def split_by_key(self, group: int, key_of: Dict[Node, Hashable]) -> List[int]:
        """Split ``group`` so that members with different keys are separated.

        Returns the list of resulting group ids (the original id is reused
        for one of the key classes).  Members missing from ``key_of`` get a
        distinct key of their own.
        """
        members = self.members(group)
        buckets: Dict[Hashable, Set[Node]] = {}
        for node in members:
            buckets.setdefault(key_of.get(node, ("__missing__", node)), set()).add(node)
        if len(buckets) <= 1:
            return [group]
        result = []
        # Keep the largest bucket in place and split the rest out, which
        # minimises bookkeeping work.
        ordered = sorted(buckets.values(), key=len, reverse=True)
        result.append(group)
        for bucket in ordered[1:]:
            result.append(self.split(bucket))
        return result

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def as_mapping(self) -> Dict[Node, int]:
        """A node -> group-id dictionary snapshot."""
        return dict(self._group_of)

    def canonical_names(self, prefix: str = "abs") -> Dict[Node, str]:
        """Stable, human-readable abstract node names.

        Groups are numbered in order of their smallest member's string
        representation, so renaming is deterministic across runs.
        """
        ordered = sorted(
            (members for members in self._members.values() if members),
            key=lambda members: min(str(node) for node in members),
        )
        names: Dict[Node, str] = {}
        for index, members in enumerate(ordered):
            label = f"{prefix}{index}"
            for node in members:
                names[node] = label
        return names
