"""Network abstractions: the pair of functions ``(f, h)`` (§4).

A :class:`NetworkAbstraction` records the topology function ``f`` mapping
concrete nodes to abstract nodes, together with the protocol whose
attribute abstraction plays the role of ``h``.  It also materialises the
abstract topology induced by ``f`` and provides the inverse views the
condition checkers and the equivalence checker need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.topology.graph import Edge, Graph, Node


@dataclass
class NetworkAbstraction:
    """The topology abstraction ``f`` plus supporting views.

    Attributes
    ----------
    node_map:
        The function ``f`` as a dictionary from concrete to abstract node
        names.
    abstract_graph:
        The abstract topology: one node per abstract name, an edge
        ``(û, v̂)`` whenever some concrete edge maps onto it.
    protocol:
        The protocol object providing the attribute abstraction ``h``
        (may be ``None`` for purely topological uses).
    split_groups:
        For BGP case splitting: maps each *base* abstract node name to the
        tuple of its copies in the final abstraction (empty if no splitting
        happened).  Concrete nodes in ``node_map`` point at base names; the
        copies share the base's concrete nodes.
    """

    node_map: Dict[Node, str]
    abstract_graph: Graph
    protocol: Any = None
    split_groups: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_node_map(
        cls,
        concrete_graph: Graph,
        node_map: Dict[Node, str],
        protocol: Any = None,
        split_groups: Optional[Dict[str, Tuple[str, ...]]] = None,
    ) -> "NetworkAbstraction":
        """Build the abstraction induced by ``node_map`` on ``concrete_graph``."""
        missing = [node for node in concrete_graph.nodes if node not in node_map]
        if missing:
            raise ValueError(f"node map missing concrete nodes: {missing}")
        abstract = Graph()
        split_groups = dict(split_groups or {})

        if not split_groups:
            # Fast path (no BGP case splitting): one copy per base name.
            # Must stay behaviourally in sync with the general path below
            # (which it equals when copies() degenerates to one-tuples).
            for node in concrete_graph.nodes:
                abstract.add_node(node_map[node])
            for u, v in concrete_graph.edges:
                cu = node_map[u]
                cv = node_map[v]
                if cu != cv:
                    abstract.add_edge(cu, cv)
            return cls(
                node_map=dict(node_map),
                abstract_graph=abstract,
                protocol=protocol,
                split_groups=split_groups,
            )

        def copies(base: str) -> Tuple[str, ...]:
            return split_groups.get(base, (base,))

        for node in concrete_graph.nodes:
            for copy in copies(node_map[node]):
                abstract.add_node(copy)
        for u, v in concrete_graph.edges:
            for cu in copies(node_map[u]):
                for cv in copies(node_map[v]):
                    if cu != cv:
                        abstract.add_edge(cu, cv)
        return cls(
            node_map=dict(node_map),
            abstract_graph=abstract,
            protocol=protocol,
            split_groups=split_groups,
        )

    # ------------------------------------------------------------------
    # The function f and its inverse
    # ------------------------------------------------------------------
    def f(self, node: Node) -> str:
        """Apply the topology function to a concrete node."""
        return self.node_map[node]

    def f_edge(self, edge: Edge) -> Tuple[str, str]:
        """Apply ``f`` to a concrete edge."""
        u, v = edge
        return (self.node_map[u], self.node_map[v])

    def f_path(self, path) -> Tuple[str, ...]:
        """Apply ``f`` to a path of concrete nodes."""
        return tuple(self.node_map[node] for node in path)

    def concrete_nodes(self, abstract_node: str) -> FrozenSet[Node]:
        """The concrete nodes mapped to ``abstract_node`` (or to its base,
        for split copies)."""
        base = self.base_of(abstract_node)
        return frozenset(
            node for node, name in self.node_map.items() if name == base
        )

    def base_of(self, abstract_node: str) -> str:
        """The pre-split abstract node a split copy belongs to."""
        for base, copies in self.split_groups.items():
            if abstract_node in copies:
                return base
        return abstract_node

    def copies_of(self, base: str) -> Tuple[str, ...]:
        """The split copies of a base abstract node (itself if unsplit)."""
        return self.split_groups.get(base, (base,))

    # ------------------------------------------------------------------
    # The attribute abstraction h
    # ------------------------------------------------------------------
    def h(self, attribute: Any) -> Any:
        """Apply the attribute abstraction induced by the protocol and ``f``."""
        if self.protocol is None:
            return attribute
        return self.protocol.abstract_attribute(attribute, self.f)

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    def num_abstract_nodes(self) -> int:
        return self.abstract_graph.num_nodes()

    def num_abstract_edges(self) -> int:
        return self.abstract_graph.num_undirected_edges()

    def compression_ratio(self, concrete_graph: Graph) -> Tuple[float, float]:
        """(node ratio, edge ratio) between concrete and abstract networks."""
        nodes = concrete_graph.num_nodes() / max(1, self.num_abstract_nodes())
        concrete_edges = concrete_graph.num_undirected_edges()
        abstract_edges = max(1, self.num_abstract_edges())
        return (nodes, concrete_edges / abstract_edges)

    def groups(self) -> List[FrozenSet[Node]]:
        """The partition of concrete nodes induced by ``f`` (base groups)."""
        buckets: Dict[str, Set[Node]] = {}
        for node, name in self.node_map.items():
            buckets.setdefault(name, set()).add(node)
        return [frozenset(members) for members in buckets.values()]

    def edge_preimages(
        self, concrete_graph: Graph
    ) -> Dict[FrozenSet[str], FrozenSet[Tuple[Node, Node]]]:
        """Concrete undirected links grouped by their abstract image.

        Maps ``frozenset({f(u), f(v)})`` to the set of concrete links
        (as name-sorted pairs) whose endpoints map onto it; links internal
        to one group appear under the singleton ``frozenset({f(u)})``.
        The failure-soundness checker uses this to decide whether a failed
        link's whole preimage fails with it; the result is memoised per
        (graph identity, mutation version), so querying a different graph
        -- or the same graph after an in-place edge removal -- recomputes
        instead of serving stale preimages.
        """
        cached = getattr(self, "_edge_preimage_cache", None)
        if (
            cached is not None
            and cached[0] is concrete_graph
            and cached[1] == concrete_graph.version
        ):
            return cached[2]
        buckets: Dict[FrozenSet[str], Set[Tuple[Node, Node]]] = {}
        for u, v in concrete_graph.edges:
            su, sv = str(u), str(v)
            link = (su, sv) if su <= sv else (sv, su)
            image = frozenset({self.node_map[u], self.node_map[v]})
            buckets.setdefault(image, set()).add(link)
        preimages = {
            image: frozenset(links) for image, links in buckets.items()
        }
        self._edge_preimage_cache = (concrete_graph, concrete_graph.version, preimages)
        return preimages

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"NetworkAbstraction(abstract_nodes={self.num_abstract_nodes()}, "
            f"abstract_edges={self.num_abstract_edges()})"
        )
