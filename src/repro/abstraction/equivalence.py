"""Building abstract SRPs and validating CP-equivalence (§4.2, §4.4).

Bonsai's guarantee is a bisimulation: every stable solution of the concrete
network corresponds to one of the abstract network and vice versa, with
related labels (label-equivalence) and related forwarding
(fwd-equivalence).  The paper proves this from the effective-abstraction
conditions; this module lets the test-suite *observe* it by

1. constructing the abstract SRP induced by an abstraction (reusing the
   representative concrete policies on each abstract edge), and
2. solving both SRPs and checking label- and fwd-equivalence of the
   solutions.

For BGP abstractions with case splitting, the concrete-to-abstract node
mapping is solution dependent (Theorem 4.5), so the checker verifies that
*some* assignment of concrete nodes to split copies relates the solutions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.abstraction.mapping import NetworkAbstraction
from repro.routing.attributes import BgpAttribute, RibAttribute
from repro.routing.bgp import build_bgp_srp
from repro.routing.multiprotocol import MultiProtocolConfig, build_multiprotocol_srp
from repro.srp.instance import SRP
from repro.srp.solution import Solution
from repro.srp.solver import solve
from repro.topology.graph import Edge, Node


class AbstractionBuildError(Exception):
    """Raised when an abstract SRP cannot be reconstructed."""


# ----------------------------------------------------------------------
# Abstract SRP construction
# ----------------------------------------------------------------------
def _representative_edges(
    srp: SRP, abstraction: NetworkAbstraction
) -> Dict[Tuple[str, str], Edge]:
    """Pick one concrete witness edge per (base) abstract edge."""
    representatives: Dict[Tuple[str, str], Edge] = {}
    for edge in srp.graph.edges:
        abstract_edge = abstraction.f_edge(edge)
        representatives.setdefault(abstract_edge, edge)
    return representatives


def build_abstract_srp(srp: SRP, abstraction: NetworkAbstraction) -> SRP:
    """Construct the abstract SRP induced by ``abstraction`` on ``srp``.

    The abstract network reuses, on each abstract edge, the policy of a
    representative concrete edge (any one -- transfer-equivalence makes
    them interchangeable).  Protocols whose attributes embed node names
    (BGP, multi-protocol) are rebuilt so that loop prevention operates on
    abstract names; other protocols simply delegate to the representative
    concrete transfer function.
    """
    representatives = _representative_edges(srp, abstraction)
    abstract_graph = abstraction.abstract_graph
    destination = abstraction.f(srp.destination)

    def base_edge(edge: Edge) -> Tuple[str, str]:
        u, v = edge
        return (abstraction.base_of(u), abstraction.base_of(v))

    protocol_name = getattr(srp.protocol, "name", None)

    if protocol_name == "bgp":
        imports = {}
        exports = {}
        for edge in abstract_graph.edges:
            witness = representatives.get(base_edge(edge))
            if witness is None:
                continue
            policy = srp.edge_policies.get(witness)
            if policy is None or policy[0] != "bgp":
                raise AbstractionBuildError(f"missing BGP policy for edge {witness!r}")
            _, export_policy, import_policy = policy
            exports[edge] = export_policy
            imports[edge] = import_policy
        abstract = build_bgp_srp(
            abstract_graph,
            destination,
            import_policies=imports,
            export_policies=exports,
            unused_communities=getattr(srp.protocol, "unused_communities", frozenset()),
        )
        return abstract

    def _has_reconstructible_policies(tag: str) -> bool:
        return all(
            isinstance(policy, tuple) and policy and policy[0] == tag
            for policy in (
                srp.edge_policies.get(representatives.get(base_edge(edge)))
                for edge in abstract_graph.edges
            )
            if policy is not None
        ) and any(srp.edge_policies.get(e) for e in srp.graph.edges)

    if protocol_name == "multi" and _has_reconstructible_policies("multi"):
        config = MultiProtocolConfig()
        for edge in abstract_graph.edges:
            witness = representatives.get(base_edge(edge))
            if witness is None:
                continue
            policy = srp.edge_policies.get(witness)
            if policy is None or policy[0] != "multi":
                raise AbstractionBuildError(f"missing multi-protocol policy for {witness!r}")
            _, has_bgp, has_ospf, has_static, cost, export_policy, import_policy = policy
            if has_bgp:
                config.bgp_edges.add(edge)
                config.bgp_export_policies[edge] = export_policy
                config.bgp_import_policies[edge] = import_policy
            if has_ospf:
                config.ospf_edges.add(edge)
                config.ospf_costs[edge] = cost
            if has_static:
                config.static_edges.add(edge)
        return build_multiprotocol_srp(abstract_graph, destination, config)

    # Generic case (RIP, OSPF, static, custom protocols whose attributes do
    # not mention node names): delegate to the representative edge.
    def transfer(edge: Edge, attribute):
        witness = representatives.get(base_edge(edge))
        if witness is None:
            return None
        return srp.transfer(witness, attribute)

    edge_policies = {
        edge: srp.edge_policies.get(representatives.get(base_edge(edge)), ("default",))
        for edge in abstract_graph.edges
    }
    node_prefs = {}
    for abstract_node in abstract_graph.nodes:
        members = abstraction.concrete_nodes(abstract_node)
        prefs: Set[int] = set()
        for member in members:
            prefs.update(srp.prefs(member))
        node_prefs[abstract_node] = tuple(sorted(prefs)) if prefs else (0,)

    return SRP(
        graph=abstract_graph,
        destination=destination,
        initial=srp.initial,
        prefer=srp.prefer,
        transfer=transfer,
        protocol=srp.protocol,
        edge_policies=edge_policies,
        node_prefs=node_prefs,
    )


# ----------------------------------------------------------------------
# Attribute comparison helpers
# ----------------------------------------------------------------------
def _labels_related(
    srp: SRP,
    abstraction: NetworkAbstraction,
    concrete_label: Any,
    abstract_label: Any,
    strict: bool,
) -> bool:
    """Whether a concrete label and an abstract label are related by ``h``.

    In strict mode the abstracted concrete label must equal the abstract
    label exactly.  In relaxed mode they only need to be equally preferred
    (``≈``), which tolerates the solver picking different but equally good
    routes on either side; for BGP this compares local preference, path
    length and (relevant) communities, which is what the preserved
    properties of §4.4 depend on.
    """
    mapped = abstraction.h(concrete_label)
    if mapped is None or abstract_label is None:
        return mapped is None and abstract_label is None
    if strict:
        return mapped == abstract_label
    if isinstance(mapped, BgpAttribute) and isinstance(abstract_label, BgpAttribute):
        return (
            mapped.local_pref == abstract_label.local_pref
            and mapped.path_length == abstract_label.path_length
            and mapped.communities == abstract_label.communities
        )
    if isinstance(mapped, RibAttribute) and isinstance(abstract_label, RibAttribute):
        if (mapped.chosen is None) != (abstract_label.chosen is None):
            return False
        bgp_ok = (mapped.bgp is None) == (abstract_label.bgp is None)
        if mapped.bgp is not None and abstract_label.bgp is not None:
            bgp_ok = (
                mapped.bgp.local_pref == abstract_label.bgp.local_pref
                and mapped.bgp.path_length == abstract_label.bgp.path_length
            )
        ospf_ok = (mapped.ospf is None) == (abstract_label.ospf is None)
        if mapped.ospf is not None and abstract_label.ospf is not None:
            ospf_ok = mapped.ospf.cost == abstract_label.ospf.cost
        static_ok = (mapped.static is None) == (abstract_label.static is None)
        return bgp_ok and ospf_ok and static_ok
    if srp.protocol is not None and hasattr(srp.protocol, "equally_preferred"):
        try:
            return srp.protocol.equally_preferred(mapped, abstract_label)
        except Exception:  # noqa: BLE001 - incomparable attribute types
            return mapped == abstract_label
    return mapped == abstract_label


# ----------------------------------------------------------------------
# Equivalence reports
# ----------------------------------------------------------------------
@dataclass
class EquivalenceReport:
    """Result of comparing a concrete and an abstract solution."""

    label_equivalent: bool
    fwd_equivalent: bool
    violations: List[str] = field(default_factory=list)

    @property
    def cp_equivalent(self) -> bool:
        return self.label_equivalent and self.fwd_equivalent


def check_solution_equivalence(
    concrete: Solution,
    abstract: Solution,
    abstraction: NetworkAbstraction,
    strict_labels: bool = False,
    max_violations: int = 10,
) -> EquivalenceReport:
    """Check label- and fwd-equivalence between two specific solutions.

    Only meaningful for abstractions without BGP case splitting (the node
    map is then a function); use :func:`check_bgp_solution_equivalence`
    otherwise.
    """
    violations: List[str] = []
    srp = concrete.srp
    label_ok = True
    for node in srp.graph.nodes:
        abstract_node = abstraction.f(node)
        if not _labels_related(
            srp,
            abstraction,
            concrete.labeling.get(node),
            abstract.labeling.get(abstract_node),
            strict_labels,
        ):
            label_ok = False
            violations.append(
                f"label mismatch at {node!r}: h({concrete.labeling.get(node)!r}) vs "
                f"{abstract.labeling.get(abstract_node)!r} at {abstract_node!r}"
            )
            if len(violations) >= max_violations:
                break

    fwd_ok = True
    # Direction 1: concrete forwarding edges map to abstract forwarding edges.
    for node in srp.graph.nodes:
        abstract_node = abstraction.f(node)
        abstract_next = {
            abstraction.base_of(v) for _, v in abstract.forwarding_edges(abstract_node)
        }
        for _, neighbour in concrete.forwarding_edges(node):
            if abstraction.base_of(abstraction.f(neighbour)) not in abstract_next:
                fwd_ok = False
                violations.append(
                    f"forwarding mismatch: {node!r}->{neighbour!r} has no abstract "
                    f"counterpart at {abstract_node!r}"
                )
                break
    # Direction 2: abstract forwarding edges are realised by every member.
    for abstract_node in abstraction.abstract_graph.nodes:
        members = abstraction.concrete_nodes(abstract_node)
        for _, abstract_neighbour in abstract.forwarding_edges(abstract_node):
            target_members = abstraction.concrete_nodes(abstract_neighbour)
            for member in members:
                concrete_next = {v for _, v in concrete.forwarding_edges(member)}
                if not concrete_next & target_members:
                    fwd_ok = False
                    violations.append(
                        f"abstract forwarding {abstract_node!r}->{abstract_neighbour!r} "
                        f"not realised at concrete {member!r}"
                    )
                    break

    return EquivalenceReport(
        label_equivalent=label_ok, fwd_equivalent=fwd_ok, violations=violations
    )


def check_bgp_solution_equivalence(
    concrete: Solution,
    abstract: Solution,
    abstraction: NetworkAbstraction,
    max_violations: int = 10,
) -> EquivalenceReport:
    """Equivalence check for abstractions with BGP case splitting.

    For every concrete node the checker looks for *some* split copy of its
    base abstract node whose label and forwarding relate to the concrete
    node's (the refinement ``f_r`` of Theorem 4.5 exists iff such a copy can
    be found for every node), and conversely that every copy is realised by
    some concrete node.
    """
    violations: List[str] = []
    srp = concrete.srp
    label_ok = True
    fwd_ok = True

    def copy_matches(node: Node, copy: str) -> bool:
        if not _labels_related(
            srp,
            abstraction,
            concrete.labeling.get(node),
            abstract.labeling.get(copy),
            strict=False,
        ):
            return False
        abstract_next = {
            abstraction.base_of(v) for _, v in abstract.forwarding_edges(copy)
        }
        concrete_next = {
            abstraction.base_of(abstraction.f(v))
            for _, v in concrete.forwarding_edges(node)
        }
        return concrete_next == abstract_next

    used_copies: Dict[str, Set[str]] = {}
    for node in srp.graph.nodes:
        base = abstraction.f(node)
        copies = abstraction.copies_of(base)
        matching = [copy for copy in copies if copy_matches(node, copy)]
        if not matching:
            label_ok = False
            fwd_ok = False
            violations.append(
                f"no split copy of {base!r} matches concrete node {node!r} "
                f"(label {concrete.labeling.get(node)!r})"
            )
            if len(violations) >= max_violations:
                break
        else:
            used_copies.setdefault(base, set()).update(matching)

    return EquivalenceReport(
        label_equivalent=label_ok, fwd_equivalent=fwd_ok, violations=violations
    )


def check_cp_equivalence(
    srp: SRP,
    abstraction: NetworkAbstraction,
    abstract_srp: Optional[SRP] = None,
    strict_labels: bool = False,
) -> EquivalenceReport:
    """Solve both networks and check that the solutions are related.

    This is the end-to-end validation used throughout the test-suite: it
    exercises the full bisimulation claim on the particular solutions the
    deterministic solver finds.
    """
    if abstract_srp is None:
        abstract_srp = build_abstract_srp(srp, abstraction)
    concrete_solution = solve(srp)
    abstract_solution = solve(abstract_srp)
    if abstraction.split_groups:
        return check_bgp_solution_equivalence(
            concrete_solution, abstract_solution, abstraction
        )
    return check_solution_equivalence(
        concrete_solution, abstract_solution, abstraction, strict_labels=strict_labels
    )
