"""Control plane compression: abstractions, refinement and the Bonsai tool."""

from repro.abstraction.bonsai import Bonsai, CompressionResult, CompressionSummary
from repro.abstraction.conditions import (
    ConditionReport,
    EffectivenessReport,
    check_bgp_effective,
    check_dest_equivalence,
    check_effective,
    check_forall_exists,
    check_forall_forall,
    check_self_loop_free,
    check_transfer_equivalence,
)
from repro.abstraction.ec import (
    EquivalenceClass,
    classes_for_destination,
    classes_rooted_at,
    compute_equivalence_classes,
    routable_equivalence_classes,
)
from repro.abstraction.equivalence import (
    AbstractionBuildError,
    EquivalenceReport,
    build_abstract_srp,
    check_bgp_solution_equivalence,
    check_cp_equivalence,
    check_solution_equivalence,
)
from repro.abstraction.mapping import NetworkAbstraction
from repro.abstraction.partition import PartitionError, UnionSplitFind
from repro.abstraction.refinement import (
    RefinementResult,
    compute_abstraction,
    find_abstraction_partition,
    split_into_bgp_cases,
)

__all__ = [
    "Bonsai",
    "CompressionResult",
    "CompressionSummary",
    "ConditionReport",
    "EffectivenessReport",
    "check_bgp_effective",
    "check_dest_equivalence",
    "check_effective",
    "check_forall_exists",
    "check_forall_forall",
    "check_self_loop_free",
    "check_transfer_equivalence",
    "EquivalenceClass",
    "classes_for_destination",
    "classes_rooted_at",
    "compute_equivalence_classes",
    "routable_equivalence_classes",
    "AbstractionBuildError",
    "EquivalenceReport",
    "build_abstract_srp",
    "check_bgp_solution_equivalence",
    "check_cp_equivalence",
    "check_solution_equivalence",
    "NetworkAbstraction",
    "PartitionError",
    "UnionSplitFind",
    "RefinementResult",
    "compute_abstraction",
    "find_abstraction_partition",
    "split_into_bgp_cases",
]
