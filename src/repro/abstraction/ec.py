"""Destination equivalence classes (§5.1).

Routing announcements for unrelated destinations do not interact, so
Bonsai partitions the destination IP space using a prefix trie built from
every prefix the configurations mention and computes one abstraction per
class.  An :class:`EquivalenceClass` carries the class's representative
prefix and the devices that originate it; classes are disjoint, so they can
be compressed (and analysed) independently and in parallel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.config.network import Network
from repro.config.prefix import Prefix


@dataclass(frozen=True)
class EquivalenceClass:
    """One destination equivalence class."""

    prefix: Prefix
    origins: frozenset

    @property
    def is_routable(self) -> bool:
        """Whether any device originates a route for this class."""
        return bool(self.origins)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"EC({self.prefix}, origins={sorted(map(str, self.origins))})"


def compute_equivalence_classes(network: Network) -> List[EquivalenceClass]:
    """All destination equivalence classes of a configured network."""
    return [
        EquivalenceClass(prefix=prefix, origins=frozenset(origins))
        for prefix, origins in network.destination_equivalence_classes()
    ]


def routable_equivalence_classes(network: Network) -> List[EquivalenceClass]:
    """Only the classes some device actually originates."""
    return [ec for ec in compute_equivalence_classes(network) if ec.is_routable]


def classes_for_destination(
    network: Network, destination: Prefix
) -> List[EquivalenceClass]:
    """The classes relevant to a query about ``destination``.

    Bonsai only generates abstractions for the classes a query touches
    (§7): a port-to-port reachability question typically needs a single
    class.  A class is relevant if its prefix overlaps the queried
    destination.
    """
    return [
        ec
        for ec in compute_equivalence_classes(network)
        if ec.prefix.overlaps(destination) and ec.is_routable
    ]


def classes_rooted_at(network: Network, device: str) -> List[EquivalenceClass]:
    """The classes originated by a particular device."""
    return [
        ec for ec in compute_equivalence_classes(network) if device in ec.origins
    ]
