"""The Bonsai tool: end-to-end control plane compression (§5, §7).

:class:`Bonsai` wires the whole pipeline together for a configured
network:

1. partition the destination space into equivalence classes,
2. encode every interface's policy as a BDD (once, shared by all classes),
3. for each class, specialize the BDDs, run abstraction refinement, and
4. emit a *smaller configured network* (abstract topology plus abstract
   device configurations) plus the node mapping,

exactly mirroring the original tool, which consumes Batfish's
vendor-independent configurations and produces a smaller collection of
them for downstream analyses to use.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.abstraction.ec import EquivalenceClass, routable_equivalence_classes
from repro.abstraction.mapping import NetworkAbstraction
from repro.abstraction.refinement import RefinementResult, compute_abstraction
from repro.bdd.policy import PolicyBddEncoder
from repro.obs import metrics as _metrics
from repro.config.device import BgpNeighborConfig, DeviceConfig, OspfLinkConfig, StaticRouteConfig
from repro.config.network import Network
from repro.config.prefix import Prefix
from repro.config.transfer import (
    VIRTUAL_DESTINATION,
    build_srp_from_network,
    compile_base_edges,
    specialize_compiled_edges,
    syntactic_policy_keys,
)
from repro.srp.instance import SRP
from repro.topology.graph import Edge, Graph


@dataclass
class CompressionResult:
    """The result of compressing one destination equivalence class."""

    equivalence_class: EquivalenceClass
    concrete_srp: SRP
    refinement: RefinementResult
    abstract_network: Optional[Network]
    compression_seconds: float

    @property
    def abstraction(self) -> NetworkAbstraction:
        return self.refinement.abstraction

    @property
    def abstract_nodes(self) -> int:
        """Abstract node count, excluding the virtual destination if added."""
        nodes = self.abstraction.abstract_graph.nodes
        virtual = {
            node
            for node in nodes
            if self.abstraction.concrete_nodes(node) == frozenset({VIRTUAL_DESTINATION})
        }
        return len(nodes) - len(virtual)

    @property
    def abstract_edges(self) -> int:
        return self.abstraction.num_abstract_edges()

    def abstract_srp(self) -> SRP:
        """The SRP compiled from the emitted abstract configurations.

        This is the faithful abstract SRP for config-driven networks (BGP
        loop prevention operates on abstract device names); it requires the
        compression to have been run with ``build_network=True``.
        """
        if self.abstract_network is None:
            raise ValueError("compression was run without build_network=True")
        return build_srp_from_network(
            self.abstract_network, self.equivalence_class.prefix
        )

    def node_compression_ratio(self) -> float:
        concrete = self.concrete_srp.graph.num_nodes()
        if VIRTUAL_DESTINATION in self.concrete_srp.graph.nodes:
            concrete -= 1
        return concrete / max(1, self.abstract_nodes)

    def edge_compression_ratio(self) -> float:
        return self.concrete_srp.graph.num_undirected_edges() / max(1, self.abstract_edges)


@dataclass
class CompressionSummary:
    """Aggregate statistics over many equivalence classes (Table 1 rows)."""

    network_name: str
    concrete_nodes: int
    concrete_edges: int
    num_classes: int
    classes_compressed: int
    mean_abstract_nodes: float
    mean_abstract_edges: float
    node_ratio: float
    edge_ratio: float
    bdd_seconds: float
    mean_compression_seconds: float

    def as_row(self) -> Dict[str, object]:
        """A flat dictionary suitable for tabular display."""
        return {
            "topology": self.network_name,
            "nodes": self.concrete_nodes,
            "edges": self.concrete_edges,
            "abs_nodes": round(self.mean_abstract_nodes, 1),
            "abs_edges": round(self.mean_abstract_edges, 1),
            "node_ratio": round(self.node_ratio, 2),
            "edge_ratio": round(self.edge_ratio, 2),
            "num_ecs": self.num_classes,
            "bdd_time_s": round(self.bdd_seconds, 3),
            "compression_time_per_ec_s": round(self.mean_compression_seconds, 4),
        }


class Bonsai:
    """Compress a configured network, one destination class at a time.

    ``REFINEMENT_CACHE_LIMIT`` bounds the cross-class refinement cache
    (cleared wholesale on overflow, like the BDD manager's ``ite`` memo):
    pipeline workers keep one ``Bonsai`` alive for thousands of classes,
    and each retained ``RefinementResult`` holds full node maps.

    A ``Bonsai`` assumes the network configuration does not change while
    it is alive: the policy-BDD encoder collects its variable universe at
    construction, and the compiled-edge / refinement caches added for the
    hot-path overhaul are keyed accordingly.  After mutating device
    configurations, build a fresh ``Bonsai`` (the ``Network``-level memos
    -- equivalence classes, local-pref sets -- are fingerprint-guarded
    and safe under mutation).

    Parameters
    ----------
    network:
        The concrete configured network.
    use_bdds:
        When True (default), per-edge policies are encoded as BDDs and the
        specialized BDD identities are used as policy keys.  When False,
        specialized syntactic keys are used instead (the ablation in
        DESIGN.md compares the two).
    encoder:
        An optional pre-built :class:`PolicyBddEncoder` for ``network``.
        The parallel pipeline encodes the network once, ships the encoder
        to each worker, and rebuilds a ``Bonsai`` around the copy so the
        one-time encoding cost is not paid per worker.
    """

    #: Maximum retained cross-class RefinementResults (clear-on-overflow).
    REFINEMENT_CACHE_LIMIT = 1024

    def __init__(
        self,
        network: Network,
        use_bdds: bool = True,
        encoder: Optional[PolicyBddEncoder] = None,
    ):
        self.network = network
        self.use_bdds = use_bdds
        self._encoder: Optional[PolicyBddEncoder] = encoder
        self.bdd_seconds = 0.0
        #: The aggregated report of the most recent :meth:`compress_all`.
        self.last_report = None
        #: Cross-class abstraction reuse: destination classes whose
        #: specialized policy keys, origins and local-preference sets all
        #: coincide induce the *same* refinement problem, so they share one
        #: :class:`~repro.abstraction.refinement.RefinementResult` instead
        #: of recomputing it per class (common for netgen families where
        #: many prefixes specialize identically).
        self._refinement_cache: Dict[Hashable, RefinementResult] = {}
        self._refinement_hits = 0
        self._refinement_misses = 0
        #: Single-entry memo of the last compiled edge map: several stages
        #: of a per-class task (concrete simulation, compression) compile
        #: the same destination back to back.  The destination-independent
        #: base compilation is built once and specialized per class.
        self._compile_memo: Optional[Tuple[Prefix, Dict]] = None
        self._base_compiled: Optional[Dict] = None

    # ------------------------------------------------------------------
    # Pipeline stages
    # ------------------------------------------------------------------
    @property
    def encoder(self) -> PolicyBddEncoder:
        """The shared policy-BDD encoder (built lazily, timed once)."""
        if self._encoder is None:
            start = time.perf_counter()
            self._encoder = PolicyBddEncoder(self.network)
            self._encoder.encode_all_edges()
            self.bdd_seconds = time.perf_counter() - start
        return self._encoder

    def equivalence_classes(self) -> List[EquivalenceClass]:
        """All routable destination equivalence classes of the network."""
        return routable_equivalence_classes(self.network)

    def compile_for(self, prefix: Prefix) -> Dict[Edge, "CompiledEdge"]:
        """Compile the network's edges for ``prefix`` (single-entry memo).

        The per-class verify task simulates the concrete network and then
        compresses the very same destination; sharing the compiled edges
        halves the per-class compilation work.  The memo assumes the
        network configuration does not change under a live ``Bonsai``
        (the policy-BDD encoder already requires that).
        """
        cached = self._compile_memo
        if cached is not None and cached[0] == prefix:
            return cached[1]
        if self._base_compiled is None:
            self._base_compiled = compile_base_edges(self.network)
        compiled = specialize_compiled_edges(self.network, prefix, self._base_compiled)
        self._compile_memo = (prefix, compiled)
        return compiled

    def policy_keys(self, prefix: Prefix) -> Dict[Edge, Hashable]:
        """Per-edge policy keys specialized to one destination."""
        compiled = self.compile_for(prefix)
        if self.use_bdds:
            return self.encoder.specialized_policy_keys(prefix, compiled)
        return dict(syntactic_policy_keys(self.network, prefix, compiled))

    # ------------------------------------------------------------------
    # Compression
    # ------------------------------------------------------------------
    def compress(
        self,
        equivalence_class: EquivalenceClass,
        build_network: bool = True,
    ) -> CompressionResult:
        """Compress the network for one destination equivalence class."""
        start = time.perf_counter()
        prefix = equivalence_class.prefix
        # Compile the edges once and share the result between the SRP
        # build and the policy-key specialization (each used to recompile).
        compiled = self.compile_for(prefix)
        srp = build_srp_from_network(
            self.network,
            prefix,
            set(equivalence_class.origins),
            compiled=compiled,
            # Refinement runs on the explicit (BDD or syntactic) keys built
            # below; the SRP's own syntactic keys would only be recomputed
            # to be ignored.  Virtual-destination edges keep their key.
            include_syntactic_keys=False,
        )
        keys = self.policy_keys(prefix)
        # Edges to the virtual destination (if any) need a key too.
        for edge in srp.graph.edges:
            if edge not in keys:
                keys[edge] = srp.policy_key(edge)
        refinement = self._refine_cached(srp, keys, equivalence_class)
        abstract_network = (
            self.build_abstract_network(refinement.abstraction, equivalence_class)
            if build_network
            else None
        )
        elapsed = time.perf_counter() - start
        return CompressionResult(
            equivalence_class=equivalence_class,
            concrete_srp=srp,
            refinement=refinement,
            abstract_network=abstract_network,
            compression_seconds=elapsed,
        )

    def _refine_cached(
        self,
        srp: SRP,
        keys: Dict[Edge, Hashable],
        equivalence_class: EquivalenceClass,
    ) -> RefinementResult:
        """Run abstraction refinement, deduped across equivalence classes.

        The refinement outcome is a pure function of (graph, per-edge
        policy keys, per-node local-preference sets); the graph is the
        network graph plus a virtual destination determined by the origin
        set.  Classes with equal signatures therefore share one
        ``RefinementResult`` (BDD keys are canonical within this Bonsai's
        encoder, so equal signatures really mean equal refinement inputs).
        """
        try:
            signature: Optional[Hashable] = (
                frozenset(keys.items()),
                equivalence_class.origins,
                tuple(sorted(srp.node_prefs.items())),
            )
        except TypeError:
            signature = None  # unhashable custom keys: skip the cache
        if signature is not None:
            cached = self._refinement_cache.get(signature)
            if cached is not None:
                self._refinement_hits += 1
                _metrics.counter("abstraction.refinement_cache.hits").inc()
                return cached
            self._refinement_misses += 1
            _metrics.counter("abstraction.refinement_cache.misses").inc()
        refinement = compute_abstraction(srp, policy_keys=keys)
        if signature is not None:
            # Clear-on-overflow (the BddManager cache_limit precedent):
            # the cache is an optimisation only, and a worker Bonsai can
            # live for thousands of classes.
            if len(self._refinement_cache) >= self.REFINEMENT_CACHE_LIMIT:
                self._refinement_cache.clear()
                _metrics.counter("abstraction.refinement_cache.overflows").inc()
            self._refinement_cache[signature] = refinement
        return refinement

    def abstraction_cache_info(self) -> Dict[str, int]:
        """Hit/miss/size counters of the cross-class refinement cache."""
        return {
            "hits": self._refinement_hits,
            "misses": self._refinement_misses,
            "size": len(self._refinement_cache),
        }

    def compress_prefix(self, prefix: Prefix, build_network: bool = True) -> CompressionResult:
        """Compress for an explicit destination prefix."""
        origins = self.network.originators_of(prefix)
        ec = EquivalenceClass(prefix=prefix, origins=frozenset(origins))
        return self.compress(ec, build_network=build_network)

    def compress_all(
        self,
        limit: Optional[int] = None,
        build_networks: bool = False,
        workers: Optional[int] = None,
        executor: Optional[str] = None,
    ) -> List[CompressionResult]:
        """Compress every equivalence class (optionally only the first few).

        The classes are independent (§5.1), so the work is delegated to the
        :mod:`repro.pipeline` subsystem.  By default it runs serially on
        this instance's encoder; passing ``workers`` (and optionally an
        ``executor`` of ``"process"`` or ``"thread"``) fans the classes out
        over a pool, with the one-time BDD encoding shared via a pickled
        artifact.  The aggregated :class:`~repro.pipeline.report.PipelineReport`
        of the last run is kept on ``self.last_report``.
        """
        from repro.pipeline.core import CompressionPipeline

        if executor is None:
            executor = "serial" if not workers else "process"
        pipeline = CompressionPipeline.from_bonsai(
            self,
            executor=executor,
            workers=workers or 1,
            limit=limit,
            build_networks=build_networks,
        )
        run = pipeline.run()
        self.last_report = run.report
        return run.results

    # ------------------------------------------------------------------
    # Abstract network construction
    # ------------------------------------------------------------------
    def build_abstract_network(
        self, abstraction: NetworkAbstraction, equivalence_class: EquivalenceClass
    ) -> Network:
        """Emit the compressed configured network for one class.

        Every abstract node receives the configuration of a representative
        concrete member, with neighbour references rewritten to abstract
        names.  Transfer-equivalence guarantees any representative yields
        the same behaviour.
        """
        prefix = equivalence_class.prefix
        origins = set(equivalence_class.origins)
        abstract_graph = abstraction.abstract_graph
        devices: Dict[str, DeviceConfig] = {}
        graph = Graph()

        def representative(abstract_node: str) -> Optional[str]:
            members = abstraction.concrete_nodes(abstract_node) - {VIRTUAL_DESTINATION}
            if not members:
                return None
            return min(members, key=str)

        skip = {
            node
            for node in abstract_graph.nodes
            if abstraction.concrete_nodes(node) == frozenset({VIRTUAL_DESTINATION})
        }

        for abstract_node in abstract_graph.nodes:
            if abstract_node in skip:
                continue
            graph.add_node(abstract_node)
        for u, v in abstract_graph.edges:
            if u in skip or v in skip:
                continue
            graph.add_edge(u, v)

        for abstract_node in graph.nodes:
            source = representative(abstract_node)
            if source is None:
                devices[abstract_node] = DeviceConfig(name=abstract_node)
                continue
            concrete = self.network.devices[source]
            device = DeviceConfig(
                name=abstract_node,
                asn=abstract_node,
                route_maps=dict(concrete.route_maps),
                community_lists=dict(concrete.community_lists),
                prefix_lists=dict(concrete.prefix_lists),
                acls=dict(concrete.acls),
            )
            # Originate the class prefix exactly where the *class* says it
            # originates.  A containment check against the representative's
            # own network statements would be wrong for trie-refined
            # classes: a device originating a covering aggregate (say a
            # /24) does not originate the /32 class carved out of it, and
            # marking it as such would make the abstract network deliver
            # at the wrong node.
            if origins & set(abstraction.concrete_nodes(abstract_node)):
                device.originated_prefixes.append(prefix)

            for abstract_neighbour in abstract_graph.successors(abstract_node):
                if abstract_neighbour in skip:
                    continue
                neighbour_members = abstraction.concrete_nodes(abstract_neighbour)
                witness = next(
                    (
                        peer
                        for peer in sorted(self.network.graph.successors(source), key=str)
                        if peer in neighbour_members
                    ),
                    None,
                )
                if witness is None:
                    continue
                session = concrete.bgp_neighbors.get(witness)
                if session is not None:
                    device.bgp_neighbors[abstract_neighbour] = BgpNeighborConfig(
                        peer=abstract_neighbour,
                        import_policy=session.import_policy,
                        export_policy=session.export_policy,
                        ibgp=session.ibgp,
                    )
                ospf = concrete.ospf_links.get(witness)
                if ospf is not None:
                    device.ospf_links[abstract_neighbour] = OspfLinkConfig(
                        peer=abstract_neighbour, cost=ospf.cost, area=ospf.area
                    )
                static = concrete.static_route_for(prefix)
                if static is not None and static.next_hop == witness:
                    device.static_routes.append(
                        StaticRouteConfig(prefix=prefix, next_hop=abstract_neighbour)
                    )
                acl_name = concrete.interface_acls.get(witness)
                if acl_name is not None:
                    device.interface_acls[abstract_neighbour] = acl_name
            devices[abstract_node] = device

        return Network(
            graph=graph,
            devices=devices,
            name=f"{self.network.name}-abstract-{prefix}",
        )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summarize(
        self, results: Sequence[CompressionResult], name: Optional[str] = None
    ) -> CompressionSummary:
        """Aggregate per-class results into one Table-1 style row."""
        if not results:
            raise ValueError("no compression results to summarise")
        concrete_nodes = self.network.graph.num_nodes()
        concrete_edges = self.network.graph.num_undirected_edges()
        mean_nodes = sum(result.abstract_nodes for result in results) / len(results)
        mean_edges = sum(result.abstract_edges for result in results) / len(results)
        mean_seconds = sum(result.compression_seconds for result in results) / len(results)
        return CompressionSummary(
            network_name=name or self.network.name,
            concrete_nodes=concrete_nodes,
            concrete_edges=concrete_edges,
            num_classes=len(self.equivalence_classes()),
            classes_compressed=len(results),
            mean_abstract_nodes=mean_nodes,
            mean_abstract_edges=mean_edges,
            node_ratio=concrete_nodes / max(1.0, mean_nodes),
            edge_ratio=concrete_edges / max(1.0, mean_edges),
            bdd_seconds=self.bdd_seconds,
            mean_compression_seconds=mean_seconds,
        )

    def unique_roles(
        self,
        prefix: Optional[Prefix] = None,
        include_unused_communities: bool = False,
        ignore_static_routes: bool = False,
    ) -> int:
        """The number of distinct device roles (§8's role counts).

        ``include_unused_communities`` counts roles *without* the BGP
        attribute abstraction that strips never-matched tags (the paper's
        112-role figure); ``ignore_static_routes`` additionally ignores
        static-route differences (the paper's 8-role figure).
        """
        if include_unused_communities:
            encoder = PolicyBddEncoder(self.network, track_all_communities=True)
            encoder.encode_all_edges()
            return encoder.unique_role_count(prefix, ignore_static_routes)
        if self.use_bdds:
            return self.encoder.unique_role_count(prefix, ignore_static_routes)
        destination = prefix or Prefix.parse("0.0.0.0/0")
        keys = syntactic_policy_keys(self.network, destination)
        roles = set()
        for node in self.network.graph.nodes:
            signature = frozenset(keys[edge] for edge in self.network.graph.out_edges(node))
            roles.add(signature)
        return len(roles)
