"""Effective-abstraction condition checks (§4.1, Figure 4).

An *effective abstraction* must satisfy a collection of conditions that are
local and cheap to verify, and that together imply CP-equivalence:

* **dest-equivalence** -- the concrete destination (and only it) maps to
  the abstract destination;
* **∀∃-abstraction** -- every concrete edge has an abstract counterpart,
  and for every abstract edge every concrete member of the source group has
  an edge to *some* member of the target group;
* **∀∀-abstraction** (BGP) -- concrete and abstract edges correspond in
  both directions for *every* pair of members;
* **transfer-equivalence** -- edges mapped together carry semantically
  identical policies (checked here through the per-edge policy keys, which
  are BDD identities in the full pipeline);
* **orig-/drop-/rank-equivalence** -- properties of the attribute
  abstraction ``h``; they hold by construction for the per-protocol ``h``
  used in this library and are re-validated on sampled attributes by the
  test-suite helpers in :mod:`repro.abstraction.equivalence`.

These checks are what the refinement algorithm drives to "all satisfied";
they are exposed separately so tests can exercise them on hand-built
abstractions such as Figure 8's valid/invalid examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.abstraction.mapping import NetworkAbstraction
from repro.srp.instance import SRP
from repro.topology.graph import Edge, Graph, Node


@dataclass
class ConditionReport:
    """The outcome of checking one abstraction condition."""

    name: str
    holds: bool
    violations: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.holds


@dataclass
class EffectivenessReport:
    """Aggregated result of all condition checks."""

    conditions: List[ConditionReport] = field(default_factory=list)

    @property
    def is_effective(self) -> bool:
        return all(condition.holds for condition in self.conditions)

    def failed(self) -> List[ConditionReport]:
        return [condition for condition in self.conditions if not condition.holds]

    def summary(self) -> str:
        parts = []
        for condition in self.conditions:
            status = "ok" if condition.holds else "VIOLATED"
            parts.append(f"{condition.name}: {status}")
        return ", ".join(parts)


# ----------------------------------------------------------------------
# Individual conditions
# ----------------------------------------------------------------------
def check_dest_equivalence(
    abstraction: NetworkAbstraction, destination: Node, max_violations: int = 5
) -> ConditionReport:
    """The destination, and only the destination, maps to its abstract node."""
    violations: List[str] = []
    dest_abstract = abstraction.f(destination)
    for node, abstract in abstraction.node_map.items():
        if node != destination and abstract == dest_abstract:
            violations.append(f"{node!r} shares the destination's abstract node")
            if len(violations) >= max_violations:
                break
    return ConditionReport("dest-equivalence", not violations, violations)


def check_forall_exists(
    concrete_graph: Graph, abstraction: NetworkAbstraction, max_violations: int = 5
) -> ConditionReport:
    """The ∀∃-abstraction conditions (both directions of Figure 4)."""
    violations: List[str] = []
    abstract_graph = abstraction.abstract_graph
    node_map = abstraction.node_map

    # Condition 1: every concrete edge has an abstract counterpart.  This
    # holds by construction when the abstract graph is induced from f, but
    # the check matters for hand-built abstractions.
    for u, v in concrete_graph.edges:
        fu, fv = abstraction.base_of(node_map[u]), abstraction.base_of(node_map[v])
        if fu == fv:
            continue
        if not any(
            abstract_graph.has_edge(cu, cv)
            for cu in abstraction.copies_of(fu)
            for cv in abstraction.copies_of(fv)
        ):
            violations.append(f"concrete edge ({u!r}, {v!r}) has no abstract counterpart")
            if len(violations) >= max_violations:
                return ConditionReport("forall-exists", False, violations)

    # Condition 2: for every abstract edge, every concrete member of the
    # source group reaches some member of the target group.
    groups: Dict[str, Set[Node]] = {}
    for node, name in node_map.items():
        groups.setdefault(name, set()).add(node)
    for au, av in abstract_graph.edges:
        base_u, base_v = abstraction.base_of(au), abstraction.base_of(av)
        if base_u == base_v:
            # Edges between split copies of the same base group have
            # solution-dependent semantics (Theorem 4.5) and are validated
            # by the BGP equivalence checker instead.
            continue
        members_u = groups.get(base_u, set())
        members_v = groups.get(base_v, set())
        for u in members_u:
            if not any(concrete_graph.has_edge(u, v) for v in members_v):
                violations.append(
                    f"abstract edge ({au!r}, {av!r}): {u!r} has no edge into {base_v!r}"
                )
                if len(violations) >= max_violations:
                    return ConditionReport("forall-exists", False, violations)
    return ConditionReport("forall-exists", not violations, violations)


def check_forall_forall(
    concrete_graph: Graph, abstraction: NetworkAbstraction, max_violations: int = 5
) -> ConditionReport:
    """The ∀∀-abstraction condition required for BGP-effective abstractions."""
    violations: List[str] = []
    groups: Dict[str, Set[Node]] = {}
    for node, name in abstraction.node_map.items():
        groups.setdefault(name, set()).add(node)
    for au, av in abstraction.abstract_graph.edges:
        base_u, base_v = abstraction.base_of(au), abstraction.base_of(av)
        if base_u == base_v:
            continue
        for u in groups.get(base_u, set()):
            for v in groups.get(base_v, set()):
                if not concrete_graph.has_edge(u, v):
                    violations.append(
                        f"abstract edge ({au!r}, {av!r}) but no concrete edge ({u!r}, {v!r})"
                    )
                    if len(violations) >= max_violations:
                        return ConditionReport("forall-forall", False, violations)
    return ConditionReport("forall-forall", not violations, violations)


def check_transfer_equivalence(
    srp: SRP,
    abstraction: NetworkAbstraction,
    policy_keys: Optional[Dict[Edge, Hashable]] = None,
    max_violations: int = 5,
) -> ConditionReport:
    """Edges mapped to the same abstract edge must carry equal policy keys.

    When ``policy_keys`` is omitted the SRP's own ``edge_policies`` are
    used.  In the full Bonsai pipeline these keys are specialized BDD
    identifiers, so key equality is semantic policy equality; with
    syntactic keys the check is sound but may report spurious violations.
    """
    keys = policy_keys if policy_keys is not None else {
        edge: srp.policy_key(edge) for edge in srp.graph.edges
    }
    by_abstract: Dict[Tuple[str, str], Set[Hashable]] = {}
    witnesses: Dict[Tuple[str, str], Edge] = {}
    violations: List[str] = []
    for edge in srp.graph.edges:
        abstract_edge = abstraction.f_edge(edge)
        bucket = by_abstract.setdefault(abstract_edge, set())
        bucket.add(keys[edge])
        witnesses.setdefault(abstract_edge, edge)
        if len(bucket) > 1:
            violations.append(
                f"abstract edge {abstract_edge!r} carries {len(bucket)} distinct policies "
                f"(e.g. {witnesses[abstract_edge]!r} vs {edge!r})"
            )
            if len(violations) >= max_violations:
                break
    return ConditionReport("transfer-equivalence", not violations, violations)


def check_self_loop_free(abstraction: NetworkAbstraction) -> ConditionReport:
    """The abstract graph must not contain self loops (well-formedness)."""
    loops = [(u, v) for u, v in abstraction.abstract_graph.edges if u == v]
    violations = [f"abstract self loop at {u!r}" for u, _ in loops]
    return ConditionReport("abstract-self-loop-free", not violations, violations)


# ----------------------------------------------------------------------
# Aggregate checks
# ----------------------------------------------------------------------
def check_effective(
    srp: SRP,
    abstraction: NetworkAbstraction,
    policy_keys: Optional[Dict[Edge, Hashable]] = None,
) -> EffectivenessReport:
    """Check all conditions of an (ordinary) effective abstraction."""
    return EffectivenessReport(
        conditions=[
            check_dest_equivalence(abstraction, srp.destination),
            check_forall_exists(srp.graph, abstraction),
            check_transfer_equivalence(srp, abstraction, policy_keys),
            check_self_loop_free(abstraction),
        ]
    )


def check_bgp_effective(
    srp: SRP,
    abstraction: NetworkAbstraction,
    policy_keys: Optional[Dict[Edge, Hashable]] = None,
) -> EffectivenessReport:
    """Check the conditions of a BGP-effective abstraction.

    Note that transfer-approx (transfer-equivalence modulo loop prevention)
    is discharged through the policy keys: the keys are computed from the
    configured policies, which do not include the loop-prevention check, so
    key equality is exactly transfer-approx.
    """
    return EffectivenessReport(
        conditions=[
            check_dest_equivalence(abstraction, srp.destination),
            check_forall_exists(srp.graph, abstraction),
            check_forall_forall(srp.graph, abstraction),
            check_transfer_equivalence(srp, abstraction, policy_keys),
            check_self_loop_free(abstraction),
        ]
    )
