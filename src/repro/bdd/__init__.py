"""Binary decision diagrams: the canonical policy representation substrate."""

from repro.bdd.arrays import ArrayBddManager
from repro.bdd.backend import (
    BACKEND_ENV_VAR,
    DEFAULT_BACKEND,
    available_backends,
    make_manager,
    register_backend,
    resolve_backend,
)
from repro.bdd.manager import FALSE, TRUE, BddError, BddManager
from repro.bdd.bitvector import BitVector
from repro.bdd.policy import PolicyBddEncoder, UNCHANGED

__all__ = [
    "ArrayBddManager",
    "BACKEND_ENV_VAR",
    "DEFAULT_BACKEND",
    "FALSE",
    "TRUE",
    "BddError",
    "BddManager",
    "BitVector",
    "PolicyBddEncoder",
    "UNCHANGED",
    "available_backends",
    "make_manager",
    "register_backend",
    "resolve_backend",
]
