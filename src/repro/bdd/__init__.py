"""Binary decision diagrams: the canonical policy representation substrate."""

from repro.bdd.manager import FALSE, TRUE, BddError, BddManager
from repro.bdd.bitvector import BitVector
from repro.bdd.policy import PolicyBddEncoder, UNCHANGED

__all__ = [
    "FALSE",
    "TRUE",
    "BddError",
    "BddManager",
    "BitVector",
    "PolicyBddEncoder",
    "UNCHANGED",
]
