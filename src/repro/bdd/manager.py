"""A reduced ordered binary decision diagram (ROBDD) engine.

Bonsai encodes every interface's routing policy as a BDD so that checking
whether two interfaces have semantically equivalent transfer functions is a
constant-time pointer comparison (§5.1).  The original implementation uses
JavaBDD; this module is a from-scratch pure-Python replacement providing
the operations Bonsai needs:

* hash-consed node creation (canonical representation),
* memoised ``ite`` / ``apply`` operations (and, or, not, xor, implies, iff),
* ``restrict`` (cofactor) used to *specialize* policies to a destination,
* existential quantification, support computation, satisfiability counts
  and model enumeration (used by tests and the data-plane encoding).

Nodes are identified by integers.  ``0`` and ``1`` are the terminal FALSE
and TRUE nodes.  Because nodes are hash-consed, two functions are
semantically equal iff their node ids are equal -- which is exactly the
property the compression algorithm exploits.
"""

from __future__ import annotations

import sys
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

#: Terminal node ids.
FALSE = 0
TRUE = 1


class BddError(Exception):
    """Raised for invalid BDD operations (unknown variables, bad node ids)."""


class BddManager:
    """Manager owning a shared, hash-consed node store.

    Parameters
    ----------
    num_vars:
        Number of variables to pre-declare.  More can be added later with
        :meth:`add_var`; variable order is the declaration order.
    cache_limit:
        Optional bound on the memoisation cache for :meth:`ite`.  The cache
        is an optimisation only, so when it grows past the limit it is
        simply cleared (clear-on-overflow); correctness is unaffected.  The
        default (``None``) keeps the cache unbounded, which is fine for
        short-lived managers but can dominate memory when one manager
        serves many ``restrict``/``apply`` calls (e.g. specializing the
        policy BDDs of a large network to thousands of destinations).
    """

    def __init__(self, num_vars: int = 0, cache_limit: Optional[int] = None):
        if cache_limit is not None and cache_limit <= 0:
            raise ValueError("cache_limit must be positive (or None for unbounded)")
        self.cache_limit = cache_limit
        # Node storage: parallel arrays var/low/high indexed by node id.
        # Terminals use variable index "infinity" so they sort after all
        # decision variables.
        self._var: List[int] = [sys.maxsize, sys.maxsize]
        self._low: List[int] = [FALSE, TRUE]
        self._high: List[int] = [FALSE, TRUE]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}
        self._var_names: List[str] = []
        for i in range(num_vars):
            self.add_var(f"x{i}")

    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------
    def add_var(self, name: Optional[str] = None) -> int:
        """Declare a new variable (appended last in the order); returns its index."""
        index = len(self._var_names)
        self._var_names.append(name if name is not None else f"x{index}")
        return index

    @property
    def num_vars(self) -> int:
        return len(self._var_names)

    def var_name(self, index: int) -> str:
        return self._var_names[index]

    def var_index(self, name: str) -> int:
        try:
            return self._var_names.index(name)
        except ValueError as exc:
            raise BddError(f"unknown variable {name!r}") from exc

    def num_nodes(self) -> int:
        """Total number of nodes allocated (including terminals)."""
        return len(self._var)

    def ite_cache_size(self) -> int:
        """Current number of memoised ``ite`` results (bounded by
        ``cache_limit`` when one is set)."""
        return len(self._ite_cache)

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------
    def _make_node(self, var: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (var, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._var)
            self._var.append(var)
            self._low.append(low)
            self._high.append(high)
            self._unique[key] = node
        return node

    def var(self, index: int) -> int:
        """The BDD for the single variable ``index``."""
        if index < 0 or index >= self.num_vars:
            raise BddError(f"variable index {index} out of range")
        return self._make_node(index, FALSE, TRUE)

    def nvar(self, index: int) -> int:
        """The BDD for the negation of variable ``index``."""
        if index < 0 or index >= self.num_vars:
            raise BddError(f"variable index {index} out of range")
        return self._make_node(index, TRUE, FALSE)

    def top_var(self, node: int) -> int:
        """The decision variable of ``node`` (terminals have no variable)."""
        if node in (FALSE, TRUE):
            raise BddError("terminal nodes have no variable")
        return self._var[node]

    def cofactors(self, node: int) -> Tuple[int, int]:
        """The (low, high) children of ``node``."""
        if node in (FALSE, TRUE):
            return node, node
        return self._low[node], self._high[node]

    # ------------------------------------------------------------------
    # Core operation: if-then-else
    # ------------------------------------------------------------------
    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``(f AND g) OR (NOT f AND h)``."""
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE and h == FALSE:
            return f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached

        top = min(self._var[f], self._var[g], self._var[h])
        f0, f1 = self._cofactor_at(f, top)
        g0, g1 = self._cofactor_at(g, top)
        h0, h1 = self._cofactor_at(h, top)
        low = self.ite(f0, g0, h0)
        high = self.ite(f1, g1, h1)
        result = self._make_node(top, low, high)
        if self.cache_limit is not None and len(self._ite_cache) >= self.cache_limit:
            self._ite_cache.clear()
        self._ite_cache[key] = result
        return result

    def _cofactor_at(self, node: int, var: int) -> Tuple[int, int]:
        if node in (FALSE, TRUE) or self._var[node] != var:
            return node, node
        return self._low[node], self._high[node]

    # ------------------------------------------------------------------
    # Boolean connectives
    # ------------------------------------------------------------------
    def apply_not(self, f: int) -> int:
        return self.ite(f, FALSE, TRUE)

    def apply_and(self, f: int, g: int) -> int:
        return self.ite(f, g, FALSE)

    def apply_or(self, f: int, g: int) -> int:
        return self.ite(f, TRUE, g)

    def apply_xor(self, f: int, g: int) -> int:
        return self.ite(f, self.apply_not(g), g)

    def apply_implies(self, f: int, g: int) -> int:
        return self.ite(f, g, TRUE)

    def apply_iff(self, f: int, g: int) -> int:
        return self.ite(f, g, self.apply_not(g))

    def conjoin(self, nodes: Iterable[int]) -> int:
        """AND of an iterable of BDDs (TRUE for the empty iterable)."""
        result = TRUE
        for node in nodes:
            result = self.apply_and(result, node)
            if result == FALSE:
                break
        return result

    def disjoin(self, nodes: Iterable[int]) -> int:
        """OR of an iterable of BDDs (FALSE for the empty iterable)."""
        result = FALSE
        for node in nodes:
            result = self.apply_or(result, node)
            if result == TRUE:
                break
        return result

    # ------------------------------------------------------------------
    # Restriction / quantification
    # ------------------------------------------------------------------
    def restrict(self, node: int, assignment: Dict[int, bool]) -> int:
        """Cofactor ``node`` with respect to a partial variable assignment.

        This is the *specialize* operation of Algorithm 1: plugging the
        destination's prefix bits into every policy BDD.
        """
        cache: Dict[int, int] = {}

        def walk(n: int) -> int:
            if n in (FALSE, TRUE):
                return n
            if n in cache:
                return cache[n]
            var = self._var[n]
            low, high = self._low[n], self._high[n]
            if var in assignment:
                result = walk(high if assignment[var] else low)
            else:
                result = self._make_node(var, walk(low), walk(high))
            cache[n] = result
            return result

        return walk(node)

    def exists(self, node: int, variables: Iterable[int]) -> int:
        """Existentially quantify ``variables`` out of ``node``."""
        result = node
        for var in sorted(set(variables), reverse=True):
            result = self.apply_or(
                self.restrict(result, {var: False}), self.restrict(result, {var: True})
            )
        return result

    def forall(self, node: int, variables: Iterable[int]) -> int:
        """Universally quantify ``variables`` out of ``node``."""
        result = node
        for var in sorted(set(variables), reverse=True):
            result = self.apply_and(
                self.restrict(result, {var: False}), self.restrict(result, {var: True})
            )
        return result

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def support(self, node: int) -> List[int]:
        """The variables the function actually depends on, in order."""
        seen = set()
        variables = set()
        stack = [node]
        while stack:
            n = stack.pop()
            if n in (FALSE, TRUE) or n in seen:
                continue
            seen.add(n)
            variables.add(self._var[n])
            stack.append(self._low[n])
            stack.append(self._high[n])
        return sorted(variables)

    def evaluate(self, node: int, assignment: Dict[int, bool]) -> bool:
        """Evaluate the function under a total assignment of its support."""
        n = node
        while n not in (FALSE, TRUE):
            var = self._var[n]
            if var not in assignment:
                raise BddError(f"assignment missing variable {self.var_name(var)}")
            n = self._high[n] if assignment[var] else self._low[n]
        return n == TRUE

    def sat_count(self, node: int, num_vars: Optional[int] = None) -> int:
        """Number of satisfying assignments over ``num_vars`` variables."""
        total_vars = num_vars if num_vars is not None else self.num_vars
        cache: Dict[int, int] = {}

        def count(n: int, level: int) -> int:
            if n == FALSE:
                return 0
            if n == TRUE:
                return 2 ** (total_vars - level)
            key = n
            if key in cache:
                base = cache[key]
            else:
                var = self._var[n]
                base = count(self._low[n], var + 1) + count(self._high[n], var + 1)
                cache[key] = base
            var = self._var[n]
            return base * (2 ** (var - level))

        return count(node, 0)

    def satisfying_assignments(self, node: int) -> Iterator[Dict[int, bool]]:
        """Iterate over partial satisfying assignments (one per BDD path)."""

        def walk(n: int, partial: Dict[int, bool]) -> Iterator[Dict[int, bool]]:
            if n == FALSE:
                return
            if n == TRUE:
                yield dict(partial)
                return
            var = self._var[n]
            partial[var] = False
            yield from walk(self._low[n], partial)
            partial[var] = True
            yield from walk(self._high[n], partial)
            del partial[var]

        yield from walk(node, {})

    def size(self, node: int) -> int:
        """Number of decision nodes reachable from ``node``."""
        seen = set()
        stack = [node]
        while stack:
            n = stack.pop()
            if n in (FALSE, TRUE) or n in seen:
                continue
            seen.add(n)
            stack.append(self._low[n])
            stack.append(self._high[n])
        return len(seen)

    def to_expression(self, node: int) -> str:
        """A human-readable nested if-then-else expression (for debugging)."""
        if node == FALSE:
            return "false"
        if node == TRUE:
            return "true"
        var = self.var_name(self._var[node])
        low = self.to_expression(self._low[node])
        high = self.to_expression(self._high[node])
        return f"(if {var} then {high} else {low})"
