"""A reduced ordered binary decision diagram (ROBDD) engine.

Bonsai encodes every interface's routing policy as a BDD so that checking
whether two interfaces have semantically equivalent transfer functions is a
constant-time pointer comparison (§5.1).  The original implementation uses
JavaBDD; this module is a from-scratch pure-Python replacement providing
the operations Bonsai needs:

* hash-consed node creation (canonical representation),
* memoised ``ite`` / ``apply`` operations (and, or, not, xor, implies, iff),
* ``restrict`` (cofactor) used to *specialize* policies to a destination,
* existential quantification, support computation, satisfiability counts
  and model enumeration (used by tests and the data-plane encoding).

Nodes are identified by integers.  ``0`` and ``1`` are the terminal FALSE
and TRUE nodes.  Because nodes are hash-consed, two functions are
semantically equal iff their node ids are equal -- which is exactly the
property the compression algorithm exploits.
"""

from __future__ import annotations

import sys
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.obs import metrics as _metrics

#: Terminal node ids.
FALSE = 0
TRUE = 1


class BddError(Exception):
    """Raised for invalid BDD operations (unknown variables, bad node ids)."""


class BddManager:
    """Manager owning a shared, hash-consed node store.

    Parameters
    ----------
    num_vars:
        Number of variables to pre-declare.  More can be added later with
        :meth:`add_var`; variable order is the declaration order.
    cache_limit:
        Optional bound on the memoisation cache for :meth:`ite`.  The cache
        is an optimisation only, so when it grows past the limit it is
        simply cleared (clear-on-overflow); correctness is unaffected.  The
        default (``None``) keeps the cache unbounded, which is fine for
        short-lived managers but can dominate memory when one manager
        serves many ``restrict``/``apply`` calls (e.g. specializing the
        policy BDDs of a large network to thousands of destinations).
    """

    #: Registry name under which :func:`repro.bdd.make_manager` exposes
    #: this backend.
    backend_name = "dict"

    def __init__(self, num_vars: int = 0, cache_limit: Optional[int] = None):
        if cache_limit is not None and cache_limit <= 0:
            raise ValueError("cache_limit must be positive (or None for unbounded)")
        self.cache_limit = cache_limit
        # Node storage: parallel arrays var/low/high indexed by node id.
        # Terminals use variable index "infinity" so they sort after all
        # decision variables.
        self._var: List[int] = [sys.maxsize, sys.maxsize]
        self._low: List[int] = [FALSE, TRUE]
        self._high: List[int] = [FALSE, TRUE]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}
        self._var_names: List[str] = []
        for i in range(num_vars):
            self.add_var(f"x{i}")

    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------
    def add_var(self, name: Optional[str] = None) -> int:
        """Declare a new variable (appended last in the order); returns its index."""
        index = len(self._var_names)
        self._var_names.append(name if name is not None else f"x{index}")
        return index

    @property
    def num_vars(self) -> int:
        return len(self._var_names)

    def var_name(self, index: int) -> str:
        return self._var_names[index]

    def var_index(self, name: str) -> int:
        try:
            return self._var_names.index(name)
        except ValueError as exc:
            raise BddError(f"unknown variable {name!r}") from exc

    def num_nodes(self) -> int:
        """Total number of nodes allocated (including terminals)."""
        return len(self._var)

    def ite_cache_size(self) -> int:
        """Current number of memoised ``ite`` results (bounded by
        ``cache_limit`` when one is set)."""
        return len(self._ite_cache)

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------
    def _make_node(self, var: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (var, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._var)
            self._var.append(var)
            self._low.append(low)
            self._high.append(high)
            self._unique[key] = node
        return node

    def var(self, index: int) -> int:
        """The BDD for the single variable ``index``."""
        if index < 0 or index >= self.num_vars:
            raise BddError(f"variable index {index} out of range")
        return self._make_node(index, FALSE, TRUE)

    def nvar(self, index: int) -> int:
        """The BDD for the negation of variable ``index``."""
        if index < 0 or index >= self.num_vars:
            raise BddError(f"variable index {index} out of range")
        return self._make_node(index, TRUE, FALSE)

    def top_var(self, node: int) -> int:
        """The decision variable of ``node`` (terminals have no variable)."""
        if node in (FALSE, TRUE):
            raise BddError("terminal nodes have no variable")
        return self._var[node]

    def cofactors(self, node: int) -> Tuple[int, int]:
        """The (low, high) children of ``node``."""
        if node in (FALSE, TRUE):
            return node, node
        return self._low[node], self._high[node]

    # ------------------------------------------------------------------
    # Core operation: if-then-else
    # ------------------------------------------------------------------
    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``(f AND g) OR (NOT f AND h)``.

        Implemented with an explicit stack (no Python recursion): policy
        BDDs for long ACL / route-map chains can be thousands of variables
        deep, which the old bounded-depth recursive form could not handle
        (``RecursionError``), and the per-call bytecode overhead of the
        stack machine is lower.  Standard-triple normalisation (``ite(f,
        f, h) == ite(f, TRUE, h)``, ``ite(f, g, f) == ite(f, g, FALSE)``)
        plus the usual terminal shortcuts are applied to every subproblem
        before the memo-cache lookup, improving hit rates.
        """
        var = self._var
        low_arr = self._low
        high_arr = self._high
        unique = self._unique
        cache = self._ite_cache
        cache_limit = self.cache_limit

        #: Work stack of flat (phase, a, b, c) frames and a value stack of
        #: node ids.  An EXPAND frame carries a triple to solve (pushing
        #: its children); a COMBINE frame carries the top variable and the
        #: memo key, pops the two child results, builds the node and
        #: memoises it.
        EXPAND, COMBINE = 0, 1
        tasks = [(EXPAND, f, g, h)]
        values: List[int] = []
        push_task = tasks.append
        push_value = values.append
        pop_value = values.pop

        while tasks:
            phase, f, g, h = tasks.pop()
            if phase == COMBINE:
                # f is the top variable, g the memo key; h is unused.
                high = pop_value()
                low = pop_value()
                # _make_node, inlined.
                if low == high:
                    result = low
                else:
                    node_key = (f, low, high)
                    result = unique.get(node_key)
                    if result is None:
                        result = len(var)
                        var.append(f)
                        low_arr.append(low)
                        high_arr.append(high)
                        unique[node_key] = result
                if cache_limit is not None and len(cache) >= cache_limit:
                    cache.clear()
                    _metrics.counter("bdd.ite_cache.overflows").inc()
                cache[g] = result
                push_value(result)
                continue

            # Terminal shortcuts and standard-triple normalisation.
            if f == TRUE:
                push_value(g)
                continue
            if f == FALSE:
                push_value(h)
                continue
            if g == f:
                g = TRUE
            if h == f:
                h = FALSE
            if g == h:
                push_value(g)
                continue
            if g == TRUE and h == FALSE:
                push_value(f)
                continue
            key = (f, g, h)
            cached = cache.get(key)
            if cached is not None:
                push_value(cached)
                continue

            fv, gv, hv = var[f], var[g], var[h]
            top = fv if fv < gv else gv
            if hv < top:
                top = hv
            if fv == top:
                f0, f1 = low_arr[f], high_arr[f]
            else:
                f0 = f1 = f
            if gv == top:
                g0, g1 = low_arr[g], high_arr[g]
            else:
                g0 = g1 = g
            if hv == top:
                h0, h1 = low_arr[h], high_arr[h]
            else:
                h0 = h1 = h
            # Children are pushed high-then-low so the low subproblem is
            # solved first (the recursive evaluation order), keeping node
            # allocation order -- and therefore node ids -- identical to
            # the recursive implementation.
            push_task((COMBINE, top, key, 0))
            push_task((EXPAND, f1, g1, h1))
            push_task((EXPAND, f0, g0, h0))

        return values[-1]

    def _cofactor_at(self, node: int, var: int) -> Tuple[int, int]:
        if node in (FALSE, TRUE) or self._var[node] != var:
            return node, node
        return self._low[node], self._high[node]

    # ------------------------------------------------------------------
    # Boolean connectives
    # ------------------------------------------------------------------
    def apply_not(self, f: int) -> int:
        return self.ite(f, FALSE, TRUE)

    def apply_and(self, f: int, g: int) -> int:
        return self.ite(f, g, FALSE)

    def apply_or(self, f: int, g: int) -> int:
        return self.ite(f, TRUE, g)

    def apply_xor(self, f: int, g: int) -> int:
        return self.ite(f, self.apply_not(g), g)

    def apply_implies(self, f: int, g: int) -> int:
        return self.ite(f, g, TRUE)

    def apply_iff(self, f: int, g: int) -> int:
        return self.ite(f, g, self.apply_not(g))

    def conjoin(self, nodes: Iterable[int]) -> int:
        """AND of an iterable of BDDs (TRUE for the empty iterable)."""
        result = TRUE
        for node in nodes:
            result = self.apply_and(result, node)
            if result == FALSE:
                break
        return result

    def disjoin(self, nodes: Iterable[int]) -> int:
        """OR of an iterable of BDDs (FALSE for the empty iterable)."""
        result = FALSE
        for node in nodes:
            result = self.apply_or(result, node)
            if result == TRUE:
                break
        return result

    # ------------------------------------------------------------------
    # Restriction / quantification
    # ------------------------------------------------------------------
    def restrict(self, node: int, assignment: Dict[int, bool]) -> int:
        """Cofactor ``node`` with respect to a partial variable assignment.

        This is the *specialize* operation of Algorithm 1: plugging the
        destination's prefix bits into every policy BDD.  Iterative
        (explicit stack), so arbitrarily deep policy chains cannot
        overflow Python's recursion limit.
        """
        var_arr = self._var
        low_arr = self._low
        high_arr = self._high
        cache: Dict[int, int] = {}

        EXPAND, COMBINE, MEMO = 0, 1, 2
        tasks = [(EXPAND, node)]
        values: List[int] = []

        while tasks:
            phase, n = tasks.pop()
            if phase == EXPAND:
                if n == FALSE or n == TRUE:
                    values.append(n)
                    continue
                cached = cache.get(n)
                if cached is not None:
                    values.append(cached)
                    continue
                var = var_arr[n]
                if var in assignment:
                    # Follow the assigned branch; MEMO records the result
                    # against ``n`` once the branch is solved.
                    tasks.append((MEMO, n))
                    tasks.append(
                        (EXPAND, high_arr[n] if assignment[var] else low_arr[n])
                    )
                else:
                    tasks.append((COMBINE, n))
                    tasks.append((EXPAND, high_arr[n]))
                    tasks.append((EXPAND, low_arr[n]))
            elif phase == COMBINE:
                high = values.pop()
                low = values.pop()
                result = self._make_node(var_arr[n], low, high)
                cache[n] = result
                values.append(result)
            else:  # MEMO
                cache[n] = values[-1]

        return values[-1]

    def exists(self, node: int, variables: Iterable[int]) -> int:
        """Existentially quantify ``variables`` out of ``node``."""
        result = node
        for var in sorted(set(variables), reverse=True):
            result = self.apply_or(
                self.restrict(result, {var: False}), self.restrict(result, {var: True})
            )
        return result

    def forall(self, node: int, variables: Iterable[int]) -> int:
        """Universally quantify ``variables`` out of ``node``."""
        result = node
        for var in sorted(set(variables), reverse=True):
            result = self.apply_and(
                self.restrict(result, {var: False}), self.restrict(result, {var: True})
            )
        return result

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def support(self, node: int) -> List[int]:
        """The variables the function actually depends on, in order."""
        seen = set()
        variables = set()
        stack = [node]
        while stack:
            n = stack.pop()
            if n in (FALSE, TRUE) or n in seen:
                continue
            seen.add(n)
            variables.add(self._var[n])
            stack.append(self._low[n])
            stack.append(self._high[n])
        return sorted(variables)

    def evaluate(self, node: int, assignment: Dict[int, bool]) -> bool:
        """Evaluate the function under a total assignment of its support."""
        n = node
        while n not in (FALSE, TRUE):
            var = self._var[n]
            if var not in assignment:
                raise BddError(f"assignment missing variable {self.var_name(var)}")
            n = self._high[n] if assignment[var] else self._low[n]
        return n == TRUE

    def _max_support_var(self, node: int) -> int:
        """Largest variable index in the support (-1 for terminals)."""
        best = -1
        seen = set()
        stack = [node]
        while stack:
            n = stack.pop()
            if n in (FALSE, TRUE) or n in seen:
                continue
            seen.add(n)
            if self._var[n] > best:
                best = self._var[n]
            stack.append(self._low[n])
            stack.append(self._high[n])
        return best

    def sat_count(self, node: int, num_vars: Optional[int] = None) -> int:
        """Number of satisfying assignments over ``num_vars`` variables.

        Iterative: the per-node base counts are computed bottom-up over a
        postorder traversal, so deep BDDs cannot overflow the recursion
        limit.  ``num_vars`` must cover the function's support (at least
        the largest support variable + 1); anything smaller would make
        ``2 ** (total_vars - level)`` go negative and silently return a
        float, so it raises :class:`BddError` instead.
        """
        total_vars = num_vars if num_vars is not None else self.num_vars
        if total_vars < 0:
            raise BddError(f"num_vars must be non-negative, got {total_vars}")
        highest = self._max_support_var(node)
        if total_vars < highest + 1:
            raise BddError(
                f"num_vars={total_vars} is smaller than the support of the "
                f"node (needs at least {highest + 1} variables)"
            )
        if node == FALSE:
            return 0
        if node == TRUE:
            return 2**total_vars

        var_arr = self._var
        low_arr = self._low
        high_arr = self._high
        #: base[n] = assignments over variables strictly below var(n).
        base: Dict[int, int] = {}

        def child_count(child: int, level: int) -> int:
            if child == FALSE:
                return 0
            if child == TRUE:
                return 2 ** (total_vars - level)
            return base[child] * (2 ** (var_arr[child] - level))

        stack = [node]
        while stack:
            n = stack[-1]
            if n in base:
                stack.pop()
                continue
            low, high = low_arr[n], high_arr[n]
            pending = [
                child
                for child in (low, high)
                if child not in (FALSE, TRUE) and child not in base
            ]
            if pending:
                stack.extend(pending)
                continue
            stack.pop()
            level = var_arr[n] + 1
            base[n] = child_count(low, level) + child_count(high, level)

        return base[node] * (2 ** var_arr[node])

    def satisfying_assignments(self, node: int) -> Iterator[Dict[int, bool]]:
        """Iterate over partial satisfying assignments (one per BDD path).

        Explicit-stack iterative (the recursive form overflowed on the
        same 1500+-var policy chains ``ite``/``restrict`` were fixed
        for); enumeration order is low branch before high branch.
        """
        VISIT, ASSIGN, UNSET = 0, 1, 2
        partial: Dict[int, bool] = {}
        tasks: List[Tuple[int, int, bool]] = [(VISIT, node, False)]
        var_arr, low_arr, high_arr = self._var, self._low, self._high
        while tasks:
            kind, payload, value = tasks.pop()
            if kind == ASSIGN:
                partial[payload] = value
                continue
            if kind == UNSET:
                del partial[payload]
                continue
            n = payload
            if n == FALSE:
                continue
            if n == TRUE:
                yield dict(partial)
                continue
            var = var_arr[n]
            tasks.append((UNSET, var, False))
            tasks.append((VISIT, high_arr[n], False))
            tasks.append((ASSIGN, var, True))
            tasks.append((VISIT, low_arr[n], False))
            tasks.append((ASSIGN, var, False))

    def size(self, node: int) -> int:
        """Number of decision nodes reachable from ``node``."""
        seen = set()
        stack = [node]
        while stack:
            n = stack.pop()
            if n in (FALSE, TRUE) or n in seen:
                continue
            seen.add(n)
            stack.append(self._low[n])
            stack.append(self._high[n])
        return len(seen)

    def to_expression(self, node: int) -> str:
        """A human-readable nested if-then-else expression (for debugging).

        Explicit-stack postorder with per-node memoisation, so deep
        policy chains cannot overflow the recursion limit.
        """
        expr: Dict[int, str] = {FALSE: "false", TRUE: "true"}
        stack = [node]
        var_arr, low_arr, high_arr = self._var, self._low, self._high
        while stack:
            n = stack[-1]
            if n in expr:
                stack.pop()
                continue
            low, high = low_arr[n], high_arr[n]
            pending = [child for child in (low, high) if child not in expr]
            if pending:
                stack.extend(pending)
                continue
            stack.pop()
            name = self.var_name(var_arr[n])
            expr[n] = f"(if {name} then {expr[high]} else {expr[low]})"
        return expr[node]
