"""An array-backed ROBDD engine with complement edges.

This is the optional high-performance backend behind
:func:`repro.bdd.make_manager` (``backend="array"`` or
``REPRO_BDD_BACKEND=array``).  It exposes exactly the same public surface
as the dict-based :class:`~repro.bdd.manager.BddManager` -- which stays
the retained correctness oracle, the same pattern as
``solve_sweep``/``find_abstraction_partition_reference`` -- but takes the
classic ddlib route to speed:

* **Flat node stores.**  Nodes live in three parallel preallocated
  ``array('q')`` columns (``var``/``low``/``high``) indexed by node id,
  grown by doubling, instead of per-node tuples in a dict.
* **Complement edges.**  A function is an *edge*: ``node_id * 2 +
  complement_bit``.  Negation is a single XOR (the dict backend walks the
  whole BDD), and the usual ite normalisation rules over complements
  roughly double memo-cache hit rates.  The single terminal is node ``0``
  (the constant FALSE), so the module-level ``FALSE == 0`` / ``TRUE == 1``
  constants are valid edges for both backends.
* **Open-addressing tables.**  The unique table and the ite memo cache
  are power-of-two open-addressing arrays with linear probing: the unique
  table rehashes amortised at 2/3 load; the ite cache grows the same way
  when unbounded and is cleared on overflow when a ``cache_limit`` is set
  (the :class:`BddManager` precedent).
* **Fully iterative traversals.**  ``ite``/``restrict``/``sat_count``/
  ``evaluate``/``support``/``size``/``satisfying_assignments``/
  ``to_expression`` all use explicit stacks, so 1500+-variable policy
  chains cannot overflow Python's recursion limit.
* **Ordered n-ary conjunction/disjunction.**  ``conjoin``/``disjoin``
  sort their operands by top variable and fold deepest-first; for the
  literal-chain shapes routing policies produce this turns the dict
  backend's O(n^2) left fold into O(n) node creations.

Semantics are node-id-*insensitive*: the two backends agree on every
function (evaluation, sat counts, supports, equivalence classes of
specialized policy keys) but not on raw ids -- within one manager, equal
edge values still mean semantically equal functions, which is the only
property the compression algorithm relies on.
"""

from __future__ import annotations

import sys
from array import array
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.bdd.manager import FALSE, TRUE, BddError
from repro.obs import metrics as _metrics

#: Sentinel variable index for the terminal node (sorts after all vars).
_TERMINAL_VAR = sys.maxsize

#: Multipliers for the unique-table / cache hash mix.  Kept below 32 bits
#: so the products stay machine-word sized for realistic node counts.
_H1 = 0x9E3779B1
_H2 = 0x85EBCA77
_H3 = 0xC2B2AE3D

def _zeros(size: int) -> array:
    """A zero-filled ``array('q')`` of ``size`` entries."""
    return array("q", bytes(8 * size))


class ArrayBddManager:
    """Array-backed manager with the :class:`BddManager` public surface.

    Parameters
    ----------
    num_vars:
        Number of variables to pre-declare (more via :meth:`add_var`).
    cache_limit:
        Optional bound on the ite memo cache's *entry count*.  Unbounded
        caches grow their table amortised; bounded ones are cleared when
        the entry count reaches the limit (clear-on-overflow), exactly
        like the dict backend.  The cache is an optimisation only.
    """

    backend_name = "array"

    def __init__(self, num_vars: int = 0, cache_limit: Optional[int] = None):
        if cache_limit is not None and cache_limit <= 0:
            raise ValueError("cache_limit must be positive (or None for unbounded)")
        self.cache_limit = cache_limit

        # --- flat node store (node 0 is the FALSE terminal) -----------
        capacity = 1024
        self._var = _zeros(capacity)
        self._low = _zeros(capacity)
        self._high = _zeros(capacity)
        self._var[0] = _TERMINAL_VAR
        self._count = 1  # nodes allocated so far (including the terminal)

        # --- open-addressing unique table (node ids; 0 = empty) -------
        self._usize = 4096  # power of two
        self._umask = self._usize - 1
        self._utab = _zeros(self._usize)

        # --- open-addressing ite cache --------------------------------
        if cache_limit is None:
            csize = 4096
        else:
            csize = 64
            while csize < cache_limit * 2 and csize < 1 << 22:
                csize <<= 1
        self._csize = csize
        self._cmask = csize - 1
        self._cf = array("q", [-1]) * csize  # -1 = empty slot
        self._cg = _zeros(csize)
        self._ch = _zeros(csize)
        self._cr = _zeros(csize)
        self._cfill = 0

        self._var_names: List[str] = []
        for i in range(num_vars):
            self.add_var(f"x{i}")

    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------
    def add_var(self, name: Optional[str] = None) -> int:
        """Declare a new variable (appended last in the order); returns its index."""
        index = len(self._var_names)
        self._var_names.append(name if name is not None else f"x{index}")
        return index

    @property
    def num_vars(self) -> int:
        return len(self._var_names)

    def var_name(self, index: int) -> str:
        return self._var_names[index]

    def var_index(self, name: str) -> int:
        try:
            return self._var_names.index(name)
        except ValueError as exc:
            raise BddError(f"unknown variable {name!r}") from exc

    def num_nodes(self) -> int:
        """Total number of nodes allocated (including the terminal)."""
        return self._count

    def ite_cache_size(self) -> int:
        """Current number of memoised ``ite`` results (bounded by
        ``cache_limit`` when one is set)."""
        return self._cfill

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------
    def _grow_nodes(self) -> None:
        extra = self._count  # double
        self._var.extend(_zeros(extra))
        self._low.extend(_zeros(extra))
        self._high.extend(_zeros(extra))

    def _rehash_unique(self) -> None:
        """Double the unique table and reinsert every node (amortised)."""
        size = self._usize * 2
        mask = size - 1
        table = _zeros(size)
        var_arr, low_arr, high_arr = self._var, self._low, self._high
        for node in range(1, self._count):
            idx = (
                var_arr[node] * _H1 ^ low_arr[node] * _H2 ^ high_arr[node] * _H3
            ) & mask
            while table[idx]:
                idx = (idx + 1) & mask
            table[idx] = node
        self._usize = size
        self._umask = mask
        self._utab = table

    def _insert_node(self, var: int, low: int, high: int, idx: int) -> int:
        """Allocate a node at the free unique-table slot ``idx`` (slow path).

        Assumes the probe already established the node is absent and that
        ``high`` is regular.  Handles store growth and amortised rehash.
        """
        node = self._count
        if node >= len(self._var):
            self._grow_nodes()
        self._var[node] = var
        self._low[node] = low
        self._high[node] = high
        self._count = node + 1
        self._utab[idx] = node
        if self._count * 3 > self._usize * 2:
            self._rehash_unique()
        return node

    def _mk(self, var: int, low: int, high: int) -> int:
        """Canonical (hash-consed) edge for ``ite(var, high, low)``.

        Complement normalisation: the then-edge is never complemented; a
        complemented ``high`` flips both children and returns the node's
        complement edge instead.
        """
        if low == high:
            return low
        out = 0
        if high & 1:
            low ^= 1
            high ^= 1
            out = 1
        utab = self._utab
        mask = self._umask
        var_arr, low_arr, high_arr = self._var, self._low, self._high
        idx = (var * _H1 ^ low * _H2 ^ high * _H3) & mask
        node = utab[idx]
        while node:
            if var_arr[node] == var and low_arr[node] == low and high_arr[node] == high:
                return node << 1 | out
            idx = (idx + 1) & mask
            node = utab[idx]
        return self._insert_node(var, low, high, idx) << 1 | out

    def var(self, index: int) -> int:
        """The BDD edge for the single variable ``index``."""
        if index < 0 or index >= self.num_vars:
            raise BddError(f"variable index {index} out of range")
        return self._mk(index, FALSE, TRUE)

    def nvar(self, index: int) -> int:
        """The BDD edge for the negation of variable ``index``."""
        if index < 0 or index >= self.num_vars:
            raise BddError(f"variable index {index} out of range")
        return self._mk(index, TRUE, FALSE)

    def top_var(self, node: int) -> int:
        """The decision variable of ``node`` (terminals have no variable)."""
        if node >> 1 == 0:
            raise BddError("terminal nodes have no variable")
        return self._var[node >> 1]

    def cofactors(self, node: int) -> Tuple[int, int]:
        """The (low, high) cofactor edges of ``node``."""
        n = node >> 1
        if n == 0:
            return node, node
        c = node & 1
        return self._low[n] ^ c, self._high[n] ^ c

    # ------------------------------------------------------------------
    # ITE cache
    # ------------------------------------------------------------------
    def _cache_clear(self) -> None:
        self._cf = array("q", [-1]) * self._csize
        self._cg = _zeros(self._csize)
        self._ch = _zeros(self._csize)
        self._cr = _zeros(self._csize)
        self._cfill = 0

    def _cache_grow(self) -> None:
        """Double the cache table, re-inserting live entries (amortised)."""
        old_f, old_g, old_h, old_r = self._cf, self._cg, self._ch, self._cr
        old_size = self._csize
        self._csize = old_size * 2
        self._cmask = self._csize - 1
        self._cache_clear()
        cf, cg, ch, cr = self._cf, self._cg, self._ch, self._cr
        mask = self._cmask
        fill = 0
        for slot in range(old_size):
            f = old_f[slot]
            if f < 0:
                continue
            idx = (f * _H1 ^ old_g[slot] * _H2 ^ old_h[slot] * _H3) & mask
            while cf[idx] >= 0:
                idx = (idx + 1) & mask
            cf[idx] = f
            cg[idx] = old_g[slot]
            ch[idx] = old_h[slot]
            cr[idx] = old_r[slot]
            fill += 1
        self._cfill = fill

    # ------------------------------------------------------------------
    # Core operation: if-then-else
    # ------------------------------------------------------------------
    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else over edges: ``(f AND g) OR (NOT f AND h)``.

        Explicit-stack iterative, with the standard complement-edge
        normalisations: the condition and the then-branch are made
        regular (``ite(NOT f, g, h) == ite(f, h, g)``; ``ite(f, NOT g, h)
        == NOT ite(f, g, NOT h)``), so each semantic subproblem hits one
        canonical cache slot.
        """
        var_arr = self._var
        low_arr = self._low
        high_arr = self._high
        cache_limit = self.cache_limit
        # Table references are hoisted to locals for the hot loop and
        # refreshed whenever a slow path (grow / rehash / clear) swaps the
        # underlying arrays out.
        utab, umask = self._utab, self._umask
        cf, cg, ch, cr = self._cf, self._cg, self._ch, self._cr
        cmask, csize = self._cmask, self._csize

        EXPAND, COMBINE = 0, 1
        tasks = [(EXPAND, f, g, h)]
        values: List[int] = []
        push_task = tasks.append
        push_value = values.append
        pop_value = values.pop

        while tasks:
            frame = tasks.pop()
            if frame[0] == COMBINE:
                _, top, f, g, h, out = frame
                high = pop_value()
                low = pop_value()
                # _mk, inlined (hot path: the node already exists).
                if low == high:
                    result = low
                else:
                    nout = 0
                    if high & 1:
                        low ^= 1
                        high ^= 1
                        nout = 1
                    idx = (top * _H1 ^ low * _H2 ^ high * _H3) & umask
                    node = utab[idx]
                    while node:
                        if (
                            var_arr[node] == top
                            and low_arr[node] == low
                            and high_arr[node] == high
                        ):
                            break
                        idx = (idx + 1) & umask
                        node = utab[idx]
                    if not node:
                        node = self._insert_node(top, low, high, idx)
                        utab, umask = self._utab, self._umask
                    result = node << 1 | nout
                # Store in the ite cache (open addressing: probe to a
                # match or an empty slot; load is kept under 2/3).
                idx = (f * _H1 ^ g * _H2 ^ h * _H3) & cmask
                node = cf[idx]
                while node >= 0:
                    if node == f and cg[idx] == g and ch[idx] == h:
                        break
                    idx = (idx + 1) & cmask
                    node = cf[idx]
                if node < 0:
                    self._cfill += 1
                cf[idx] = f
                cg[idx] = g
                ch[idx] = h
                cr[idx] = result
                if cache_limit is not None and (
                    self._cfill >= cache_limit or self._cfill * 3 > csize * 2
                ):
                    # Clear-on-overflow: the cache is an optimisation only
                    # (the second clause keeps the fixed-size table's load
                    # bounded when the limit exceeds its capacity).
                    self._cache_clear()
                    _metrics.counter("bdd.ite_cache.overflows").inc()
                    cf, cg, ch, cr = self._cf, self._cg, self._ch, self._cr
                    cmask, csize = self._cmask, self._csize
                elif self._cfill * 3 > csize * 2:
                    self._cache_grow()
                    cf, cg, ch, cr = self._cf, self._cg, self._ch, self._cr
                    cmask, csize = self._cmask, self._csize
                push_value(result ^ out)
                continue

            _, f, g, h = frame
            out = 0
            # Terminal shortcuts.
            if f == TRUE:
                push_value(g ^ out)
                continue
            if f == FALSE:
                push_value(h ^ out)
                continue
            # Normalise: condition regular.
            if f & 1:
                f ^= 1
                g, h = h, g
            # Standard-triple normalisation over complements.
            if g == f:
                g = TRUE
            elif g == f ^ 1:
                g = FALSE
            if h == f:
                h = FALSE
            elif h == f ^ 1:
                h = TRUE
            if g == h:
                push_value(g ^ out)
                continue
            if g == TRUE and h == FALSE:
                push_value(f ^ out)
                continue
            if g == FALSE and h == TRUE:
                push_value(f ^ 1 ^ out)
                continue
            # Then-branch regular: ite(f, NOT g, h) = NOT ite(f, g, NOT h).
            if g & 1:
                g ^= 1
                h ^= 1
                out ^= 1

            # Cache lookup (probe to a match or an empty slot).
            idx = (f * _H1 ^ g * _H2 ^ h * _H3) & cmask
            node = cf[idx]
            hit = False
            while node >= 0:
                if node == f and cg[idx] == g and ch[idx] == h:
                    push_value(cr[idx] ^ out)
                    hit = True
                    break
                idx = (idx + 1) & cmask
                node = cf[idx]
            if hit:
                continue

            fn, gn, hn = f >> 1, g >> 1, h >> 1
            fv = var_arr[fn]
            gv = var_arr[gn] if gn else _TERMINAL_VAR
            hv = var_arr[hn] if hn else _TERMINAL_VAR
            top = fv if fv < gv else gv
            if hv < top:
                top = hv
            if fv == top:
                fc = f & 1
                f0, f1 = low_arr[fn] ^ fc, high_arr[fn] ^ fc
            else:
                f0 = f1 = f
            if gv == top:
                gc = g & 1
                g0, g1 = low_arr[gn] ^ gc, high_arr[gn] ^ gc
            else:
                g0 = g1 = g
            if hv == top:
                hc = h & 1
                h0, h1 = low_arr[hn] ^ hc, high_arr[hn] ^ hc
            else:
                h0 = h1 = h
            # Low subproblem solved first (matches the oracle's order).
            push_task((COMBINE, top, f, g, h, out))
            push_task((EXPAND, f1, g1, h1))
            push_task((EXPAND, f0, g0, h0))

        return values[-1]

    # ------------------------------------------------------------------
    # Boolean connectives
    # ------------------------------------------------------------------
    def apply_not(self, f: int) -> int:
        # Complement edges make negation a bit flip.
        return f ^ 1

    def apply_and(self, f: int, g: int) -> int:
        return self.ite(f, g, FALSE)

    def apply_or(self, f: int, g: int) -> int:
        return self.ite(f, TRUE, g)

    def apply_xor(self, f: int, g: int) -> int:
        return self.ite(f, g ^ 1, g)

    def apply_implies(self, f: int, g: int) -> int:
        return self.ite(f, g, TRUE)

    def apply_iff(self, f: int, g: int) -> int:
        return self.ite(f, g, g ^ 1)

    def _ordered_fold(self, nodes: Iterable[int], conjunction: bool) -> int:
        """AND/OR an iterable, folding deepest top variable first.

        Both connectives are commutative and associative, so the fold
        order is free; sorting by top variable means each step combines
        an operand with an accumulator whose support lies at or below it.
        For the literal/chain shapes that dominate policy encoding this
        makes every step O(1) instead of a walk of the whole accumulator.
        """
        absorbing = FALSE if conjunction else TRUE
        identity = TRUE if conjunction else FALSE
        operands: List[int] = []
        for node in nodes:
            if node == absorbing:
                return absorbing
            if node != identity:
                operands.append(node)
        if not operands:
            return identity
        var_arr = self._var
        operands.sort(key=lambda edge: var_arr[edge >> 1])
        result = operands.pop()
        combine = self.apply_and if conjunction else self.apply_or
        while operands:
            result = combine(operands.pop(), result)
            if result == absorbing:
                return absorbing
        return result

    def conjoin(self, nodes: Iterable[int]) -> int:
        """AND of an iterable of BDDs (TRUE for the empty iterable)."""
        return self._ordered_fold(nodes, conjunction=True)

    def disjoin(self, nodes: Iterable[int]) -> int:
        """OR of an iterable of BDDs (FALSE for the empty iterable)."""
        return self._ordered_fold(nodes, conjunction=False)

    # ------------------------------------------------------------------
    # Restriction / quantification
    # ------------------------------------------------------------------
    def restrict(self, node: int, assignment: Dict[int, bool]) -> int:
        """Cofactor ``node`` with respect to a partial variable assignment.

        Iterative; results are memoised per *node id* (the regular
        function), with the incoming complement bit re-applied on exit,
        so both polarities of a shared subgraph hit one cache entry.
        """
        var_arr = self._var
        low_arr = self._low
        high_arr = self._high
        cache: Dict[int, int] = {}

        EXPAND, COMBINE, MEMO = 0, 1, 2
        tasks: List[Tuple[int, int, int]] = [(EXPAND, node, 0)]
        values: List[int] = []

        while tasks:
            phase, n, c = tasks.pop()
            if phase == EXPAND:
                c = n & 1
                n >>= 1
                if n == 0:
                    values.append(c)
                    continue
                cached = cache.get(n)
                if cached is not None:
                    values.append(cached ^ c)
                    continue
                var = var_arr[n]
                if var in assignment:
                    tasks.append((MEMO, n, c))
                    tasks.append(
                        (EXPAND, high_arr[n] if assignment[var] else low_arr[n], 0)
                    )
                else:
                    tasks.append((COMBINE, n, c))
                    tasks.append((EXPAND, high_arr[n], 0))
                    tasks.append((EXPAND, low_arr[n], 0))
            elif phase == COMBINE:
                high = values.pop()
                low = values.pop()
                result = self._mk(var_arr[n], low, high)
                cache[n] = result
                values.append(result ^ c)
            else:  # MEMO
                result = values.pop()
                cache[n] = result
                values.append(result ^ c)

        return values[-1]

    def exists(self, node: int, variables: Iterable[int]) -> int:
        """Existentially quantify ``variables`` out of ``node``."""
        result = node
        for var in sorted(set(variables), reverse=True):
            result = self.apply_or(
                self.restrict(result, {var: False}), self.restrict(result, {var: True})
            )
        return result

    def forall(self, node: int, variables: Iterable[int]) -> int:
        """Universally quantify ``variables`` out of ``node``."""
        result = node
        for var in sorted(set(variables), reverse=True):
            result = self.apply_and(
                self.restrict(result, {var: False}), self.restrict(result, {var: True})
            )
        return result

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def support(self, node: int) -> List[int]:
        """The variables the function actually depends on, in order."""
        seen = set()
        variables = set()
        stack = [node >> 1]
        while stack:
            n = stack.pop()
            if n == 0 or n in seen:
                continue
            seen.add(n)
            variables.add(self._var[n])
            stack.append(self._low[n] >> 1)
            stack.append(self._high[n] >> 1)
        return sorted(variables)

    def evaluate(self, node: int, assignment: Dict[int, bool]) -> bool:
        """Evaluate the function under a total assignment of its support."""
        edge = node
        while edge >> 1:
            n = edge >> 1
            var = self._var[n]
            if var not in assignment:
                raise BddError(f"assignment missing variable {self.var_name(var)}")
            child = self._high[n] if assignment[var] else self._low[n]
            edge = child ^ (edge & 1)
        return edge == TRUE

    def _max_support_var(self, node: int) -> int:
        """Largest variable index in the support (-1 for terminals)."""
        best = -1
        seen = set()
        stack = [node >> 1]
        while stack:
            n = stack.pop()
            if n == 0 or n in seen:
                continue
            seen.add(n)
            if self._var[n] > best:
                best = self._var[n]
            stack.append(self._low[n] >> 1)
            stack.append(self._high[n] >> 1)
        return best

    def sat_count(self, node: int, num_vars: Optional[int] = None) -> int:
        """Number of satisfying assignments over ``num_vars`` variables.

        ``num_vars`` must cover the function's support (at least the
        largest support variable + 1); anything smaller would make the
        count meaningless, so it raises :class:`BddError` instead.
        """
        total_vars = num_vars if num_vars is not None else self.num_vars
        if total_vars < 0:
            raise BddError(f"num_vars must be non-negative, got {total_vars}")
        highest = self._max_support_var(node)
        if total_vars < highest + 1:
            raise BddError(
                f"num_vars={total_vars} is smaller than the support of the "
                f"node (needs at least {highest + 1} variables)"
            )
        if node == FALSE:
            return 0
        if node == TRUE:
            return 2**total_vars

        var_arr = self._var
        low_arr = self._low
        high_arr = self._high
        #: base[n] = satisfying assignments of the *regular* function of
        #: node ``n`` over variables strictly below ``var(n)``.
        base: Dict[int, int] = {}

        def child_count(child_edge: int, level: int) -> int:
            child = child_edge >> 1
            if child == 0:
                count = 0
            else:
                count = base[child] * (2 ** (var_arr[child] - level))
            if child_edge & 1:
                return 2 ** (total_vars - level) - count
            return count

        root = node >> 1
        stack = [root]
        while stack:
            n = stack[-1]
            if n in base:
                stack.pop()
                continue
            pending = [
                child
                for child in (low_arr[n] >> 1, high_arr[n] >> 1)
                if child != 0 and child not in base
            ]
            if pending:
                stack.extend(pending)
                continue
            stack.pop()
            level = var_arr[n] + 1
            base[n] = child_count(low_arr[n], level) + child_count(high_arr[n], level)

        count = base[root] * (2 ** var_arr[root])
        if node & 1:
            return 2**total_vars - count
        return count

    def satisfying_assignments(self, node: int) -> Iterator[Dict[int, bool]]:
        """Iterate over partial satisfying assignments (one per BDD path).

        Explicit-stack iterative; the enumeration order (low branch
        before high branch) matches the dict backend.
        """
        VISIT, ASSIGN, UNSET = 0, 1, 2
        partial: Dict[int, bool] = {}
        tasks: List[Tuple[int, int, bool]] = [(VISIT, node, False)]
        var_arr, low_arr, high_arr = self._var, self._low, self._high
        while tasks:
            kind, payload, value = tasks.pop()
            if kind == ASSIGN:
                partial[payload] = value
                continue
            if kind == UNSET:
                del partial[payload]
                continue
            edge = payload
            n = edge >> 1
            if n == 0:
                if edge == TRUE:
                    yield dict(partial)
                continue
            c = edge & 1
            var = var_arr[n]
            tasks.append((UNSET, var, False))
            tasks.append((VISIT, high_arr[n] ^ c, False))
            tasks.append((ASSIGN, var, True))
            tasks.append((VISIT, low_arr[n] ^ c, False))
            tasks.append((ASSIGN, var, False))

    def size(self, node: int) -> int:
        """Number of decision nodes reachable from ``node``."""
        seen = set()
        stack = [node >> 1]
        while stack:
            n = stack.pop()
            if n == 0 or n in seen:
                continue
            seen.add(n)
            stack.append(self._low[n] >> 1)
            stack.append(self._high[n] >> 1)
        return len(seen)

    def to_expression(self, node: int) -> str:
        """A human-readable nested if-then-else expression (for debugging).

        Explicit-stack postorder with per-edge memoisation, so deep
        policy chains cannot overflow the recursion limit.
        """
        expr: Dict[int, str] = {FALSE: "false", TRUE: "true"}
        stack = [node]
        var_arr, low_arr, high_arr = self._var, self._low, self._high
        while stack:
            edge = stack[-1]
            if edge in expr:
                stack.pop()
                continue
            n = edge >> 1
            c = edge & 1
            low, high = low_arr[n] ^ c, high_arr[n] ^ c
            pending = [child for child in (low, high) if child not in expr]
            if pending:
                stack.extend(pending)
                continue
            stack.pop()
            name = self.var_name(var_arr[n])
            expr[edge] = f"(if {name} then {expr[high]} else {expr[low]})"
        return expr[node]
