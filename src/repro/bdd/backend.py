"""BDD backend registry and selection seam.

Two interchangeable implementations of the manager surface exist:

* ``"dict"`` -- :class:`repro.bdd.manager.BddManager`, hash-consed
  dict-of-tuples node store.  Retained as the correctness oracle, the
  same pattern as ``solve_sweep`` / ``find_abstraction_partition_reference``.
* ``"array"`` -- :class:`repro.bdd.arrays.ArrayBddManager`, flat
  preallocated int arrays with open-addressing unique/ite tables and
  complement edges; the fast backend.

Call sites construct managers through :func:`make_manager` so the
backend can be switched without code changes: pass ``backend=`` or set
the ``REPRO_BDD_BACKEND`` environment variable (read at construction
time, so tests can monkeypatch it).  Node *ids* are backend-specific --
only within-manager equality and the semantic operations (evaluate,
sat_count, support, restrict, quantification) are portable across
backends.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Optional

from repro.bdd.arrays import ArrayBddManager
from repro.bdd.manager import BddError, BddManager

#: Environment variable naming the default backend for ``make_manager``.
BACKEND_ENV_VAR = "REPRO_BDD_BACKEND"

#: Backend used when neither ``backend=`` nor the environment selects one.
DEFAULT_BACKEND = "dict"

_REGISTRY: Dict[str, Callable[..., object]] = {}


def register_backend(name: str, factory: Callable[..., object]) -> None:
    """Register ``factory`` (a BddManager-compatible constructor) under
    ``name``.  Re-registering a name replaces the previous factory."""
    _REGISTRY[name] = factory


def available_backends() -> list:
    """Registered backend names, sorted."""
    return sorted(_REGISTRY)


def resolve_backend(backend: Optional[str] = None) -> str:
    """The backend name an explicit argument / the environment selects.

    Resolution order: explicit ``backend`` argument, then the
    ``REPRO_BDD_BACKEND`` environment variable, then
    :data:`DEFAULT_BACKEND`.  Unknown names raise :class:`BddError`.
    """
    name = backend or os.environ.get(BACKEND_ENV_VAR) or DEFAULT_BACKEND
    if name not in _REGISTRY:
        raise BddError(
            f"unknown BDD backend {name!r} (available: {', '.join(available_backends())})"
        )
    return name


def make_manager(
    num_vars: int = 0,
    cache_limit: Optional[int] = None,
    backend: Optional[str] = None,
):
    """Construct a BDD manager from the selected backend.

    The returned object exposes the full ``BddManager`` surface
    (``add_var``/``var``/``nvar``/``ite``/``apply_*``/``conjoin``/
    ``disjoin``/``restrict``/``exists``/``forall``/``support``/
    ``evaluate``/``sat_count``/``satisfying_assignments``/``size``/
    ``to_expression``); which concrete class backs it is reported by its
    ``backend_name`` attribute.
    """
    factory = _REGISTRY[resolve_backend(backend)]
    return factory(num_vars=num_vars, cache_limit=cache_limit)


register_backend(BddManager.backend_name, BddManager)
register_backend(ArrayBddManager.backend_name, ArrayBddManager)
