"""Encode per-interface routing policy as BDDs (§5.1, Figure 10).

For each directed edge, Bonsai encodes the combined effect of the sender's
export route map, the receiver's import route map and the receiver's
outbound data-plane ACL as a single BDD relating *input* announcement state
to *output* announcement state.  Because BDDs are canonical and
hash-consed, two interfaces have semantically identical policies for a
destination iff their specialized BDD identifiers are equal -- an O(1)
check once the BDDs exist.

Variables
---------
* one input/output pair per community value that is *matched on* anywhere
  in the network (communities that are attached but never matched are
  irrelevant to behaviour and deliberately not encoded -- this is the
  attribute abstraction that reduced 112 roles to 26 in the paper's
  datacenter);
* one input variable per distinct prefix-list (semantically: "the
  destination prefix is permitted by this list"), restricted to a constant
  when the BDD is *specialized* to a destination;
* one input variable per distinct ACL ("the ACL permits the destination");
* a one-hot block of output variables for the local-preference value
  assigned (including "unchanged");
* a one-hot block for the number of extra AS-path prepends;
* an output variable for "announcement dropped" and one for "traffic
  dropped by ACL".
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Optional, Tuple

from repro.bdd.backend import make_manager
from repro.obs import metrics as _metrics
from repro.bdd.manager import FALSE, TRUE
from repro.config.device import DeviceConfig
from repro.config.network import Network
from repro.config.prefix import Prefix
from repro.config.routemap import PrefixList, RouteMap
from repro.config.transfer import CompiledEdge, compile_edges
from repro.topology.graph import Edge

#: Marker used in the local-preference one-hot block for "not modified".
UNCHANGED = "unchanged"


@dataclass(frozen=True)
class _SymbolicState:
    """Symbolic announcement state during route-map evaluation.

    ``dropped`` is a BDD over input variables; ``communities`` maps each
    encoded community to the BDD of "the announcement currently carries
    it"; ``local_pref`` and ``prepends`` are case lists of (guard, value)
    pairs whose guards partition the non-dropped space.
    """

    dropped: int
    communities: Tuple[Tuple[str, int], ...]
    local_pref: Tuple[Tuple[int, object], ...]
    prepends: Tuple[Tuple[int, int], ...]


class PolicyBddEncoder:
    """Encodes and specializes per-edge policies for one network."""

    def __init__(
        self,
        network: Network,
        track_all_communities: bool = False,
        specialize_cache_limit: int = 4096,
        bdd_cache_limit: Optional[int] = None,
        backend: Optional[str] = None,
    ):
        """``track_all_communities`` also allocates variables for communities
        that are attached but never matched on.  Bonsai's default is to
        ignore them (they cannot influence behaviour); tracking them
        reproduces the paper's "112 roles before / 26 after" observation
        and is used by the role-count benchmark.

        ``specialize_cache_limit`` bounds the LRU cache of specialization
        results: many destination equivalence classes induce the *same*
        restriction assignment (every /24 of the site aggregate looks alike
        to the prefix lists), so caching ``(bdd, assignment) -> cofactor``
        makes repeated per-class specialization nearly free.  Set it to 0
        to disable the cache.

        ``bdd_cache_limit`` bounds the underlying manager's ``ite`` memo
        cache (see :class:`~repro.bdd.manager.BddManager`): an encoder that
        specializes policies to many destinations on one manager is exactly
        the workload where that cache can otherwise grow without bound.

        ``backend`` selects the BDD manager implementation (``"dict"`` or
        ``"array"``); the default defers to the ``REPRO_BDD_BACKEND``
        environment variable via :func:`repro.bdd.make_manager`."""
        self.network = network
        self.track_all_communities = track_all_communities
        self.manager = make_manager(cache_limit=bdd_cache_limit, backend=backend)
        self.specialize_cache_limit = specialize_cache_limit
        self._specialize_cache: "OrderedDict[Tuple[int, Tuple[Tuple[int, bool], ...]], int]" = (
            OrderedDict()
        )
        self._specialize_hits = 0
        self._specialize_misses = 0
        self._matched_communities = tuple(sorted(self._collect_matched_communities()))
        self._lp_values: Tuple[object, ...] = tuple(
            [UNCHANGED] + sorted(self._collect_local_prefs())
        )
        self._prepend_values = tuple(sorted(self._collect_prepends()))

        # --- variable allocation -------------------------------------
        self._prefix_list_vars: Dict[Hashable, int] = {}
        self._acl_vars: Dict[Hashable, int] = {}
        self._community_in: Dict[str, int] = {}
        self._community_out: Dict[str, int] = {}
        for community in self._matched_communities:
            self._community_in[community] = self.manager.add_var(f"c[{community}]")
            self._community_out[community] = self.manager.add_var(f"c'[{community}]")
        self._lp_vars: Dict[object, int] = {
            value: self.manager.add_var(f"lp'[{value}]") for value in self._lp_values
        }
        self._prepend_vars: Dict[int, int] = {
            value: self.manager.add_var(f"prepend'[{value}]") for value in self._prepend_values
        }
        self._drop_var = self.manager.add_var("drop'")
        self._acl_deny_var = self.manager.add_var("acl-deny'")
        self._no_bgp_var = self.manager.add_var("no-bgp-session")

        self._edge_cache: Dict[Hashable, int] = {}
        #: Edge -> BDD shortcut.  The encoded BDD depends only on the
        #: destination-invariant parts of a compiled edge (BGP session,
        #: route maps, interface ACL *names*), so once an edge is encoded
        #: the semantic-key construction (which sorts the referenced
        #: community/prefix lists on every call) can be skipped entirely
        #: for later destinations.  Like the encoder as a whole (whose
        #: variable universe is fixed at construction), this assumes the
        #: device configurations do not change under a live encoder.
        self._edge_bdd: Dict[Edge, int] = {}

    # ------------------------------------------------------------------
    # Universe discovery
    # ------------------------------------------------------------------
    def _collect_matched_communities(self) -> FrozenSet[str]:
        matched = set()
        for device in self.network.devices.values():
            matched |= device.matched_communities()
            if self.track_all_communities:
                matched |= device.set_communities()
        return frozenset(matched)

    def _collect_local_prefs(self) -> FrozenSet[int]:
        values = set()
        for device in self.network.devices.values():
            for route_map in device.route_maps.values():
                values |= route_map.local_pref_values()
        return frozenset(values)

    def _collect_prepends(self) -> FrozenSet[int]:
        values = {0}
        for device in self.network.devices.values():
            for route_map in device.route_maps.values():
                values |= {clause.prepend_as for clause in route_map.clauses}
        return frozenset(values)

    # ------------------------------------------------------------------
    # Structural variables for prefix lists and ACLs
    # ------------------------------------------------------------------
    def _prefix_list_var(self, prefix_list: PrefixList) -> int:
        key = (prefix_list.entries,)
        if key not in self._prefix_list_vars:
            self._prefix_list_vars[key] = self.manager.add_var(
                f"pl[{len(self._prefix_list_vars)}]"
            )
        return self._prefix_list_vars[key]

    def _acl_var(self, acl) -> int:
        key = (acl.lines, acl.default_action)
        if key not in self._acl_vars:
            self._acl_vars[key] = self.manager.add_var(f"acl[{len(self._acl_vars)}]")
        return self._acl_vars[key]

    # ------------------------------------------------------------------
    # Route-map symbolic evaluation
    # ------------------------------------------------------------------
    def _initial_state(self) -> _SymbolicState:
        communities = tuple(
            (community, self.manager.var(self._community_in[community]))
            for community in self._matched_communities
        )
        return _SymbolicState(
            dropped=FALSE,
            communities=communities,
            local_pref=((TRUE, UNCHANGED),),
            prepends=((TRUE, 0),),
        )

    def _clause_match_bdd(
        self, clause, device: DeviceConfig, state: _SymbolicState
    ) -> int:
        manager = self.manager
        match = TRUE
        if clause.match_community_lists:
            community_match = FALSE
            for name in clause.match_community_lists:
                community_list = device.community_lists.get(name)
                if community_list is None:
                    continue
                for value in community_list.communities:
                    current = dict(state.communities).get(value)
                    if current is None:
                        # A community that is never matched anywhere else in
                        # the network still matters *here*: model it as
                        # absent (the encoder only tracks matched ones, and
                        # by construction this value is in the matched set,
                        # so this branch is defensive).
                        continue
                    community_match = manager.apply_or(community_match, current)
            match = manager.apply_and(match, community_match)
        if clause.match_prefix_lists:
            prefix_match = FALSE
            for name in clause.match_prefix_lists:
                prefix_list = device.prefix_lists.get(name)
                if prefix_list is None:
                    continue
                prefix_match = manager.apply_or(
                    prefix_match, manager.var(self._prefix_list_var(prefix_list))
                )
            match = manager.apply_and(match, prefix_match)
        return match

    def _apply_route_map(
        self, route_map: Optional[RouteMap], device: DeviceConfig, state: _SymbolicState
    ) -> _SymbolicState:
        """Symbolically evaluate ``route_map`` on ``state``."""
        manager = self.manager
        if route_map is None:
            return state

        dropped = state.dropped
        communities = dict(state.communities)
        local_pref = list(state.local_pref)
        prepends = list(state.prepends)
        #: BDD of announcements not yet decided by an earlier clause.
        unmatched = manager.apply_not(dropped)

        for clause in route_map.clauses:
            clause_match = self._clause_match_bdd(clause, device, state)
            applies = manager.apply_and(unmatched, clause_match)
            if applies == FALSE:
                continue
            if clause.action == "deny":
                dropped = manager.apply_or(dropped, applies)
            else:
                if clause.set_local_pref is not None:
                    local_pref = [
                        (manager.apply_and(guard, manager.apply_not(applies)), value)
                        for guard, value in local_pref
                    ] + [(applies, clause.set_local_pref)]
                if clause.prepend_as:
                    prepends = [
                        (manager.apply_and(guard, manager.apply_not(applies)), value)
                        for guard, value in prepends
                    ] + [(applies, clause.prepend_as)]
                for community in clause.set_communities:
                    if community in communities:
                        communities[community] = manager.apply_or(
                            communities[community], applies
                        )
                for community in clause.delete_communities:
                    if community in communities:
                        communities[community] = manager.apply_and(
                            communities[community], manager.apply_not(applies)
                        )
            unmatched = manager.apply_and(unmatched, manager.apply_not(clause_match))

        # Announcements matching no clause are dropped (implicit deny).
        dropped = manager.apply_or(dropped, unmatched)
        return _SymbolicState(
            dropped=dropped,
            communities=tuple(sorted(communities.items())),
            local_pref=tuple(local_pref),
            prepends=tuple(prepends),
        )

    # ------------------------------------------------------------------
    # Edge encoding
    # ------------------------------------------------------------------
    def _edge_cache_key(self, info: CompiledEdge) -> Hashable:
        receiver = self.network.devices[info.receiver]
        sender = self.network.devices[info.sender]

        def map_signature(route_map: Optional[RouteMap], device: DeviceConfig) -> Hashable:
            if route_map is None:
                return None
            lists = tuple(
                sorted(
                    (name, device.community_lists[name].communities)
                    for name in route_map.referenced_community_lists()
                    if name in device.community_lists
                )
            )
            prefix_lists = tuple(
                sorted(
                    (name, device.prefix_lists[name].entries)
                    for name in route_map.referenced_prefix_lists()
                    if name in device.prefix_lists
                )
            )
            return (route_map.clauses, lists, prefix_lists)

        acl_name = receiver.interface_acls.get(info.sender)
        acl = receiver.acls.get(acl_name) if acl_name else None
        return (
            info.has_bgp,
            info.ibgp,
            map_signature(info.export_map, sender),
            map_signature(info.import_map, receiver),
            (acl.lines, acl.default_action) if acl is not None else None,
        )

    def encode_edge(self, info: CompiledEdge) -> int:
        """The (destination-generic) policy BDD for one compiled edge."""
        by_edge = self._edge_bdd.get(info.edge)
        if by_edge is not None:
            return by_edge
        key = self._edge_cache_key(info)
        cached = self._edge_cache.get(key)
        if cached is not None:
            self._edge_bdd[info.edge] = cached
            return cached
        manager = self.manager

        if not info.has_bgp:
            result = manager.var(self._no_bgp_var)
        else:
            receiver = self.network.devices[info.receiver]
            sender = self.network.devices[info.sender]
            state = self._initial_state()
            state = self._apply_route_map(info.export_map, sender, state)
            state = self._apply_route_map(info.import_map, receiver, state)

            conjuncts: List[int] = [manager.nvar(self._no_bgp_var)]
            conjuncts.append(
                manager.apply_iff(manager.var(self._drop_var), state.dropped)
            )
            for community, current in state.communities:
                conjuncts.append(
                    manager.apply_iff(
                        manager.var(self._community_out[community]), current
                    )
                )
            for value, var in self._lp_vars.items():
                guard = manager.disjoin(
                    g for g, assigned in state.local_pref if assigned == value
                )
                conjuncts.append(manager.apply_iff(manager.var(var), guard))
            for value, var in self._prepend_vars.items():
                guard = manager.disjoin(
                    g for g, assigned in state.prepends if assigned == value
                )
                conjuncts.append(manager.apply_iff(manager.var(var), guard))
            result = manager.conjoin(conjuncts)

        # The receiver's outbound ACL towards the sender is folded in via a
        # dedicated variable (restricted during specialization).
        receiver_cfg = self.network.devices[info.receiver]
        acl_name = receiver_cfg.interface_acls.get(info.sender)
        if acl_name and acl_name in receiver_cfg.acls:
            acl_var = self._acl_var(receiver_cfg.acls[acl_name])
            result = self.manager.apply_and(
                result,
                self.manager.apply_iff(
                    self.manager.var(self._acl_deny_var),
                    self.manager.nvar(acl_var),
                ),
            )
        else:
            result = self.manager.apply_and(
                result, self.manager.nvar(self._acl_deny_var)
            )
        self._edge_cache[key] = result
        self._edge_bdd[info.edge] = result
        return result

    def encode_all_edges(
        self, compiled: Optional[Dict[Edge, CompiledEdge]] = None,
        destination: Optional[Prefix] = None,
    ) -> Dict[Edge, int]:
        """Encode every edge of the network (``destination`` only picks the
        static/ACL context for compilation; the BDDs themselves are generic)."""
        if compiled is None:
            if destination is None:
                destination = Prefix.parse("0.0.0.0/0")
            compiled = compile_edges(self.network, destination)
        return {edge: self.encode_edge(info) for edge, info in compiled.items()}

    # ------------------------------------------------------------------
    # Specialization (Algorithm 1, line 2)
    # ------------------------------------------------------------------
    def specialization_assignment(self, destination: Prefix) -> Dict[int, bool]:
        """The variable assignment that plugs in a concrete destination."""
        assignment: Dict[int, bool] = {}
        for (entries,), var in self._prefix_list_vars.items():
            assignment[var] = PrefixList(name="_", entries=entries).permits(destination)
        for (lines, default_action), var in self._acl_vars.items():
            from repro.config.acl import Acl

            assignment[var] = Acl(
                name="_", lines=lines, default_action=default_action
            ).permits(destination)
        return assignment

    def _restrict_cached(
        self, bdd: int, assignment: Dict[int, bool], assignment_key: Tuple[Tuple[int, bool], ...]
    ) -> int:
        """LRU-cached :meth:`BddManager.restrict`.

        The key pairs the BDD identity with the canonical assignment, so
        equivalence classes whose destinations restrict identically (the
        common case: every generated /24 satisfies the same prefix lists)
        reuse each other's cofactors instead of re-walking the BDD.
        """
        if self.specialize_cache_limit <= 0:
            return self.manager.restrict(bdd, assignment)
        key = (bdd, assignment_key)
        cached = self._specialize_cache.get(key)
        if cached is not None:
            self._specialize_cache.move_to_end(key)
            self._specialize_hits += 1
            return cached
        self._specialize_misses += 1
        result = self.manager.restrict(bdd, assignment)
        self._specialize_cache[key] = result
        if len(self._specialize_cache) > self.specialize_cache_limit:
            self._specialize_cache.popitem(last=False)
        return result

    def specialize_cache_info(self) -> Dict[str, int]:
        """Hit/miss/size counters for the specialization LRU cache."""
        return {
            "hits": self._specialize_hits,
            "misses": self._specialize_misses,
            "size": len(self._specialize_cache),
            "limit": self.specialize_cache_limit,
        }

    def specialize(self, bdd: int, destination: Prefix) -> int:
        """Restrict a generic policy BDD to a concrete destination prefix."""
        assignment = self.specialization_assignment(destination)
        key = tuple(sorted(assignment.items()))
        return self._restrict_cached(bdd, assignment, key)

    def specialized_policy_keys(
        self, destination: Prefix, compiled: Optional[Dict[Edge, CompiledEdge]] = None
    ) -> Dict[Edge, Hashable]:
        """Per-edge policy keys for one destination: the specialized BDD id
        plus the non-BGP parts of the edge policy (static routes, OSPF cost)."""
        if compiled is None:
            compiled = compile_edges(self.network, destination)
        # Encode every edge *before* computing the assignment: encoding may
        # allocate prefix-list/ACL variables, and the assignment must cover
        # all of them for the specialization to be complete.
        bdds = {edge: self.encode_edge(info) for edge, info in compiled.items()}
        assignment = self.specialization_assignment(destination)
        assignment_key = tuple(sorted(assignment.items()))
        keys: Dict[Edge, Hashable] = {}
        # The per-edge loop keeps its fast local cache counters; their
        # delta is absorbed into the obs registry once per destination.
        hits0, misses0 = self._specialize_hits, self._specialize_misses
        for edge, info in compiled.items():
            bdd = bdds[edge]
            specialized = self._restrict_cached(bdd, assignment, assignment_key)
            keys[edge] = (
                specialized,
                info.has_static,
                info.has_ospf,
                info.ospf_cost if info.has_ospf else None,
            )
        _metrics.absorb_cache_info(
            "bdd.specialize_cache",
            {"hits": hits0, "misses": misses0},
            {"hits": self._specialize_hits, "misses": self._specialize_misses},
            keys=("hits", "misses"),
        )
        return keys

    # ------------------------------------------------------------------
    # Reporting helpers
    # ------------------------------------------------------------------
    def unique_role_count(
        self, destination: Optional[Prefix] = None, ignore_static_routes: bool = False
    ) -> int:
        """Number of distinct device "roles" (§8): devices grouped by the
        multiset of their outgoing interface policies.

        With ``destination=None`` the roles are computed from the
        *unspecialized* policy BDDs -- how the paper first examined its real
        networks ("we first computed the BDDs and see how many devices have
        identical transfer functions from their configurations") -- and the
        static-route component records whether the device points any static
        route at the interface.  ``ignore_static_routes`` drops that
        component before grouping, reproducing the paper's "without static
        routes there would only be 8 unique roles" observation.
        """
        if destination is None:
            compiled = compile_edges(self.network, Prefix.parse("0.0.0.0/0"))
            keys: Dict[Edge, Hashable] = {}
            for edge, info in compiled.items():
                receiver_cfg = self.network.devices[info.receiver]
                has_any_static = any(
                    static.next_hop == info.sender
                    for static in receiver_cfg.static_routes
                )
                keys[edge] = (
                    self.encode_edge(info),
                    has_any_static,
                    info.has_ospf,
                    info.ospf_cost if info.has_ospf else None,
                )
        else:
            compiled = compile_edges(self.network, destination)
            keys = self.specialized_policy_keys(destination, compiled)
        if ignore_static_routes:
            keys = {
                edge: (key[0],) + (False,) + key[2:] for edge, key in keys.items()
            }
        roles = set()
        for node in self.network.graph.nodes:
            # A device's role is determined by the policies it applies
            # itself: its import policies (carried by its outgoing SRP
            # edges) and its export policies (carried by the incoming ones).
            signature = (
                frozenset(keys[edge] for edge in self.network.graph.out_edges(node)),
                frozenset(keys[edge] for edge in self.network.graph.in_edges(node)),
            )
            roles.add(signature)
        return len(roles)

    def stats(self) -> Dict[str, int]:
        return {
            "bdd_nodes": self.manager.num_nodes(),
            "bdd_vars": self.manager.num_vars,
            "encoded_edges": len(self._edge_cache),
            "communities": len(self._matched_communities),
            "local_pref_values": len(self._lp_values),
        }
