"""Bit-vector helpers on top of the BDD manager.

Routing policies mention numeric quantities: 32-bit destination prefixes,
prefix lengths, local-preference values.  This module provides helpers to
declare a block of BDD variables representing such a quantity and to build
constraints (equality with a constant, range membership, prefix match) over
them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.bdd.manager import BddManager, FALSE, TRUE


@dataclass
class BitVector:
    """A fixed-width unsigned bit-vector mapped onto BDD variables.

    ``variables[0]`` is the most-significant bit, which keeps prefix-match
    constraints compact (a /k prefix constrains only the first k bits).
    """

    manager: BddManager
    name: str
    variables: List[int]

    @property
    def width(self) -> int:
        return len(self.variables)

    @classmethod
    def declare(cls, manager: BddManager, name: str, width: int) -> "BitVector":
        """Declare ``width`` fresh variables ``name[0] .. name[width-1]``."""
        if width <= 0:
            raise ValueError("bit-vector width must be positive")
        variables = [manager.add_var(f"{name}[{i}]") for i in range(width)]
        return cls(manager=manager, name=name, variables=variables)

    # ------------------------------------------------------------------
    # Constraints
    # ------------------------------------------------------------------
    def equals_constant(self, value: int) -> int:
        """BDD of ``self == value``."""
        if value < 0 or value >= (1 << self.width):
            raise ValueError(f"{value} does not fit in {self.width} bits")
        node = TRUE
        for position, var in enumerate(self.variables):
            bit = (value >> (self.width - 1 - position)) & 1
            literal = self.manager.var(var) if bit else self.manager.nvar(var)
            node = self.manager.apply_and(node, literal)
        return node

    def matches_prefix(self, value: int, prefix_len: int) -> int:
        """BDD of "the top ``prefix_len`` bits equal those of ``value``"."""
        if prefix_len < 0 or prefix_len > self.width:
            raise ValueError("prefix length out of range")
        node = TRUE
        for position in range(prefix_len):
            var = self.variables[position]
            bit = (value >> (self.width - 1 - position)) & 1
            literal = self.manager.var(var) if bit else self.manager.nvar(var)
            node = self.manager.apply_and(node, literal)
        return node

    def less_or_equal(self, value: int) -> int:
        """BDD of ``self <= value`` (unsigned)."""
        if value >= (1 << self.width) - 1:
            return TRUE
        if value < 0:
            return FALSE
        # Walk bits from most significant: either strictly less at this bit,
        # or equal and constrained below.
        node = TRUE
        for position in reversed(range(self.width)):
            var = self.variables[position]
            bit = (value >> (self.width - 1 - position)) & 1
            if bit:
                # 0 here makes us strictly less regardless of lower bits.
                node = self.manager.ite(self.manager.var(var), node, TRUE)
            else:
                node = self.manager.ite(self.manager.var(var), FALSE, node)
        return node

    def greater_or_equal(self, value: int) -> int:
        """BDD of ``self >= value`` (unsigned)."""
        if value <= 0:
            return TRUE
        node = TRUE
        for position in reversed(range(self.width)):
            var = self.variables[position]
            bit = (value >> (self.width - 1 - position)) & 1
            if bit:
                node = self.manager.ite(self.manager.var(var), node, FALSE)
            else:
                node = self.manager.ite(self.manager.var(var), TRUE, node)
        return node

    def in_range(self, low: int, high: int) -> int:
        """BDD of ``low <= self <= high`` (unsigned, inclusive)."""
        return self.manager.apply_and(self.greater_or_equal(low), self.less_or_equal(high))

    # ------------------------------------------------------------------
    # Assignments
    # ------------------------------------------------------------------
    def assignment_for(self, value: int) -> Dict[int, bool]:
        """A variable assignment setting this vector to ``value``."""
        if value < 0 or value >= (1 << self.width):
            raise ValueError(f"{value} does not fit in {self.width} bits")
        return {
            var: bool((value >> (self.width - 1 - position)) & 1)
            for position, var in enumerate(self.variables)
        }

    def decode(self, assignment: Dict[int, bool]) -> int:
        """Read this vector's value out of a (total) assignment."""
        value = 0
        for position, var in enumerate(self.variables):
            if assignment.get(var, False):
                value |= 1 << (self.width - 1 - position)
        return value
