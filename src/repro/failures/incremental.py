"""Incremental re-solve of an SRP under a failure scenario.

Re-simulating a failed network from scratch repeats almost all of the
baseline's work: a single downed link typically perturbs routing in a
small cone upstream of the failure.  This module seeds the worklist
solver (:func:`repro.srp.solver.solve_seeded`) from the baseline
labeling and only dirties what the failure can actually touch:

1. **Taint** -- nodes whose baseline forwarding could traverse a failed
   element.  Their labels may describe routes that no longer exist, so
   they are reset to "no route" before solving; keeping them would invite
   count-to-infinity style convergence to stale routes (the classic
   distance-vector pathology).  Taint is the reverse closure of the failed
   edges/nodes under the baseline forwarding relation.
2. **Dirty** -- the initial worklist: tainted nodes, nodes that lost an
   out-edge (their offer sets shrank), and nodes with an edge into a
   tainted node (their offers were computed from a now-reset label).

Everything else keeps its baseline label and is only re-examined if a
neighbour's label changes -- the worklist takes care of propagation.  The
baseline's per-(edge, label) transfer memo is carried over, so building
the seeded offer tables costs dictionary hits instead of route-map
evaluations; that is where the measured speedup over a scratch solve
comes from.

The seeded solver re-verifies stability of *every* node before returning
and raises :class:`~repro.srp.solver.ConvergenceError` otherwise, so a
bad seed can never silently produce a wrong answer;
:func:`incremental_resolve` additionally falls back to a scratch solve on
any convergence failure (recorded on the result).  The sweep driver keeps
the scratch solver as an *oracle* and checks label-for-label equality on
every scenario.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Set, Tuple

from repro.obs import events as _events
from repro.obs import metrics as _metrics
from repro.srp.instance import SRP
from repro.srp.solution import Solution
from repro.srp.solver import ConvergenceError, TransferCache, solve, solve_seeded
from repro.topology.graph import Edge, Node


@dataclass
class IncrementalSolve:
    """The outcome of one incremental re-solve."""

    solution: Solution
    #: False when the seeded solve failed (``ConvergenceError``) and the
    #: result came from the scratch fallback instead.
    incremental_used: bool
    #: Nodes whose baseline labels were reset before solving.
    tainted: FrozenSet[Node]
    #: Size of the initial worklist handed to the seeded solver.
    dirty_count: int
    seconds: float


@dataclass
class BaselineIndex:
    """The baseline-solution views every scenario's taint query needs.

    Extracting forwarding edges from a :class:`Solution` costs preference
    comparisons per edge; a sweep re-solving hundreds of scenarios against
    one baseline builds this index once and answers each taint query with
    set lookups only.

    The index also memoises whole taint-query *results*: failure sweeps
    and change sweeps ask about the same ``(removed, changed)`` element
    sets repeatedly (every class of a sweep replays the same scenario
    list).  The memo is bounded like the solver's
    :class:`~repro.srp.solver.TransferCache` -- cleared wholesale on
    overflow, hit/miss/overflow counters exposed via :meth:`cache_info` --
    so one long-lived index can serve thousands of queries without
    unbounded growth.
    """

    #: Maximum retained taint-query results (clear-on-overflow).
    TAINT_CACHE_LIMIT = 4096

    #: ``node -> its baseline forwarding edges``.
    forwarding: dict
    #: ``node -> upstream nodes whose forwarding points at it``.
    forwarding_preds: dict
    #: ``(removed edges, removed nodes) -> frozen taint set`` (bounded).
    _taint_cache: Dict[Tuple[FrozenSet[Edge], FrozenSet[Node]], FrozenSet[Node]] = field(
        default_factory=dict, repr=False, compare=False
    )
    _taint_hits: int = field(default=0, repr=False, compare=False)
    _taint_misses: int = field(default=0, repr=False, compare=False)
    _taint_overflows: int = field(default=0, repr=False, compare=False)

    @classmethod
    def from_solution(cls, baseline: Solution) -> "BaselineIndex":
        forwarding: dict = {}
        preds: dict = {}
        destination = baseline.srp.destination
        for node in baseline.srp.graph.nodes:
            if node == destination:
                continue
            edges = tuple(baseline.forwarding_edges(node))
            forwarding[node] = edges
            for _, neighbour in edges:
                preds.setdefault(neighbour, []).append(node)
        return cls(forwarding=forwarding, forwarding_preds=preds)

    def cached_taint(
        self, removed_edges: FrozenSet[Edge], removed_nodes: FrozenSet[Node]
    ) -> Optional[FrozenSet[Node]]:
        """The memoised taint set for a query, or ``None`` on a miss."""
        try:
            result = self._taint_cache.get((removed_edges, removed_nodes))
        except TypeError:  # unhashable custom node types: skip the memo
            return None
        if result is None:
            self._taint_misses += 1
            _metrics.counter("failures.taint_cache.misses").inc()
            return None
        self._taint_hits += 1
        _metrics.counter("failures.taint_cache.hits").inc()
        return result

    def store_taint(
        self,
        removed_edges: FrozenSet[Edge],
        removed_nodes: FrozenSet[Node],
        tainted: FrozenSet[Node],
    ) -> None:
        """Record a taint-query result (clear-on-overflow, best effort)."""
        if len(self._taint_cache) >= self.TAINT_CACHE_LIMIT:
            self._taint_cache.clear()
            self._taint_overflows += 1
            _metrics.counter("failures.taint_cache.overflows").inc()
        try:
            self._taint_cache[(removed_edges, removed_nodes)] = tainted
        except TypeError:
            pass

    def cache_info(self) -> Dict[str, int]:
        """Hit/miss/size counters of the taint-query memo."""
        return {
            "size": len(self._taint_cache),
            "limit": self.TAINT_CACHE_LIMIT,
            "hits": self._taint_hits,
            "misses": self._taint_misses,
            "overflows": self._taint_overflows,
        }


def tainted_nodes(
    baseline: Solution,
    removed_edges: FrozenSet[Edge],
    removed_nodes: FrozenSet[Node] = frozenset(),
    index: Optional[BaselineIndex] = None,
) -> Set[Node]:
    """Nodes whose baseline forwarding could traverse a failed element.

    Computed as a reverse BFS over the baseline forwarding relation: a
    node is tainted if one of its forwarding edges is removed, points at a
    removed node, or points at a tainted node.  Conservative (a multipath
    node keeps only *some* of its equally-good paths through the failure)
    but safe: every label that could depend on a failed element is reset.
    """
    if index is None:
        index = BaselineIndex.from_solution(baseline)
    else:
        cached = index.cached_taint(removed_edges, frozenset(removed_nodes))
        if cached is not None:
            return set(cached)
    seeds: Set[Node] = set()
    for node, edges in index.forwarding.items():
        if node in removed_nodes:
            continue
        for edge in edges:
            if edge in removed_edges or edge[1] in removed_nodes:
                seeds.add(node)
                break
    tainted = set(seeds)
    frontier = list(seeds)
    preds = index.forwarding_preds
    while frontier:
        current = frontier.pop()
        for upstream in preds.get(current, ()):
            if upstream not in tainted and upstream not in removed_nodes:
                tainted.add(upstream)
                frontier.append(upstream)
    tainted.discard(baseline.srp.destination)
    index.store_taint(removed_edges, frozenset(removed_nodes), frozenset(tainted))
    return tainted


def incremental_resolve(
    failed_srp: SRP,
    baseline: Solution,
    removed_edges: FrozenSet[Edge],
    removed_nodes: FrozenSet[Node] = frozenset(),
    transfer_cache: Optional[TransferCache] = None,
    index: Optional[BaselineIndex] = None,
    max_rounds: int = 1000,
) -> IncrementalSolve:
    """Solve ``failed_srp`` seeded from the baseline solution.

    ``failed_srp`` must share its node universe with the baseline SRP
    minus ``removed_nodes`` (the scenario appliers in
    :mod:`repro.failures` guarantee this, including the virtual
    destination when the origin set is unchanged).  ``removed_edges`` are
    the *directed* edges deleted by the scenario.

    The baseline's transfer memo is copied into a fresh
    :class:`TransferCache` unless one is supplied (supplying one lets a
    sweep share a single bounded memo across thousands of scenarios);
    likewise an ``index`` built once via
    :meth:`BaselineIndex.from_solution` saves re-walking the baseline
    forwarding relation per scenario.
    """
    start = time.perf_counter()
    if transfer_cache is None:
        transfer_cache = TransferCache().seeded_from(baseline.transfer_cache)

    tainted = tainted_nodes(baseline, removed_edges, removed_nodes, index=index)
    graph = failed_srp.graph
    seed_labeling = {
        node: (None if node in tainted else baseline.labeling.get(node))
        for node in graph.nodes
    }

    dirty: Set[Node] = set(tainted)
    # Losing an out-edge shrinks a node's offer set even off the
    # forwarding paths (the lost offer may have been the tie-broken
    # runner-up); re-examine both endpoints that survive.
    for u, v in removed_edges:
        if graph.has_node(u):
            dirty.add(u)
        if graph.has_node(v):
            dirty.add(v)
    # Offers into a tainted (reset) node were computed from its old label.
    for node in tainted:
        if graph.has_node(node):
            for upstream, _ in graph.in_edges(node):
                dirty.add(upstream)
    # Neighbours of removed nodes lost an offer each.
    for node in removed_nodes:
        for upstream in baseline.srp.graph.predecessors(node):
            if graph.has_node(upstream):
                dirty.add(upstream)

    try:
        solution = solve_seeded(
            failed_srp,
            seed_labeling,
            sorted(dirty, key=str),
            transfer_cache=transfer_cache,
            max_rounds=max_rounds,
        )
        used = True
    except ConvergenceError:
        # Defensive: a seed the worklist cannot repair (or a genuinely
        # oscillating failed network).  Fall back to the scratch solver so
        # the caller still gets an answer -- or the scratch solver's own
        # ConvergenceError, which is then a property of the network, not
        # of the seeding.
        _metrics.counter("incremental.scratch_fallbacks").inc()
        _events.emit(
            "fallback.scratch", solver="failures", dirty=len(dirty)
        )
        solution = solve(failed_srp, max_rounds=max_rounds, transfer_cache=transfer_cache)
        used = False
    return IncrementalSolve(
        solution=solution,
        incremental_used=used,
        tainted=frozenset(tainted),
        dirty_count=len(dirty),
        seconds=time.perf_counter() - start,
    )


def labelings_match(a: Solution, b: Solution) -> bool:
    """Label-for-label equality of two solutions over their shared nodes."""
    return a.labeling == b.labeling


def divergent_nodes(a: Solution, b: Solution) -> Tuple[Node, ...]:
    """The nodes on which two labelings disagree (for diagnostics)."""
    nodes = set(a.labeling) | set(b.labeling)
    return tuple(
        sorted(
            (n for n in nodes if a.labeling.get(n) != b.labeling.get(n)),
            key=str,
        )
    )
