"""Failure scenarios: downed links and nodes as first-class values.

The paper proves Bonsai's compression sound only for the *failure-free*
control plane and explicitly names link failures as the key limitation: a
⟨topology, policy⟩ abstraction need not preserve behaviour once edges
disappear.  This module supplies the scenario vocabulary the rest of
:mod:`repro.failures` is built on:

* :class:`FailureScenario` -- an immutable set of downed (undirected)
  links and downed nodes, with validation against a concrete topology and
  a JSON/pickle-friendly wire form so scenarios travel through the
  pipeline's task options;
* enumerators -- exhaustive all-``≤k`` link (and optionally node)
  failures, deterministic seeded sampling for large spaces, and named
  single-point-of-interest scenarios;
* :meth:`FailureScenario.apply` -- derive the failed
  :class:`~repro.config.network.Network` *without mutating the original*:
  the view gets a fresh subgraph but shares every surviving
  :class:`~repro.config.device.DeviceConfig`, so configurations stay
  byte-identical (links go down; configs do not change) and the original
  network's fingerprint-guarded memos are untouched.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.config.network import Network
from repro.topology.graph import Graph, Node

#: An undirected link, canonicalised as a name-sorted pair.
Link = Tuple[str, str]


class ScenarioError(ValueError):
    """Raised for scenarios that do not fit the topology they are applied to."""


def canonical_link(u: Node, v: Node) -> Link:
    """The canonical (sorted) undirected form of a link between two nodes."""
    a, b = str(u), str(v)
    return (a, b) if a <= b else (b, a)


@dataclass(frozen=True)
class FailureScenario:
    """A set of simultaneously failed links and nodes.

    Links are undirected (a physical link failing kills both directed
    edges); nodes take every incident link down with them.  The empty
    scenario is allowed and represents the failure-free baseline.
    """

    links: FrozenSet[Link] = frozenset()
    nodes: FrozenSet[str] = frozenset()
    #: Optional human-readable name ("link:a|b", "node:spine0", ...).
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        # Canonicalise link orientation so {("b","a")} == {("a","b")}.
        canonical = frozenset(canonical_link(u, v) for u, v in self.links)
        if canonical != self.links:
            object.__setattr__(self, "links", canonical)
        if not self.name:
            object.__setattr__(self, "name", self.describe())

    # ------------------------------------------------------------------
    # Identity / display
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """A canonical, deterministic identifier for the scenario."""
        parts = [f"link:{u}|{v}" for u, v in sorted(self.links)]
        parts.extend(f"node:{n}" for n in sorted(self.nodes))
        return "+".join(parts) if parts else "baseline"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name or self.describe()

    @property
    def size(self) -> int:
        """The number of failed elements (links plus nodes)."""
        return len(self.links) + len(self.nodes)

    def is_empty(self) -> bool:
        return not self.links and not self.nodes

    # ------------------------------------------------------------------
    # Wire form (travels inside pickled/JSON task options)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "links": [list(link) for link in sorted(self.links)],
            "nodes": sorted(self.nodes),
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FailureScenario":
        return cls(
            links=frozenset(canonical_link(u, v) for u, v in data.get("links", [])),
            nodes=frozenset(str(n) for n in data.get("nodes", [])),
            name=str(data.get("name", "")),
        )

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self, network: Network) -> List[str]:
        """Problems preventing this scenario from applying to ``network``."""
        graph = network.graph
        problems: List[str] = []
        for u, v in sorted(self.links):
            if not (graph.has_edge(u, v) or graph.has_edge(v, u)):
                problems.append(f"failed link {u}|{v} is not in the topology")
        for node in sorted(self.nodes):
            if not graph.has_node(node):
                problems.append(f"failed node {node!r} is not in the topology")
        return problems

    def assert_valid(self, network: Network) -> None:
        problems = self.validate(network)
        if problems:
            raise ScenarioError("; ".join(problems))

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------
    def directed_edges(self, graph: Graph) -> FrozenSet[Tuple[Node, Node]]:
        """Every *directed* edge of ``graph`` removed by this scenario."""
        removed = set()
        for u, v in self.links:
            if graph.has_edge(u, v):
                removed.add((u, v))
            if graph.has_edge(v, u):
                removed.add((v, u))
        for node in self.nodes:
            if not graph.has_node(node):
                continue
            for edge in graph.out_edges(node):
                removed.add(edge)
            for edge in graph.in_edges(node):
                removed.add(edge)
        return frozenset(removed)

    def apply_loose(self, network: Network) -> Network:
        """Like :meth:`apply` but ignoring elements absent from the topology.

        Used when a scenario mapped through an abstraction is replayed on
        the abstract network: the mapping may name copy-pair edges the
        emitted network does not materialise.
        """
        return self._apply(network, strict=False)

    def apply(self, network: Network) -> Network:
        """The failed network: a subgraph view sharing device configs.

        The returned :class:`Network` is a *new* object with a fresh graph
        (failed links and nodes removed) whose device dictionary holds the
        *same* :class:`DeviceConfig` objects as the original -- links fail,
        configurations do not.  The original network is not mutated, and
        because the view is a distinct object its fingerprint-guarded memos
        (destination classes, local-pref sets) start empty rather than
        inheriting possibly-stale entries.

        Note that ``validate()`` on the view may report BGP/OSPF sessions
        pointing at now-unreachable neighbours; that is the expected state
        of a network with down links, not a configuration error.
        """
        return self._apply(network, strict=True)

    def _apply(self, network: Network, strict: bool) -> Network:
        if strict:
            self.assert_valid(network)
        removed = self.directed_edges(network.graph)
        graph = Graph()
        for node in network.graph.nodes:
            if node not in self.nodes:
                graph.add_node(node)
        for edge in network.graph.edges:
            if edge in removed:
                continue
            u, v = edge
            if u in self.nodes or v in self.nodes:
                continue
            graph.add_edge(u, v)
        devices = {
            name: config
            for name, config in network.devices.items()
            if name not in self.nodes
        }
        return Network(
            graph=graph,
            devices=devices,
            name=f"{network.name}@{self.name}",
        )


# ----------------------------------------------------------------------
# Enumeration
# ----------------------------------------------------------------------
def undirected_links(network: Network) -> List[Link]:
    """Every physical (undirected) link of the network, name-sorted."""
    seen = {canonical_link(u, v) for u, v in network.graph.edges}
    return sorted(seen)


def enumerate_link_failures(
    network: Network, k: int = 1, include_nodes: bool = False
) -> List[FailureScenario]:
    """Every failure scenario of at most ``k`` simultaneous elements.

    Scenarios are ordered deterministically: by size, then by canonical
    identifier.  With ``include_nodes`` the enumeration also covers node
    failures and mixed link+node combinations of total size ``≤ k``.
    The failure-free baseline is *not* included (it is the reference every
    sweep compares against, not a scenario of its own).
    """
    if k < 1:
        raise ScenarioError("k must be >= 1")
    links = undirected_links(network)
    nodes = sorted(str(n) for n in network.graph.nodes) if include_nodes else []
    elements: List[Tuple[str, object]] = [("link", link) for link in links]
    elements.extend(("node", node) for node in nodes)
    scenarios: List[FailureScenario] = []
    for size in range(1, k + 1):
        sized: List[FailureScenario] = []
        for combo in itertools.combinations(elements, size):
            sized.append(
                FailureScenario(
                    links=frozenset(v for kind, v in combo if kind == "link"),
                    nodes=frozenset(v for kind, v in combo if kind == "node"),
                )
            )
        sized.sort(key=lambda s: s.name)
        scenarios.extend(sized)
    return scenarios


def sample_link_failures(
    network: Network,
    k: int,
    count: int,
    seed: int = 0,
    include_nodes: bool = False,
) -> List[FailureScenario]:
    """A deterministic seeded sample of ``count`` distinct ``≤k`` scenarios.

    Sampling is without replacement and reproducible for a given
    ``(topology, k, count, seed)``.  When the full space holds at most
    ``count`` scenarios the exhaustive enumeration is returned instead
    (sampling can never do better than that).
    """
    if count < 1:
        raise ScenarioError("sample count must be >= 1")
    links = undirected_links(network)
    nodes = sorted(str(n) for n in network.graph.nodes) if include_nodes else []
    elements: List[Tuple[str, object]] = [("link", link) for link in links]
    elements.extend(("node", node) for node in nodes)
    total = 0
    for size in range(1, k + 1):
        total += _combinations_count(len(elements), size)
        if total > count * 4:
            break
    if total <= count:
        return enumerate_link_failures(network, k, include_nodes=include_nodes)

    rng = random.Random(seed)
    chosen: List[FailureScenario] = []
    seen = set()
    # Rejection sampling over uniformly chosen sizes; deterministic for a
    # fixed seed, and cheap because the space is much larger than `count`.
    attempts = 0
    max_attempts = count * 200
    while len(chosen) < count and attempts < max_attempts:
        attempts += 1
        size = rng.randint(1, min(k, len(elements)))
        combo = tuple(sorted(rng.sample(range(len(elements)), size)))
        if combo in seen:
            continue
        seen.add(combo)
        picked = [elements[i] for i in combo]
        chosen.append(
            FailureScenario(
                links=frozenset(v for kind, v in picked if kind == "link"),
                nodes=frozenset(v for kind, v in picked if kind == "node"),
            )
        )
    chosen.sort(key=lambda s: (s.size, s.name))
    return chosen


def _combinations_count(n: int, r: int) -> int:
    if r > n:
        return 0
    result = 1
    for i in range(r):
        result = result * (n - i) // (i + 1)
    return result


# ----------------------------------------------------------------------
# Named single points of interest
# ----------------------------------------------------------------------
def link_scenario(u: Node, v: Node) -> FailureScenario:
    """The named single-link failure ``link:u|v``."""
    return FailureScenario(links=frozenset({canonical_link(u, v)}))


def node_scenario(node: Node) -> FailureScenario:
    """The named single-node failure ``node:n``."""
    return FailureScenario(nodes=frozenset({str(node)}))


def points_of_interest(network: Network) -> Dict[str, FailureScenario]:
    """Named single-point scenarios an operator typically asks about first.

    Returns a name -> scenario mapping covering the highest-degree device
    (the hub whose loss hurts most), the busiest link (the undirected link
    between the two highest-degree endpoints), and the failure of each
    originating device's first upstream link.  All names are stable for a
    fixed topology, so reports can reference them across runs.
    """
    graph = network.graph
    interest: Dict[str, FailureScenario] = {}
    if not graph.nodes:
        return interest
    hub = max(graph.nodes, key=lambda n: (graph.degree(n), str(n)))
    interest["hub-node"] = FailureScenario(
        nodes=frozenset({str(hub)}), name=f"hub-node({hub})"
    )
    links = undirected_links(network)
    if links:
        busiest = max(
            links, key=lambda link: (graph.degree(link[0]) + graph.degree(link[1]), link)
        )
        interest["busiest-link"] = FailureScenario(
            links=frozenset({busiest}), name=f"busiest-link({busiest[0]}|{busiest[1]})"
        )
    for name, device in sorted(network.devices.items()):
        if not device.originated_prefixes or not graph.has_node(name):
            continue
        neighbours = sorted(graph.successors(name), key=str)
        if neighbours:
            link = canonical_link(name, neighbours[0])
            interest[f"origin-uplink({name})"] = FailureScenario(
                links=frozenset({link}), name=f"origin-uplink({name})"
            )
    return interest


def scenarios_for(
    network: Network,
    k: int = 1,
    sample: Optional[int] = None,
    seed: int = 0,
    include_nodes: bool = False,
    named: Iterable[FailureScenario] = (),
) -> List[FailureScenario]:
    """The scenario list a sweep runs: enumerate/sample plus named extras.

    Named scenarios are prepended (deduplicated against the enumeration) so
    operator points of interest are always covered even under sampling.
    """
    if sample is None:
        body = enumerate_link_failures(network, k, include_nodes=include_nodes)
    else:
        body = sample_link_failures(
            network, k, sample, seed=seed, include_nodes=include_nodes
        )
    result: List[FailureScenario] = []
    seen = set()
    for scenario in itertools.chain(named, body):
        scenario.assert_valid(network)
        key = (scenario.links, scenario.nodes)
        if key in seen:
            continue
        seen.add(key)
        result.append(scenario)
    return result
