"""Failure-scenario analysis: k-failure sweeps over compressed networks.

The fourth pillar of the system next to compression, verification and the
hot-path engine: model link/node failures as first-class scenarios,
re-solve the failed control plane *incrementally* from the failure-free
baseline, and check -- per scenario -- whether Bonsai's abstraction is
still sound once the topology loses edges (the paper's stated
limitation).
"""

from repro.failures.incremental import (
    IncrementalSolve,
    incremental_resolve,
    tainted_nodes,
)
from repro.failures.scenario import (
    FailureScenario,
    ScenarioError,
    canonical_link,
    enumerate_link_failures,
    link_scenario,
    node_scenario,
    points_of_interest,
    sample_link_failures,
    scenarios_for,
    undirected_links,
)
from repro.failures.soundness import (
    SoundnessOutcome,
    abstract_scenario_for,
    check_scenario_soundness,
)
from repro.failures.sweep import (
    ClassFailureRecord,
    FailureReport,
    FailureSweep,
    ScenarioOutcome,
    failure_class_task,
    sweep_network,
)

__all__ = [
    "FailureScenario",
    "ScenarioError",
    "canonical_link",
    "enumerate_link_failures",
    "sample_link_failures",
    "scenarios_for",
    "link_scenario",
    "node_scenario",
    "points_of_interest",
    "undirected_links",
    "IncrementalSolve",
    "incremental_resolve",
    "tainted_nodes",
    "SoundnessOutcome",
    "abstract_scenario_for",
    "check_scenario_soundness",
    "FailureSweep",
    "FailureReport",
    "ClassFailureRecord",
    "ScenarioOutcome",
    "failure_class_task",
    "sweep_network",
]
