"""Failure sweeps: scenarios x equivalence classes through the pipeline.

:class:`FailureSweep` is the driver that makes failure analysis a batch
workload like compression and verification before it: enumerate (or
sample) the scenarios once, then fan the per-class work out through the
generic :class:`~repro.pipeline.core.ClassFanOut` engine as the
``"failures"`` task.  Each task invocation handles *all* scenarios of one
destination equivalence class, because that is where the reuse lives --
the baseline is solved once, its labeling and transfer memo seed every
scenario's incremental re-solve, and one baseline compression serves
every scenario's soundness check.

Per (class, scenario) the task records:

* the **incremental re-solve** outcome -- label-for-label agreement with
  the scratch oracle (when ``oracle`` is on), the taint/dirty set sizes,
  and both wall-clock times (the report's headline incremental-vs-scratch
  speedup);
* the **verdict delta vs. the failure-free baseline** for every suite
  property (which nodes newly fail, which newly pass);
* the **abstraction-soundness outcome** (:mod:`repro.failures.soundness`):
  whether the baseline Bonsai abstraction can represent the scenario
  (``sound_under_failure``), and the differential abstract-vs-concrete
  comparison against either the mapped abstract failure or a per-scenario
  re-compression.

The aggregated :class:`FailureReport` is JSON-serialisable and consumed
by ``python -m repro.pipeline --failures``, the failure-sweep benchmark
stage and the CI smoke job.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.abstraction.ec import EquivalenceClass
from repro.analysis.batch import PropertySuite
from repro.analysis.dataplane import (
    ForwardingTable,
    forwarding_table_from_solution,
)
from repro.analysis.properties import (
    PropertyContext,
    VerdictMap,
    evaluate_suite,
    failure_witness,
    verdict_delta,
)
from repro.config.network import Network
from repro.config.transfer import build_srp_from_network
from repro.failures.incremental import (
    BaselineIndex,
    divergent_nodes,
    incremental_resolve,
)
from repro.failures.scenario import FailureScenario, scenarios_for
from repro.obs import trace
from repro.failures.soundness import check_scenario_soundness
from repro.pipeline.core import EXECUTORS, ClassFanOut, register_class_task
from repro.pipeline.encoded import EncodedNetwork
from repro.srp.solver import TransferCache, solve
from repro.reporting import ReportEnvelope, StreamingReport, register_report

#: Format version of the JSON failure reports.
FAILURE_REPORT_VERSION = 1


# ----------------------------------------------------------------------
# Records
# ----------------------------------------------------------------------
@dataclass
class ScenarioOutcome:
    """Everything recorded for one (equivalence class, scenario) pair."""

    scenario: str
    failed_links: List[str] = field(default_factory=list)
    failed_nodes: List[str] = field(default_factory=list)
    #: Every origin of the class failed: nothing can route, nothing is
    #: solved, and every property trivially fails on every surviving node.
    unroutable: bool = False
    #: Whether the seeded incremental path produced the solution (False
    #: when the origin set changed, the seed could not converge, or the
    #: scenario was unroutable).
    incremental_used: bool = False
    #: Incremental labeling is identical to the scratch oracle's (``None``
    #: when the oracle was skipped or incremental did not run).
    incremental_matches_scratch: Optional[bool] = None
    divergent: List[str] = field(default_factory=list)
    incremental_seconds: float = 0.0
    scratch_seconds: float = 0.0
    tainted: int = 0
    dirty: int = 0
    #: Structural soundness flag (``None`` when soundness checking was
    #: off or the scenario was unroutable).
    sound_under_failure: Optional[bool] = None
    #: Full :class:`~repro.failures.soundness.SoundnessOutcome` wire form.
    soundness: Optional[Dict] = None
    #: Per-property verdict delta vs. the failure-free baseline, over the
    #: surviving nodes.
    newly_failing: Dict[str, List[str]] = field(default_factory=dict)
    newly_passing: Dict[str, List[str]] = field(default_factory=dict)
    #: One structured counterexample (offending path/cycle) per newly
    #: broken property, from its first failing node.
    witnesses: Dict[str, Dict] = field(default_factory=dict)

    def abstract_agrees(self) -> Optional[bool]:
        if self.soundness is None:
            return None
        return self.soundness.get("agrees")

    def canonical(self) -> Tuple:
        """Timing-free outcome, for executor-parity comparisons."""
        return (
            self.scenario,
            self.unroutable,
            self.incremental_matches_scratch,
            self.sound_under_failure,
            self.abstract_agrees(),
            tuple(sorted((k, tuple(v)) for k, v in self.newly_failing.items())),
            tuple(sorted((k, tuple(v)) for k, v in self.newly_passing.items())),
        )


@dataclass
class ClassFailureRecord:
    """All scenario outcomes for one destination equivalence class."""

    prefix: str
    origins: List[str]
    baseline_seconds: float
    compression_seconds: float
    baseline_failing: Dict[str, List[str]] = field(default_factory=dict)
    #: Every node verdicts were evaluated on (the k-resilience universe).
    nodes: List[str] = field(default_factory=list)
    scenarios: List[ScenarioOutcome] = field(default_factory=list)

    def canonical(self) -> Tuple:
        return (
            self.prefix,
            tuple(self.origins),
            tuple(sorted((k, tuple(v)) for k, v in self.baseline_failing.items())),
            tuple(outcome.canonical() for outcome in self.scenarios),
        )


@register_report
@dataclass
class FailureReport(StreamingReport, ReportEnvelope):
    """Run-level aggregation of a failure sweep."""

    kind = "failures"

    network_name: str
    executor: str
    workers: int
    k: int
    num_classes: int
    num_scenarios: int
    properties: List[str]
    path_bound: Optional[int]
    oracle: bool
    soundness: bool
    encode_seconds: float
    total_seconds: float
    scenario_names: List[str] = field(default_factory=list)
    #: Whether the scenario list covers *every* ``≤k`` failure (False under
    #: sampling or an explicit scenario list): k-resilience verdicts are
    #: only proofs when it does.
    exhaustive: bool = False
    records: List[ClassFailureRecord] = field(default_factory=list)
    #: Peak resident set of the producing run in MiB, when measured
    #: (``--memory-budget`` runs and the scale benchmark fill this).
    peak_rss_mb: Optional[float] = None
    version: int = FAILURE_REPORT_VERSION

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def _outcomes(self):
        for record in self.iter_records():
            for outcome in record.scenarios:
                yield record, outcome

    @property
    def incremental_seconds(self) -> float:
        return sum(o.incremental_seconds for _, o in self._outcomes())

    @property
    def scratch_seconds(self) -> float:
        return sum(o.scratch_seconds for _, o in self._outcomes())

    @property
    def incremental_speedup(self) -> Optional[float]:
        """Scratch-vs-incremental wall-clock ratio over compared scenarios."""
        inc = sum(
            o.incremental_seconds
            for _, o in self._outcomes()
            if o.incremental_used and o.scratch_seconds > 0
        )
        scratch = sum(
            o.scratch_seconds
            for _, o in self._outcomes()
            if o.incremental_used and o.scratch_seconds > 0
        )
        if inc <= 0 or scratch <= 0:
            return None
        return scratch / inc

    def incremental_all_match(self) -> bool:
        """Every compared scenario re-solved bit-identically to scratch."""
        return all(
            o.incremental_matches_scratch is not False for _, o in self._outcomes()
        )

    def incremental_divergences(self) -> List[Tuple[str, str, List[str]]]:
        return [
            (record.prefix, outcome.scenario, list(outcome.divergent))
            for record, outcome in self._outcomes()
            if outcome.incremental_matches_scratch is False
        ]

    def soundness_counts(self) -> Dict[str, int]:
        """How scenarios fared against the abstraction, summed over classes."""
        counts = {"checked": 0, "sound": 0, "recompressed": 0, "disagreed": 0}
        for _, outcome in self._outcomes():
            if outcome.sound_under_failure is None:
                continue
            counts["checked"] += 1
            if outcome.sound_under_failure:
                counts["sound"] += 1
            if outcome.soundness and outcome.soundness.get("recompressed"):
                counts["recompressed"] += 1
            if outcome.abstract_agrees() is False:
                counts["disagreed"] += 1
        return counts

    def soundness_disagreements(self) -> List[Tuple[str, str, Dict]]:
        return [
            (record.prefix, outcome.scenario, dict(outcome.soundness or {}))
            for record, outcome in self._outcomes()
            if outcome.abstract_agrees() is False
        ]

    def first_failing_scenario(self) -> Dict[str, Optional[str]]:
        """Per property: the first scenario (sweep order) breaking it anywhere."""
        order = {name: index for index, name in enumerate(self.scenario_names)}
        first: Dict[str, Optional[str]] = {name: None for name in self.properties}
        for _, outcome in self._outcomes():
            for prop, nodes in outcome.newly_failing.items():
                if not nodes:
                    continue
                current = first.get(prop)
                if current is None or order.get(outcome.scenario, 1 << 30) < order.get(
                    current, 1 << 30
                ):
                    first[prop] = outcome.scenario
        return first

    def k_resilience(self, prop: str = "reachability") -> Dict[str, object]:
        """Evaluate "``prop`` holds under every ≤k cut" over the sweep records.

        A node is *k-resilient* for a destination class when the property
        holds on it at the failure-free baseline and no swept scenario
        newly breaks it; fragile nodes are reported with the first
        scenario (sweep order) that breaks them.  The verdict is evaluated
        directly on the existing records -- no extra simulation -- and is
        a proof only when the sweep enumerated exhaustively
        (``complete=True``); under sampling it is an upper bound on
        resilience.
        """
        order = {name: index for index, name in enumerate(self.scenario_names)}
        per_class: Dict[str, Dict[str, object]] = {}
        for record in self.iter_records():
            baseline_failing = set(record.baseline_failing.get(prop, []))
            # The node universe: recorded explicitly; reports written
            # before the field existed fall back to the nodes the verdict
            # lists mention (an under-approximation).
            candidates = set(record.nodes)
            for nodes in record.baseline_failing.values():
                candidates.update(nodes)
            first_break: Dict[str, str] = {}
            for outcome in record.scenarios:
                for node in outcome.newly_failing.get(prop, []):
                    candidates.add(node)
                    current = first_break.get(node)
                    if current is None or order.get(outcome.scenario, 1 << 30) < order.get(
                        current, 1 << 30
                    ):
                        first_break[node] = outcome.scenario
            fragile = {
                node: scenario
                for node, scenario in first_break.items()
                if node not in baseline_failing
            }
            resilient = sorted(
                node
                for node in candidates
                if node not in baseline_failing and node not in fragile
            )
            per_class[record.prefix] = {
                "resilient": resilient,
                "fragile": {node: fragile[node] for node in sorted(fragile)},
                "baseline_failing": sorted(baseline_failing),
            }
        return {
            "property": prop,
            "k": self.k,
            "complete": bool(self.exhaustive),
            "per_class": per_class,
        }

    def k_resilient_nodes(self, prop: str = "reachability") -> Dict[str, List[str]]:
        """Per destination class: the nodes on which ``prop`` survives every
        swept ≤k cut (see :meth:`k_resilience` for the exact semantics)."""
        return {
            prefix: list(entry["resilient"])
            for prefix, entry in self.k_resilience(prop)["per_class"].items()
        }

    def property_failure_counts(self) -> Dict[str, int]:
        """Per property: how many (class, scenario) pairs newly fail it."""
        counts = {name: 0 for name in self.properties}
        for _, outcome in self._outcomes():
            for prop, nodes in outcome.newly_failing.items():
                if nodes:
                    counts[prop] = counts.get(prop, 0) + 1
        return counts

    def ok(self) -> bool:
        """The sweep-level gate: no divergence, no soundness disagreement."""
        return (
            self.incremental_all_match()
            and not self.soundness_disagreements()
        )

    def canonical_records(self) -> Tuple[Tuple, ...]:
        return tuple(
            record.canonical()
            for record in sorted(self.iter_records(), key=lambda r: r.prefix)
        )

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------
    @classmethod
    def record_from_payload(cls, payload: Dict) -> ClassFailureRecord:
        raw = dict(payload)
        outcomes = [ScenarioOutcome(**outcome) for outcome in raw.pop("scenarios", [])]
        return ClassFailureRecord(scenarios=outcomes, **raw)

    def to_dict(self, include_records: bool = True) -> Dict:
        data = asdict(self)
        data.pop("records", None)
        if include_records:
            data["records"] = self.records_payload()
        data.update(self.envelope_dict())
        data["aggregate"] = {
            "incremental_seconds": self.incremental_seconds,
            "scratch_seconds": self.scratch_seconds,
            "incremental_speedup": self.incremental_speedup,
            "incremental_all_match": self.incremental_all_match(),
            "soundness": self.soundness_counts(),
            "first_failing_scenario": self.first_failing_scenario(),
            "property_failure_counts": self.property_failure_counts(),
        }
        if "reachability" in self.properties:
            data["aggregate"]["k_resilience"] = self.k_resilience()
        return data

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict) -> "FailureReport":
        payload = cls.strip_envelope(data)
        payload.pop("aggregate", None)
        records = [
            cls.record_from_payload(raw) for raw in payload.pop("records", [])
        ]
        return cls(records=records, **payload)

    @classmethod
    def from_json(cls, text: str) -> "FailureReport":
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------
    def summary_lines(self) -> List[str]:
        lines = [
            f"network: {self.network_name}",
            f"executor: {self.executor} (workers={self.workers})",
            f"scenarios: {self.num_scenarios} (k={self.k}) "
            f"x {self.num_classes} classes",
            f"properties: {', '.join(self.properties)}",
        ]
        if self.oracle:
            speedup = self.incremental_speedup
            lines.append(
                f"incremental re-solve: {self.incremental_seconds:.3f}s vs "
                f"scratch {self.scratch_seconds:.3f}s"
                + (f" ({speedup:.2f}x)" if speedup is not None else "")
            )
            lines.append(
                "incremental labelings IDENTICAL to the scratch oracle"
                if self.incremental_all_match()
                else f"INCREMENTAL DIVERGED: {self.incremental_divergences()}"
            )
        if self.soundness:
            counts = self.soundness_counts()
            lines.append(
                f"abstraction soundness: {counts['sound']}/{counts['checked']} "
                f"scenarios representable by the baseline abstraction, "
                f"{counts['recompressed']} re-compressed, "
                f"{counts['disagreed']} verdict disagreements"
            )
        first = self.first_failing_scenario()
        for prop in self.properties:
            scenario = first.get(prop)
            lines.append(
                f"  {prop}: "
                + ("survives every scenario" if scenario is None else f"first broken by {scenario}")
            )
        if "reachability" in self.properties:
            resilience = self.k_resilience()
            resilient = sum(
                len(entry["resilient"]) for entry in resilience["per_class"].values()
            )
            fragile = sum(
                len(entry["fragile"]) for entry in resilience["per_class"].values()
            )
            qualifier = "" if resilience["complete"] else " (sampled: upper bound only)"
            lines.append(
                f"{self.k}-resilience (reachability under every <={self.k} cut): "
                f"{resilient} (class, node) pairs resilient, {fragile} fragile"
                f"{qualifier}"
            )
        return lines


# ----------------------------------------------------------------------
# The per-class "failures" task (runs inside pipeline workers)
# ----------------------------------------------------------------------
def failure_class_task(bonsai, equivalence_class: EquivalenceClass, options: dict):
    """Run every failure scenario against one equivalence class."""
    suite = PropertySuite.from_options(options)
    scenarios = [
        FailureScenario.from_dict(raw) for raw in options.get("scenarios", [])
    ]
    oracle = bool(options.get("oracle", True))
    soundness_on = bool(options.get("soundness", True))
    recompress_fallback = bool(options.get("recompress_fallback", True))
    max_rounds = int(options.get("max_rounds", 1000))

    network: Network = bonsai.network
    prefix = equivalence_class.prefix
    origins = set(equivalence_class.origins)
    specs = suite.specs()
    nodes = sorted(network.graph.nodes, key=str)
    node_names = [str(n) for n in nodes]
    path_bound = (
        suite.path_bound if suite.path_bound is not None else network.graph.num_nodes()
    )
    waypoints = (
        frozenset(suite.waypoints)
        if suite.waypoints is not None
        else frozenset(str(origin) for origin in origins)
    )

    # -- failure-free baseline -------------------------------------------
    baseline_start = time.perf_counter()
    compiled = bonsai.compile_for(prefix)
    baseline_srp = build_srp_from_network(
        network, prefix, origins, compiled=compiled, include_syntactic_keys=False
    )
    baseline_solution = solve(baseline_srp)
    baseline_table = forwarding_table_from_solution(
        network, baseline_solution, equivalence_class
    )
    baseline_verdicts = evaluate_suite(
        specs, baseline_table, nodes, waypoints, path_bound
    )
    baseline_seconds = time.perf_counter() - baseline_start

    compression = None
    compression_seconds = 0.0
    if soundness_on:
        compression = bonsai.compress(equivalence_class, build_network=True)
        compression_seconds = compression.compression_seconds

    # One bounded transfer memo shared by every scenario's incremental
    # re-solve, seeded once from the baseline; scratch oracle runs stay
    # cold on purpose (they are the "what a fresh solve costs" yardstick).
    # The forwarding index likewise amortises taint queries per class.
    shared_cache = TransferCache().seeded_from(baseline_solution.transfer_cache)
    baseline_index = BaselineIndex.from_solution(baseline_solution)

    outcomes: List[ScenarioOutcome] = []
    for scenario in scenarios:
        # One span per scenario -- and deliberately nothing around the
        # class baseline above: split shard chunks re-pay the baseline
        # per chunk, and the chunk-merged trace must reproduce the
        # serial tree span for span.  Scenarios are pre-sliced per
        # chunk, so their spans concatenate back in scenario order.
        with trace.span("scenario", name=scenario.name):
            outcomes.append(
                _run_scenario(
                    bonsai,
                    scenario,
                    network,
                    equivalence_class,
                    compiled,
                    baseline_solution,
                    baseline_verdicts,
                    compression,
                    specs,
                    waypoints,
                    path_bound,
                    node_names,
                    shared_cache,
                    baseline_index,
                    oracle=oracle,
                    soundness_on=soundness_on,
                    recompress_fallback=recompress_fallback,
                    max_rounds=max_rounds,
                )
            )

    return ClassFailureRecord(
        prefix=str(prefix),
        origins=sorted(str(origin) for origin in origins),
        baseline_seconds=baseline_seconds,
        compression_seconds=compression_seconds,
        baseline_failing={
            prop: [n for n in node_names if not per_node[n]]
            for prop, per_node in baseline_verdicts.items()
        },
        nodes=list(node_names),
        scenarios=outcomes,
    )


def _run_scenario(
    bonsai,
    scenario: FailureScenario,
    network: Network,
    equivalence_class: EquivalenceClass,
    compiled,
    baseline_solution,
    baseline_verdicts: VerdictMap,
    compression,
    specs,
    waypoints,
    path_bound: int,
    node_names,
    shared_cache: TransferCache,
    baseline_index: BaselineIndex,
    *,
    oracle: bool,
    soundness_on: bool,
    recompress_fallback: bool,
    max_rounds: int,
) -> ScenarioOutcome:
    prefix = equivalence_class.prefix
    outcome = ScenarioOutcome(
        scenario=scenario.name,
        failed_links=[f"{u}|{v}" for u, v in sorted(scenario.links)],
        failed_nodes=sorted(scenario.nodes),
    )
    surviving_origins = {
        origin
        for origin in equivalence_class.origins
        if str(origin) not in scenario.nodes
    }
    failed_network = scenario.apply(network)
    surviving = [n for n in node_names if n not in scenario.nodes]

    if not surviving_origins:
        # Nothing originates the class any more: no control plane to
        # solve, and every property trivially fails everywhere.
        outcome.unroutable = True
        empty = ForwardingTable(
            destination=prefix,
            origins=set(),
            next_hops={node: set() for node in failed_network.graph.nodes},
        )
        verdicts = evaluate_suite(
            specs, empty, failed_network.graph.nodes, waypoints, path_bound
        )
        outcome.newly_failing, outcome.newly_passing = verdict_delta(
            baseline_verdicts, verdicts, surviving
        )
        return outcome

    removed = scenario.directed_edges(network.graph)
    compiled_failed = {
        edge: info for edge, info in compiled.items() if edge not in removed
    }
    failed_ec = EquivalenceClass(
        prefix=prefix, origins=frozenset(surviving_origins)
    )
    origins_changed = surviving_origins != set(equivalence_class.origins)

    def build_failed_srp():
        return build_srp_from_network(
            failed_network,
            prefix,
            set(surviving_origins),
            compiled=compiled_failed,
            include_syntactic_keys=False,
        )

    scratch_solution = None
    if oracle or origins_changed:
        scratch_srp = build_failed_srp()
        scratch_start = time.perf_counter()
        scratch_solution = solve(scratch_srp, max_rounds=max_rounds)
        outcome.scratch_seconds = time.perf_counter() - scratch_start

    if origins_changed:
        # The SRP's destination structure (virtual node, initial edges)
        # changed with the origin set; the baseline labeling does not line
        # up node-for-node, so the scratch result stands.
        solution = scratch_solution
    else:
        incremental_srp = build_failed_srp()
        result = incremental_resolve(
            incremental_srp,
            baseline_solution,
            removed,
            frozenset(scenario.nodes),
            transfer_cache=shared_cache,
            index=baseline_index,
            max_rounds=max_rounds,
        )
        solution = result.solution
        outcome.incremental_used = result.incremental_used
        outcome.incremental_seconds = result.seconds
        outcome.tainted = len(result.tainted)
        outcome.dirty = result.dirty_count
        if scratch_solution is not None:
            matches = solution.labeling == scratch_solution.labeling
            outcome.incremental_matches_scratch = matches
            if not matches:
                outcome.divergent = [
                    str(n) for n in divergent_nodes(solution, scratch_solution)
                ]

    table = forwarding_table_from_solution(failed_network, solution, failed_ec)
    scenario_waypoints = frozenset(w for w in waypoints if w not in scenario.nodes)
    verdicts = evaluate_suite(
        specs, table, failed_network.graph.nodes, scenario_waypoints, path_bound
    )
    outcome.newly_failing, outcome.newly_passing = verdict_delta(
        baseline_verdicts, verdicts, surviving
    )
    if outcome.newly_failing:
        context = PropertyContext(
            table=table, waypoints=scenario_waypoints, path_bound=path_bound
        )
        for spec in specs:
            broken = outcome.newly_failing.get(spec.name)
            if broken:
                witness = failure_witness(spec, context, broken[0])
                if witness is not None:
                    outcome.witnesses[spec.name] = witness

    if soundness_on and compression is not None:
        sound = check_scenario_soundness(
            bonsai,
            compression,
            scenario,
            failed_network,
            failed_ec,
            verdicts,
            specs,
            scenario_waypoints,
            path_bound,
            recompress_fallback=recompress_fallback,
        )
        outcome.sound_under_failure = sound.sound_under_failure
        outcome.soundness = sound.to_dict()
    return outcome


register_class_task("failures", "repro.failures.sweep:failure_class_task")


# ----------------------------------------------------------------------
# The sweep driver
# ----------------------------------------------------------------------
class FailureSweep:
    """Run a failure sweep over every destination equivalence class.

    Parameters mirror :class:`~repro.pipeline.core.ClassFanOut`
    (``executor`` / ``workers`` / ``batch_size`` / ``limit`` /
    ``use_bdds`` / ``artifact``), plus:

    k:
        Enumerate all scenarios of at most ``k`` simultaneous failures.
    scenarios:
        An explicit scenario list (overrides enumeration).
    sample:
        Deterministically sample this many scenarios instead of
        enumerating (seeded by ``seed``).
    include_nodes:
        Also enumerate node failures (default: links only).
    suite:
        The :class:`~repro.analysis.batch.PropertySuite` to evaluate
        (default: the full registered catalogue).
    oracle:
        Also scratch-solve every scenario and compare labelings
        (default True -- this is the incremental solver's soundness gate
        and the source of the reported speedup).
    soundness:
        Run the per-scenario abstraction-soundness checker (default True).
    """

    def __init__(
        self,
        network: Optional[Network] = None,
        *,
        artifact: Optional[EncodedNetwork] = None,
        k: int = 1,
        scenarios: Optional[Sequence[FailureScenario]] = None,
        sample: Optional[int] = None,
        seed: int = 0,
        include_nodes: bool = False,
        suite: Optional[PropertySuite] = None,
        oracle: bool = True,
        soundness: bool = True,
        recompress_fallback: bool = True,
        executor: str = "serial",
        workers: int = 4,
        batch_size: Optional[int] = None,
        limit: Optional[int] = None,
        use_bdds: bool = True,
        scheduler: str = "stealing",
        cost_store=None,
        unit_costs: Optional[Dict[str, float]] = None,
        spill: bool = False,
        spill_path: Optional[str] = None,
    ):
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of {EXECUTORS}"
            )
        if network is None and artifact is None:
            raise ValueError("either a network or an EncodedNetwork is required")
        self.network = artifact.network if artifact is not None else network
        self.k = k
        if scenarios is None:
            self.exhaustive = sample is None
            scenarios = scenarios_for(
                self.network,
                k=k,
                sample=sample,
                seed=seed,
                include_nodes=include_nodes,
            )
        else:
            self.exhaustive = False
            scenarios = list(scenarios)
            for scenario in scenarios:
                scenario.assert_valid(self.network)
        self.scenarios: List[FailureScenario] = list(scenarios)
        self.suite = suite or PropertySuite.default()
        self.oracle = oracle
        self.soundness = soundness
        self.recompress_fallback = recompress_fallback
        self.executor = executor
        self.workers = workers
        self.spill = spill
        self.spill_path = spill_path
        self._fanout_kwargs = dict(
            artifact=artifact,
            executor=executor,
            workers=workers,
            batch_size=batch_size,
            limit=limit,
            use_bdds=use_bdds,
            scheduler=scheduler,
            cost_store=cost_store,
            unit_costs=unit_costs,
        )

    def run(self) -> FailureReport:
        from repro import obs

        counters_before = obs.snapshot_run()
        start = time.perf_counter()
        options = self.suite.to_options()
        options["scenarios"] = [s.to_dict() for s in self.scenarios]
        options["oracle"] = self.oracle
        options["soundness"] = self.soundness
        options["recompress_fallback"] = self.recompress_fallback
        fanout = ClassFanOut(
            self.network,
            task="failures",
            task_options=options,
            **self._fanout_kwargs,
        )
        artifact, classes = fanout.prepare()
        report = FailureReport(
            network_name=fanout.network.name,
            executor=self.executor,
            workers=1 if self.executor == "serial" else self.workers,
            k=self.k,
            num_classes=len(classes),
            num_scenarios=len(self.scenarios),
            properties=list(self.suite.names),
            path_bound=self.suite.path_bound,
            oracle=self.oracle,
            soundness=self.soundness,
            encode_seconds=artifact.encode_seconds,
            total_seconds=0.0,
            scenario_names=[s.name for s in self.scenarios],
            exhaustive=self.exhaustive,
        )
        if self.spill:
            from repro.pipeline.stream import RecordSpill

            report.attach_spill(RecordSpill(self.spill_path))

        # Records merge into the report as they stream off the pool (in
        # class order at merge time, whatever order the scheduler
        # completed them in) instead of collecting the whole sweep first.
        def on_result(index: int, record: ClassFailureRecord, seconds: float) -> None:
            report.merge_partial(index, record)

        fanout.execute(on_result=on_result, collect=False)
        report.total_seconds = time.perf_counter() - start
        obs.finish_run(report, counters_before)
        return report


def sweep_network(
    network: Network,
    k: int = 1,
    properties: Optional[Sequence[str]] = None,
    **kwargs,
) -> FailureReport:
    """One-call failure sweep (serial by default)."""
    suite = (
        PropertySuite.default()
        if properties is None
        else PropertySuite.from_names(properties)
    )
    return FailureSweep(network, k=k, suite=suite, **kwargs).run()
