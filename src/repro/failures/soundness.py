"""Abstraction soundness under failures (§ the paper's key limitation).

Bonsai's CP-equivalence theorem is proved for the failure-free control
plane.  Under a failure scenario the baseline ⟨topology, policy⟩
abstraction remains faithful only when the *abstract network can express
the scenario at all*: failing a concrete element must correspond to
failing a whole abstract element.

* a failed concrete **link** ``{u, v}`` is representable iff *every*
  concrete link mapping onto the abstract link ``{f(u), f(v)}`` also
  fails -- if a sibling survives, the abstract edge must stay up and the
  abstract network silently keeps connectivity the concrete one lost
  (the paper's "a concrete edge fails but its abstract edge survives");
  a link *inside* one abstraction group has no abstract image and is
  never representable;
* a failed concrete **node** is representable iff its whole abstraction
  group fails.

When every failed element is representable, deleting exactly the image
elements from the abstract network removes whole preimage classes, so
the ∀∃-refinement conditions of the surviving topology are untouched and
the baseline abstraction is still an effective abstraction of the failed
network -- that is the structural fact behind the per-scenario
``sound_under_failure`` flag.  When it is not, the checker falls back to
*re-compressing the failed network from scratch* (reusing the baseline's
policy-BDD encoder, so no re-encoding cost) and verifies against that
fresh abstraction instead.

Either way the checker finishes with a differential verdict comparison --
abstract verdicts lifted through the mapping must equal the concrete
ones -- so a structural misjudgement would surface as ``agrees=False``
rather than pass silently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.abstraction.bonsai import Bonsai, CompressionResult
from repro.abstraction.ec import EquivalenceClass, routable_equivalence_classes
from repro.abstraction.mapping import NetworkAbstraction
from repro.analysis.dataplane import compute_forwarding_table
from repro.analysis.properties import PropertyContext, PropertySpec
from repro.config.network import Network
from repro.config.transfer import VIRTUAL_DESTINATION
from repro.analysis.properties import VerdictMap
from repro.failures.scenario import FailureScenario, canonical_link


@dataclass
class SoundnessOutcome:
    """What the soundness checker concluded for one (class, scenario)."""

    #: Structural verdict: the baseline abstraction can express the
    #: scenario (whole preimages fail together).
    sound_under_failure: bool
    #: Why not, when it cannot ("" when it can).
    reason: str = ""
    #: The scenario mapped onto abstract names (``None`` when not
    #: representable).
    abstract_scenario: Optional[FailureScenario] = None
    #: Whether the comparison ran against a fresh per-scenario
    #: re-compression of the failed network instead of the baseline
    #: abstraction.
    recompressed: bool = False
    #: Differential result: lifted abstract verdicts equal concrete ones.
    agrees: Optional[bool] = None
    #: ``{property: [nodes]}`` where they do not.
    mismatched: Dict[str, List[str]] = field(default_factory=dict)
    #: Abstract node count of whichever abstraction was compared against.
    abstract_nodes: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "sound_under_failure": self.sound_under_failure,
            "reason": self.reason,
            "abstract_scenario": (
                None
                if self.abstract_scenario is None
                else self.abstract_scenario.to_dict()
            ),
            "recompressed": self.recompressed,
            "agrees": self.agrees,
            "mismatched": dict(self.mismatched),
            "abstract_nodes": self.abstract_nodes,
        }


# ----------------------------------------------------------------------
# Structural representability
# ----------------------------------------------------------------------
def abstract_scenario_for(
    abstraction: NetworkAbstraction,
    network: Network,
    scenario: FailureScenario,
) -> Tuple[Optional[FailureScenario], str]:
    """Map a concrete scenario through ``f``, or say why that is impossible.

    Returns ``(abstract scenario, "")`` when every failed element's whole
    preimage fails, and ``(None, reason)`` otherwise.
    """
    node_map = abstraction.node_map
    # The effective set of failed undirected links: explicit link failures
    # plus every link incident to a failed node.
    failed_links = set(scenario.links)
    for node in scenario.nodes:
        if network.graph.has_node(node):
            for neighbour in network.graph.successors(node):
                failed_links.add(canonical_link(node, neighbour))
            for neighbour in network.graph.predecessors(node):
                failed_links.add(canonical_link(neighbour, node))

    failed_groups: set = set()
    for node in scenario.nodes:
        base = node_map.get(node)
        if base is None:
            return None, f"failed node {node!r} is outside the abstraction"
        members = abstraction.concrete_nodes(base) - {VIRTUAL_DESTINATION}
        missing = members - scenario.nodes
        if missing:
            return (
                None,
                f"node {node!r} fails but its abstraction group "
                f"{base!r} survives via {sorted(map(str, missing))}",
            )
        failed_groups.add(base)

    abstract_links: set = set()
    preimages = abstraction.edge_preimages(network.graph)
    for u, v in sorted(scenario.links):
        fu = node_map.get(u)
        fv = node_map.get(v)
        if fu is None or fv is None:
            return None, f"failed link {u}|{v} is outside the abstraction"
        if fu == fv:
            return (
                None,
                f"link {u}|{v} is internal to abstraction group {fu!r} "
                "and has no abstract image",
            )
        # Every sibling link mapping onto the same abstract edge must fail.
        siblings = preimages.get(frozenset({fu, fv}), frozenset())
        surviving_siblings = siblings - failed_links
        if surviving_siblings:
            x, y = min(surviving_siblings)
            return (
                None,
                f"link {u}|{v} fails but its abstract edge "
                f"{fu}|{fv} survives via sibling {x}|{y}",
            )
        if fu in failed_groups or fv in failed_groups:
            continue  # covered by the abstract node failure
        for cu in abstraction.copies_of(fu):
            for cv in abstraction.copies_of(fv):
                abstract_links.add(canonical_link(cu, cv))

    abstract_nodes: set = set()
    for base in failed_groups:
        abstract_nodes.update(abstraction.copies_of(base))

    return (
        FailureScenario(
            links=frozenset(abstract_links),
            nodes=frozenset(abstract_nodes),
            name=f"f({scenario.name})",
        ),
        "",
    )


# ----------------------------------------------------------------------
# Differential verdict comparison
# ----------------------------------------------------------------------
def lifted_abstract_verdicts(
    abstraction: NetworkAbstraction,
    abstract_network: Network,
    equivalence_class: EquivalenceClass,
    specs: List[PropertySpec],
    concrete_nodes: List[str],
    waypoints: FrozenSet[str],
    path_bound: int,
) -> VerdictMap:
    """Evaluate the suite on an abstract network and lift the verdicts.

    The abstract forwarding table is simulated from scratch (abstract
    networks are small -- that is the whole point); each concrete node's
    verdict is the ``any``/``all`` combination over its abstract copies,
    exactly as in the batch verifier.
    """
    abstract_ec = next(
        (
            candidate
            for candidate in routable_equivalence_classes(abstract_network)
            if candidate.prefix.overlaps(equivalence_class.prefix)
        ),
        None,
    )
    abstract_nodes = sorted(abstract_network.graph.nodes, key=str)
    if abstract_ec is None:
        # The failure disconnected every abstract origin: nothing routes.
        return {
            spec.name: {name: False for name in concrete_nodes} for spec in specs
        }
    table = compute_forwarding_table(abstract_network, abstract_ec)
    lifted_waypoints = set()
    for waypoint in waypoints:
        if waypoint in abstraction.node_map:
            for copy in abstraction.copies_of(abstraction.f(waypoint)):
                lifted_waypoints.add(copy)
    context = PropertyContext(
        table=table, waypoints=frozenset(lifted_waypoints), path_bound=path_bound
    )
    by_abstract: Dict[Tuple[str, str], bool] = {}
    for spec in specs:
        for node in abstract_nodes:
            by_abstract[(spec.name, node)] = spec.evaluate(context, node).holds

    present = set(abstract_network.graph.nodes)
    verdicts: VerdictMap = {}
    for spec in specs:
        per_node: Dict[str, bool] = {}
        for name in concrete_nodes:
            copies = [
                copy
                for copy in abstraction.copies_of(abstraction.f(name))
                if copy in present
            ]
            if not copies:
                per_node[name] = False
                continue
            results = [by_abstract[(spec.name, copy)] for copy in copies]
            per_node[name] = any(results) if spec.lift == "any" else all(results)
        verdicts[spec.name] = per_node
    return verdicts


def compare_verdicts(
    concrete: VerdictMap, lifted: VerdictMap
) -> Dict[str, List[str]]:
    """``{property: [nodes]}`` where lifted and concrete verdicts differ."""
    mismatched: Dict[str, List[str]] = {}
    for name, per_node in concrete.items():
        bad = [
            node
            for node, holds in sorted(per_node.items())
            if lifted.get(name, {}).get(node) is not None
            and lifted[name][node] != holds
        ]
        if bad:
            mismatched[name] = bad
    return mismatched


# ----------------------------------------------------------------------
# The checker
# ----------------------------------------------------------------------
def check_scenario_soundness(
    bonsai: Bonsai,
    baseline: CompressionResult,
    scenario: FailureScenario,
    failed_network: Network,
    failed_ec: EquivalenceClass,
    concrete_verdicts: VerdictMap,
    specs: List[PropertySpec],
    waypoints: FrozenSet[str],
    path_bound: int,
    recompress_fallback: bool = True,
) -> SoundnessOutcome:
    """Judge whether the baseline abstraction survives one scenario.

    ``concrete_verdicts`` are the per-node property verdicts already
    computed on the failed *concrete* network (by the sweep's incremental
    re-solve); the checker only produces the abstract side and compares.
    """
    abstraction = baseline.abstraction
    mapped, reason = abstract_scenario_for(abstraction, bonsai.network, scenario)
    surviving = sorted(
        (str(n) for n in failed_network.graph.nodes), key=str
    )

    if mapped is not None and baseline.abstract_network is not None:
        failed_abstract = mapped.apply_loose(baseline.abstract_network)
        lifted = lifted_abstract_verdicts(
            abstraction,
            failed_abstract,
            failed_ec,
            specs,
            surviving,
            waypoints,
            path_bound,
        )
        mismatched = compare_verdicts(concrete_verdicts, lifted)
        return SoundnessOutcome(
            sound_under_failure=True,
            abstract_scenario=mapped,
            recompressed=False,
            agrees=not mismatched,
            mismatched=mismatched,
            abstract_nodes=failed_abstract.graph.num_nodes(),
        )

    if not recompress_fallback:
        return SoundnessOutcome(sound_under_failure=False, reason=reason)

    # Fallback: compress the failed network from scratch.  The baseline's
    # policy-BDD encoder is reused (device configurations are shared by
    # the failure view, so every per-edge BDD is already encoded); only
    # refinement and abstract-network emission run per scenario.
    fallback = Bonsai(
        failed_network,
        use_bdds=bonsai.use_bdds,
        encoder=bonsai.encoder if bonsai.use_bdds else None,
    )
    result = fallback.compress(failed_ec, build_network=True)
    lifted = lifted_abstract_verdicts(
        result.abstraction,
        result.abstract_network,
        failed_ec,
        specs,
        surviving,
        waypoints,
        path_bound,
    )
    mismatched = compare_verdicts(concrete_verdicts, lifted)
    return SoundnessOutcome(
        sound_under_failure=False,
        reason=reason,
        abstract_scenario=None,
        recompressed=True,
        agrees=not mismatched,
        mismatched=mismatched,
        abstract_nodes=result.abstract_nodes,
    )
