"""Path properties preserved by CP-equivalence (§4.4), as a registry.

Each checker below decides, on a :class:`~repro.analysis.dataplane.ForwardingTable`,
one of the properties the paper lists as preserved by effective
abstractions: reachability, path length, black holes, multipath
consistency, waypointing, and routing loops.  Running the same checker on
the concrete and compressed networks must give the same answer -- that is
exactly what the differential test harness asserts.

Beyond the standalone ``check_*`` functions (kept for direct use), every
property is registered as a first-class :class:`PropertySpec` in
:data:`PROPERTY_REGISTRY`: a name, a human description, an evaluator over
a :class:`PropertyContext`, and the quantifier used to lift verdicts
through BGP case splitting.  The registry is the single catalogue the
batch verification engine (:mod:`repro.analysis.batch`), the pipeline CLI
(``python -m repro.pipeline --verify``) and the differential tests all
consume, so adding a property here automatically enrols it everywhere.

Failures carry a structured :class:`Counterexample` (the offending node,
the violating path, and -- for loops -- the extracted cycle) so reports
can name the broken device instead of echoing a bare boolean.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.dataplane import ForwardingTable
from repro.topology.graph import Node


@dataclass(frozen=True)
class Counterexample:
    """A structured witness for a property violation.

    Attributes
    ----------
    kind:
        What went wrong: ``"loop"``, ``"blackhole"``, ``"divergence"``,
        ``"too-long"``, ``"bypass"`` (waypoint avoided) ...
    node:
        The offending node -- the loop entry point, the device that drops
        the traffic, or the source whose paths diverge.
    path:
        The violating forwarding path, as traversed.
    cycle:
        For loops: the repeated cycle extracted from ``path`` (first and
        last element equal); empty otherwise.
    detail:
        Free-form human explanation.
    """

    kind: str
    node: Optional[Node] = None
    path: Tuple[Node, ...] = ()
    cycle: Tuple[Node, ...] = ()
    detail: str = ""

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serialisable view (node names stringified)."""
        return {
            "kind": self.kind,
            "node": None if self.node is None else str(self.node),
            "path": [str(node) for node in self.path],
            "cycle": [str(node) for node in self.cycle],
            "detail": self.detail,
        }


@dataclass(frozen=True)
class PropertyResult:
    """Outcome of evaluating a property, with witnesses if relevant."""

    holds: bool
    witness: Optional[tuple] = None
    detail: str = ""
    counterexample: Optional[Counterexample] = None

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.holds


def check_reachability(table: ForwardingTable, source: Node) -> PropertyResult:
    """Does traffic from ``source`` reach the destination?"""
    outcome, path = table.path_outcome(source)
    counterexample = None
    if outcome != "delivered":
        counterexample = Counterexample(
            kind=outcome,
            node=path[-1] if outcome == "blackhole" else source,
            path=tuple(path),
            cycle=_extract_cycle(path) if outcome == "loop" else (),
            detail=f"traffic from {source!r} is {outcome}",
        )
    return PropertyResult(
        holds=outcome == "delivered",
        witness=tuple(path),
        detail=f"{source!r}: {outcome}",
        counterexample=counterexample,
    )


def check_all_paths_reach(table: ForwardingTable, source: Node) -> PropertyResult:
    """Do *all* multipath forwarding paths from ``source`` deliver traffic?"""
    paths = table.paths_view(source)
    for path in paths:
        last = path[-1]
        if not table.delivers(last):
            return PropertyResult(
                False,
                tuple(path),
                "some path fails to deliver",
                counterexample=Counterexample(
                    kind="blackhole",
                    node=last,
                    path=tuple(path),
                    detail=f"path from {source!r} ends undelivered at {last!r}",
                ),
            )
    return PropertyResult(True, None, f"{len(paths)} paths deliver")


def check_path_length(
    table: ForwardingTable, source: Node, expected_length: int
) -> PropertyResult:
    """Do all forwarding paths from ``source`` have the expected hop count?"""
    paths = table.paths_view(source)
    for path in paths:
        if not table.delivers(path[-1]):
            continue
        if len(path) - 1 != expected_length:
            return PropertyResult(
                False,
                tuple(path),
                f"path has length {len(path) - 1}, expected {expected_length}",
                counterexample=Counterexample(
                    kind="wrong-length",
                    node=source,
                    path=tuple(path),
                    detail=f"{len(path) - 1} hops, expected {expected_length}",
                ),
            )
    return PropertyResult(True, None, "all delivered paths match the expected length")


def check_bounded_path_length(
    table: ForwardingTable, source: Node, bound: int
) -> PropertyResult:
    """Do all delivered paths from ``source`` have at most ``bound`` hops?"""
    for path in table.paths_view(source):
        if not table.delivers(path[-1]):
            continue
        if len(path) - 1 > bound:
            return PropertyResult(
                False,
                tuple(path),
                f"path has length {len(path) - 1} > bound {bound}",
                counterexample=Counterexample(
                    kind="too-long",
                    node=source,
                    path=tuple(path),
                    detail=f"{len(path) - 1} hops exceeds bound {bound}",
                ),
            )
    return PropertyResult(True, None, f"all delivered paths within {bound} hops")


def path_lengths(table: ForwardingTable, source: Node) -> Set[int]:
    """The set of delivered-path lengths from ``source``."""
    return {
        len(path) - 1
        for path in table.paths_view(source)
        if table.delivers(path[-1])
    }


def check_black_hole(table: ForwardingTable, source: Node) -> PropertyResult:
    """Is there a forwarding path from ``source`` that ends in a drop?"""
    for path in table.paths_view(source):
        last = path[-1]
        if not table.delivers(last) and len(set(path)) == len(path):
            return PropertyResult(
                True,
                tuple(path),
                "black hole reached",
                counterexample=Counterexample(
                    kind="blackhole",
                    node=last,
                    path=tuple(path),
                    detail=f"{last!r} drops traffic from {source!r}",
                ),
            )
    return PropertyResult(False, None, "no black hole reachable")


def check_multipath_consistency(table: ForwardingTable, source: Node) -> PropertyResult:
    """Multipath consistency: either all paths deliver or all drop.

    The property *fails* when traffic from the source is delivered along
    some path but dropped along another (the inconsistency the paper's
    property describes); the result's ``holds`` is True when the behaviour
    is consistent.  On failure the counterexample carries the offending
    source node and the dropped path, with a delivered path in the detail.
    """
    paths = table.paths_view(source)
    outcomes = set()
    for path in paths:
        outcomes.add(table.delivers(path[-1]))
    if len(outcomes) <= 1:
        return PropertyResult(True, None, "consistent")
    dropped = next(path for path in paths if not table.delivers(path[-1]))
    delivered = next(path for path in paths if table.delivers(path[-1]))
    return PropertyResult(
        False,
        tuple(dropped),
        "delivered on some paths, dropped on others",
        counterexample=Counterexample(
            kind="divergence",
            node=source,
            path=tuple(dropped),
            detail=(
                f"{source!r} delivers via {'>'.join(map(str, delivered))} "
                f"but drops via {'>'.join(map(str, dropped))}"
            ),
        ),
    )


def check_waypointing(
    table: ForwardingTable, source: Node, waypoints: Iterable[Node]
) -> PropertyResult:
    """Does every delivered path from ``source`` traverse one of ``waypoints``?"""
    waypoint_set = set(waypoints)
    for path in table.paths_view(source):
        if not table.delivers(path[-1]):
            continue
        if not waypoint_set & set(path):
            return PropertyResult(
                False,
                tuple(path),
                "path avoids all waypoints",
                counterexample=Counterexample(
                    kind="bypass",
                    node=source,
                    path=tuple(path),
                    detail=f"delivered path from {source!r} avoids every waypoint",
                ),
            )
    return PropertyResult(True, None, "all delivered paths traverse a waypoint")


def _extract_cycle(path: Sequence[Node]) -> Tuple[Node, ...]:
    """The repeated cycle at the end of a looping path (closed: first == last)."""
    if not path:
        return ()
    last = path[-1]
    try:
        first = list(path).index(last)
    except ValueError:  # pragma: no cover - defensive
        return ()
    return tuple(path[first:])


def check_routing_loop(
    table: ForwardingTable, sources: Optional[Sequence[Node]] = None
) -> PropertyResult:
    """Is there a forwarding loop reachable from any source?

    On failure the counterexample names the source that enters the loop
    and carries the extracted cycle (closed, first element == last).
    """
    nodes = sources if sources is not None else sorted(table.next_hops, key=str)
    for source in nodes:
        outcome, path = table.path_outcome(source)
        if outcome == "loop":
            cycle = _extract_cycle(path)
            return PropertyResult(
                True,
                tuple(path),
                f"loop reachable from {source!r}",
                counterexample=Counterexample(
                    kind="loop",
                    node=source,
                    path=tuple(path),
                    cycle=cycle,
                    detail=f"cycle {'>'.join(map(str, cycle))} reachable from {source!r}",
                ),
            )
    return PropertyResult(False, None, "no forwarding loop")


def failure_witness(
    spec: "PropertySpec", context: "PropertyContext", node: Node
) -> Optional[Dict[str, object]]:
    """The structured counterexample for ``spec`` failing at ``node``.

    Returns ``None`` when the property holds (or the evaluator produced no
    witness).  The failure sweep uses this to attach one piece of concrete
    evidence -- the offending path or cycle -- to every property a
    scenario newly breaks, without keeping full per-node results around.
    """
    result = spec.evaluate(context, node)
    if result.holds or result.counterexample is None:
        return None
    return result.counterexample.to_dict()


def reachable_sources(table: ForwardingTable) -> Set[Node]:
    """All nodes whose traffic reaches the destination."""
    return {node for node in table.next_hops if table.reachable(node)}


# ----------------------------------------------------------------------
# The property registry
# ----------------------------------------------------------------------
@dataclass
class PropertyContext:
    """Everything a registered property may need besides the source node.

    The batch engine builds one context per (network, equivalence class)
    pair; the same parameter values (``path_bound``) or their abstraction
    images (``waypoints``) are used on the concrete and compressed network
    so the verdicts are directly comparable.
    """

    table: ForwardingTable
    #: Waypoints for the ``waypointing`` property (defaults to the class's
    #: originating devices, which every delivered path necessarily ends at).
    waypoints: FrozenSet[Node] = frozenset()
    #: Hop bound for ``bounded-path-length`` (the batch engine defaults it
    #: to the *concrete* node count so both networks share one bound).
    path_bound: Optional[int] = None


@dataclass(frozen=True)
class PropertySpec:
    """A first-class registered property check.

    Attributes
    ----------
    name:
        The stable identifier used by the CLI, reports and tests.
    description:
        One-line human description.
    evaluate:
        ``evaluate(context, source) -> PropertyResult``; ``holds`` is the
        per-source verdict.
    lift:
        How per-copy verdicts combine when BGP case splitting maps one
        concrete node to several abstract copies: ``"all"`` (the property
        must hold on every copy -- universal properties) or ``"any"``
        (one copy suffices -- existential properties like reachability).
    path_quantified:
        Whether the evaluator quantifies over the *full* multipath set
        (``ForwardingTable.all_paths``).  Such verdicts are not exhaustive
        when the enumeration hits its cap, and the batch verifier flags
        them instead of treating a truncation artefact as a soundness
        violation.  Single-walk checks (reachability, routing-loop
        freedom) are unaffected.
    """

    name: str
    description: str
    evaluate: Callable[[PropertyContext, Node], PropertyResult]
    lift: str = "all"
    path_quantified: bool = True
    #: Whether the evaluator reads ``PropertyContext.waypoints``.  The
    #: batch verifier only trusts such verdicts differentially when the
    #: waypoint set is closed under the abstraction (a union of groups);
    #: declaring the dependency here keeps that comparability rule working
    #: for renamed or user-registered waypoint-style properties.
    uses_waypoints: bool = False


#: name -> :class:`PropertySpec`, in registration (catalogue) order.
PROPERTY_REGISTRY: Dict[str, PropertySpec] = {}


def register_property(spec: PropertySpec) -> PropertySpec:
    """Add a property to the catalogue (last registration wins).

    Registration is per-process: suites that run over the pool executors
    must name the registering module in
    :attr:`~repro.analysis.batch.PropertySuite.register_modules` so each
    worker can rebuild its registry by import.
    """
    if spec.lift not in ("all", "any"):
        raise ValueError(f"invalid lift quantifier {spec.lift!r}")
    PROPERTY_REGISTRY[spec.name] = spec
    return spec


def registered_properties() -> List[str]:
    """The catalogue's property names, in registration order."""
    return list(PROPERTY_REGISTRY)


def get_property(name: str) -> PropertySpec:
    """Look up a registered property by name."""
    try:
        return PROPERTY_REGISTRY[name]
    except KeyError:
        known = ", ".join(PROPERTY_REGISTRY)
        raise ValueError(f"unknown property {name!r}; registered: {known}") from None


#: ``{property: {node: holds}}`` -- the boolean verdict form the failure
#: and change sweeps exchange and diff.
VerdictMap = Dict[str, Dict[str, bool]]


def evaluate_suite(
    specs: Sequence[PropertySpec],
    table: ForwardingTable,
    nodes: Iterable[Node],
    waypoints: Iterable[str],
    path_bound: Optional[int],
) -> VerdictMap:
    """Boolean verdicts of every spec on every node of one table."""
    context = PropertyContext(
        table=table, waypoints=frozenset(waypoints), path_bound=path_bound
    )
    return {
        spec.name: {str(node): spec.evaluate(context, node).holds for node in nodes}
        for spec in specs
    }


def verdict_delta(
    baseline: VerdictMap, current: VerdictMap, nodes: Iterable[str]
) -> Tuple[Dict[str, List[str]], Dict[str, List[str]]]:
    """``(newly failing, newly passing)`` per property over ``nodes``.

    Nodes absent from a map default to passing on the baseline side (a
    node that did not exist before cannot have been failing) and to
    unchanged on the current side.
    """
    newly_failing: Dict[str, List[str]] = {}
    newly_passing: Dict[str, List[str]] = {}
    for prop, per_node in current.items():
        base = baseline.get(prop, {})
        failing = [n for n in nodes if base.get(n, True) and not per_node.get(n, True)]
        passing = [n for n in nodes if not base.get(n, True) and per_node.get(n, False)]
        if failing:
            newly_failing[prop] = failing
        if passing:
            newly_passing[prop] = passing
    return newly_failing, newly_passing


def _negate(result: PropertyResult) -> PropertyResult:
    """Turn an existence check into the corresponding freedom property.

    The existence check's detail already reads correctly in both
    directions ("no black hole reachable" when nothing was found, the
    specific violation when one was), so it is kept as-is.
    """
    return PropertyResult(
        holds=not result.holds,
        witness=result.witness,
        detail=result.detail,
        counterexample=result.counterexample,
    )


register_property(PropertySpec(
    name="reachability",
    description="traffic from the source reaches the destination",
    evaluate=lambda ctx, source: check_reachability(ctx.table, source),
    lift="any",
    path_quantified=False,
))

register_property(PropertySpec(
    name="all-paths-reach",
    description="every multipath forwarding path from the source delivers",
    evaluate=lambda ctx, source: check_all_paths_reach(ctx.table, source),
))

register_property(PropertySpec(
    name="black-hole-freedom",
    description="no loop-free forwarding path from the source ends in a drop",
    evaluate=lambda ctx, source: _negate(check_black_hole(ctx.table, source)),
))

register_property(PropertySpec(
    name="routing-loop-freedom",
    description="no forwarding loop is reachable from the source",
    evaluate=lambda ctx, source: _negate(
        check_routing_loop(ctx.table, sources=[source])
    ),
    path_quantified=False,
))

register_property(PropertySpec(
    name="bounded-path-length",
    description="every delivered path from the source stays within the hop bound",
    evaluate=lambda ctx, source: check_bounded_path_length(
        ctx.table,
        source,
        ctx.path_bound if ctx.path_bound is not None else len(ctx.table.next_hops),
    ),
))

register_property(PropertySpec(
    name="waypointing",
    description="every delivered path from the source traverses a waypoint",
    evaluate=lambda ctx, source: check_waypointing(ctx.table, source, ctx.waypoints),
    uses_waypoints=True,
))

register_property(PropertySpec(
    name="multipath-consistency",
    description="all multipath choices from the source agree on delivery",
    evaluate=lambda ctx, source: check_multipath_consistency(ctx.table, source),
))
