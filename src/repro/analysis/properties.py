"""Path properties preserved by CP-equivalence (§4.4).

Each checker below takes a :class:`~repro.analysis.dataplane.ForwardingTable`
(or an SRP solution) and decides one of the properties the paper lists as
preserved by effective abstractions: reachability, path length, black
holes, multipath consistency, waypointing, and routing loops.  Running the
same checker on the concrete and compressed networks must give the same
answer -- that is exactly what the integration tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Set

from repro.analysis.dataplane import ForwardingTable
from repro.topology.graph import Node


@dataclass(frozen=True)
class PropertyResult:
    """Outcome of evaluating a property, with a witness path if relevant."""

    holds: bool
    witness: Optional[tuple] = None
    detail: str = ""

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.holds


def check_reachability(table: ForwardingTable, source: Node) -> PropertyResult:
    """Does traffic from ``source`` reach the destination?"""
    outcome, path = table.path_outcome(source)
    return PropertyResult(
        holds=outcome == "delivered",
        witness=tuple(path),
        detail=f"{source!r}: {outcome}",
    )


def check_all_paths_reach(table: ForwardingTable, source: Node) -> PropertyResult:
    """Do *all* multipath forwarding paths from ``source`` deliver traffic?"""
    paths = table.all_paths(source)
    for path in paths:
        last = path[-1]
        if not table.delivers(last):
            return PropertyResult(False, tuple(path), "some path fails to deliver")
    return PropertyResult(True, None, f"{len(paths)} paths deliver")


def check_path_length(
    table: ForwardingTable, source: Node, expected_length: int
) -> PropertyResult:
    """Do all forwarding paths from ``source`` have the expected hop count?"""
    paths = table.all_paths(source)
    for path in paths:
        if not table.delivers(path[-1]):
            continue
        if len(path) - 1 != expected_length:
            return PropertyResult(
                False, tuple(path), f"path has length {len(path) - 1}, expected {expected_length}"
            )
    return PropertyResult(True, None, "all delivered paths match the expected length")


def path_lengths(table: ForwardingTable, source: Node) -> Set[int]:
    """The set of delivered-path lengths from ``source``."""
    return {
        len(path) - 1
        for path in table.all_paths(source)
        if table.delivers(path[-1])
    }


def check_black_hole(table: ForwardingTable, source: Node) -> PropertyResult:
    """Is there a forwarding path from ``source`` that ends in a drop?"""
    for path in table.all_paths(source):
        last = path[-1]
        if not table.delivers(last) and len(set(path)) == len(path):
            return PropertyResult(True, tuple(path), "black hole reached")
    return PropertyResult(False, None, "no black hole reachable")


def check_multipath_consistency(table: ForwardingTable, source: Node) -> PropertyResult:
    """Multipath consistency: either all paths deliver or all drop.

    The property *fails* when traffic from the source is delivered along
    some path but dropped along another (the inconsistency the paper's
    property describes); the result's ``holds`` is True when the behaviour
    is consistent.
    """
    paths = table.all_paths(source)
    outcomes = set()
    for path in paths:
        outcomes.add(table.delivers(path[-1]))
    if len(outcomes) <= 1:
        return PropertyResult(True, None, "consistent")
    witness = next(path for path in paths if not table.delivers(path[-1]))
    return PropertyResult(False, tuple(witness), "delivered on some paths, dropped on others")


def check_waypointing(
    table: ForwardingTable, source: Node, waypoints: Iterable[Node]
) -> PropertyResult:
    """Does every delivered path from ``source`` traverse one of ``waypoints``?"""
    waypoint_set = set(waypoints)
    for path in table.all_paths(source):
        if not table.delivers(path[-1]):
            continue
        if not waypoint_set & set(path):
            return PropertyResult(False, tuple(path), "path avoids all waypoints")
    return PropertyResult(True, None, "all delivered paths traverse a waypoint")


def check_routing_loop(table: ForwardingTable, sources: Optional[Sequence[Node]] = None) -> PropertyResult:
    """Is there a forwarding loop reachable from any source?"""
    nodes = sources if sources is not None else sorted(table.next_hops, key=str)
    for source in nodes:
        outcome, path = table.path_outcome(source)
        if outcome == "loop":
            return PropertyResult(True, tuple(path), f"loop reachable from {source!r}")
    return PropertyResult(False, None, "no forwarding loop")


def reachable_sources(table: ForwardingTable) -> Set[Node]:
    """All nodes whose traffic reaches the destination."""
    return {node for node in table.next_hops if table.reachable(node)}
