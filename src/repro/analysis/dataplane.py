"""Control-plane simulation to a data plane (the Batfish-style substrate).

Downstream analyses (reachability queries, the verification benchmarks)
need the forwarding state a network converges to.  This module simulates
the control plane of a configured network -- per destination equivalence
class -- and materialises per-destination forwarding tables, applying the
configured data-plane ACLs on the forwarding edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.abstraction.ec import EquivalenceClass, routable_equivalence_classes
from repro.config.network import Network
from repro.config.prefix import Prefix
from repro.config.transfer import VIRTUAL_DESTINATION, build_srp_from_network
from repro.srp.solution import Solution
from repro.srp.solver import solve
from repro.topology.graph import Edge, Node


@dataclass
class ForwardingTable:
    """Per-destination forwarding state of the whole network.

    ``next_hops[node]`` is the set of neighbours ``node`` forwards traffic
    for the destination to; an empty set means the traffic is dropped
    (no route, or every forwarding edge blocked by an ACL).
    """

    destination: Prefix
    origins: Set[Node]
    next_hops: Dict[Node, Set[Node]] = field(default_factory=dict)
    acl_blocked: Set[Edge] = field(default_factory=set)
    #: Memoised path walks.  The batch verifier evaluates several
    #: path-quantified properties per source on one table, so the
    #: enumeration is cached; tables are build-once/read-many, and callers
    #: must not mutate ``next_hops`` after reading paths (or must call
    #: :meth:`clear_path_cache`).
    _outcome_cache: Dict[Tuple[Node, int], Tuple[str, List[Node]]] = field(
        default_factory=dict, repr=False, compare=False
    )
    _paths_cache: Dict[Tuple[Node, int], List[List[Node]]] = field(
        default_factory=dict, repr=False, compare=False
    )
    _sorted_hops_cache: Dict[Node, List[Node]] = field(
        default_factory=dict, repr=False, compare=False
    )
    #: Sources whose :meth:`all_paths` enumeration hit the ``max_paths``
    #: cap: their path sets are incomplete, and path-quantified property
    #: verdicts on them are not exhaustive.  The batch verifier checks
    #: this to avoid presenting a truncated verdict as a sound one.
    truncated_sources: Set[Node] = field(
        default_factory=set, repr=False, compare=False
    )

    def clear_path_cache(self) -> None:
        """Drop memoised walks (call after mutating ``next_hops``)."""
        self._outcome_cache.clear()
        self._paths_cache.clear()
        self._sorted_hops_cache.clear()
        self.truncated_sources.clear()

    def _sorted_hops(self, node: Node) -> List[Node]:
        """``forwards_to(node)`` sorted by name, memoised (walk-heavy
        property evaluation re-sorts the same nodes constantly)."""
        hops = self._sorted_hops_cache.get(node)
        if hops is None:
            hops = self._sorted_hops_cache[node] = sorted(
                self.next_hops.get(node, ()), key=str
            )
        return hops

    def forwards_to(self, node: Node) -> Set[Node]:
        return self.next_hops.get(node, set())

    def delivers(self, node: Node) -> bool:
        """Whether the destination is attached at ``node``."""
        return node in self.origins

    def reachable(self, source: Node, max_hops: int = 10_000) -> bool:
        """Whether traffic from ``source`` reaches an originating device."""
        return self.path_outcome(source, max_hops)[0] == "delivered"

    def path_outcome(self, source: Node, max_hops: int = 10_000) -> Tuple[str, List[Node]]:
        """Follow forwarding from ``source``.

        Returns ``(outcome, path)`` where outcome is ``"delivered"``,
        ``"blackhole"`` (dropped), or ``"loop"``.  Multipath forwarding is
        followed along the lexicographically smallest next hop; use
        :meth:`all_paths` for the full set.
        """
        key = (source, max_hops)
        cached = self._outcome_cache.get(key)
        if cached is None:
            cached = self._walk_outcome(source, max_hops)
            self._outcome_cache[key] = cached
        outcome, path = cached
        return outcome, list(path)

    def _walk_outcome(self, source: Node, max_hops: int) -> Tuple[str, List[Node]]:
        path = [source]
        node = source
        for _ in range(max_hops):
            if self.delivers(node):
                return "delivered", path
            hops = self._sorted_hops(node)
            if not hops:
                return "blackhole", path
            node = hops[0]
            if node in path:
                path.append(node)
                return "loop", path
            path.append(node)
        return "loop", path

    def all_paths(self, source: Node, max_paths: int = 1000) -> List[List[Node]]:
        """Every forwarding path (under multipath) from ``source``."""
        return [list(path) for path in self.paths_view(source, max_paths)]

    def paths_view(self, source: Node, max_paths: int = 1000) -> List[List[Node]]:
        """Like :meth:`all_paths` but without the defensive copy.

        The returned lists are the cached walk results; callers (the
        property checks, which only read) must not mutate them.
        """
        key = (source, max_paths)
        cached = self._paths_cache.get(key)
        if cached is None:
            cached = self._walk_all_paths(source, max_paths)
            self._paths_cache[key] = cached
        return cached

    def _walk_all_paths(self, source: Node, max_paths: int) -> List[List[Node]]:
        results: List[List[Node]] = []
        truncated = False

        def walk(node: Node, path: List[Node]) -> None:
            nonlocal truncated
            if len(results) >= max_paths:
                truncated = True
                return
            if self.delivers(node):
                results.append(path)
                return
            hops = self._sorted_hops(node)
            if not hops:
                results.append(path)
                return
            for nxt in hops:
                if nxt in path:
                    results.append(path + [nxt])
                    continue
                walk(nxt, path + [nxt])

        walk(source, [source])
        if truncated:
            self.truncated_sources.add(source)
        return results


@dataclass
class DataPlane:
    """The forwarding tables of a network, one per destination class."""

    network: Network
    tables: Dict[Prefix, ForwardingTable] = field(default_factory=dict)

    def table_for(self, destination: Prefix) -> Optional[ForwardingTable]:
        """The forwarding table whose class covers ``destination``."""
        best: Optional[ForwardingTable] = None
        for prefix, table in self.tables.items():
            if prefix.contains(destination) or destination.contains(prefix):
                if best is None or prefix.length > best.destination.length:
                    best = table
        return best

    def reachable(self, source: Node, destination: Prefix) -> bool:
        table = self.table_for(destination)
        return table is not None and table.reachable(source)


def forwarding_table_from_solution(
    network: Network,
    solution: Solution,
    equivalence_class: EquivalenceClass,
) -> ForwardingTable:
    """Extract a forwarding table from a solved SRP, applying ACLs."""
    prefix = equivalence_class.prefix
    next_hops: Dict[Node, Set[Node]] = {}
    blocked: Set[Edge] = set()
    for node in solution.srp.graph.nodes:
        if node == VIRTUAL_DESTINATION:
            continue
        hops: Set[Node] = set()
        for _, neighbour in solution.forwarding_edges(node):
            if neighbour == VIRTUAL_DESTINATION:
                continue
            device = network.devices.get(node)
            allowed = True
            if device is not None:
                acl_name = device.interface_acls.get(neighbour)
                if acl_name and acl_name in device.acls:
                    allowed = device.acls[acl_name].permits(prefix)
            if allowed:
                hops.add(neighbour)
            else:
                blocked.add((node, neighbour))
        next_hops[node] = hops
    return ForwardingTable(
        destination=prefix,
        origins=set(equivalence_class.origins),
        next_hops=next_hops,
        acl_blocked=blocked,
    )


def compute_forwarding_table(
    network: Network,
    equivalence_class: EquivalenceClass,
    compiled: Optional[Dict] = None,
) -> ForwardingTable:
    """Simulate the control plane for one class and extract forwarding.

    ``compiled`` optionally reuses an existing :func:`compile_edges` result
    for this class's prefix (the batch verifier shares one compilation
    between the concrete simulation and the subsequent compression).
    """
    srp = build_srp_from_network(
        network,
        equivalence_class.prefix,
        set(equivalence_class.origins),
        compiled=compiled,
        # The SRP is solved and discarded; nothing reads the specialized
        # syntactic policy keys, and skipping them saves a full pass of
        # route-map specialization per class.
        include_syntactic_keys=False,
    )
    solution = solve(srp)
    return forwarding_table_from_solution(network, solution, equivalence_class)


def compute_data_plane(
    network: Network, limit: Optional[int] = None
) -> DataPlane:
    """Simulate every destination class of the network (Batfish-style)."""
    data_plane = DataPlane(network=network)
    classes = routable_equivalence_classes(network)
    if limit is not None:
        classes = classes[:limit]
    for ec in classes:
        data_plane.tables[ec.prefix] = compute_forwarding_table(network, ec)
    return data_plane
