"""All-pairs reachability verification (the Minesweeper/NoD substitute, §8).

The paper's Figure 12 measures how long an external verifier
(Minesweeper) takes to answer an *all-pairs reachability* query on the
concrete network versus on the Bonsai-compressed network.  Minesweeper is
an SMT-based tool that is not available here; this module provides an
explicit-state verifier with the same interface and the same asymptotic
pain: its cost grows with (number of equivalence classes) x (number of
nodes) x (solution size), so compressing the network shrinks the work
super-linearly -- which is the shape Figure 12 demonstrates.

The verifier also supports a per-query timeout and a work budget so the
benchmarks can report timeouts the way the paper's plots do.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.abstraction.bonsai import Bonsai
from repro.abstraction.ec import EquivalenceClass, routable_equivalence_classes
from repro.analysis.dataplane import compute_forwarding_table
from repro.config.network import Network
from repro.config.prefix import Prefix
from repro.topology.graph import Node


class VerificationTimeout(Exception):
    """Raised when a verification run exceeds its time budget.

    ``partial`` carries whatever result the run produced before the budget
    ran out (a :class:`VerificationResult` here, a
    :class:`repro.analysis.batch.VerificationReport` for batch runs), so a
    caller that catches the timeout still sees the work that finished --
    the timeout is reported, never swallowed.
    """

    def __init__(self, message: str = "verification timed out", partial=None):
        super().__init__(message)
        self.partial = partial


@dataclass
class ReachabilityMatrix:
    """Which sources can reach which destination classes."""

    reachable: Dict[Prefix, Set[Node]] = field(default_factory=dict)

    def holds(self, source: Node, destination: Prefix) -> bool:
        for prefix, sources in self.reachable.items():
            if prefix.contains(destination) or destination.contains(prefix):
                return source in sources
        return False

    def total_pairs(self) -> int:
        return sum(len(sources) for sources in self.reachable.values())


@dataclass
class VerificationResult:
    """Outcome of an all-pairs reachability verification run."""

    network_name: str
    seconds: float
    classes_checked: int
    pairs_checked: int
    unreachable_pairs: int
    timed_out: bool = False
    compression_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        """Verification time including any compression preprocessing."""
        return self.seconds + self.compression_seconds


def verify_all_pairs_reachability(
    network: Network,
    classes: Optional[List[EquivalenceClass]] = None,
    timeout_seconds: Optional[float] = None,
    raise_on_timeout: bool = False,
) -> VerificationResult:
    """Check reachability from every node to every destination class.

    This simulates the control plane of each class, walks the forwarding
    graph from every source and records whether the destination is
    reached.  With ``timeout_seconds`` set, the run aborts once the budget
    is exhausted, mirroring the 10-minute timeout used in the paper's
    Figure 12: the result reports ``timed_out=True``, and with
    ``raise_on_timeout`` a :class:`VerificationTimeout` carrying that
    partial result is raised instead of returning it quietly.
    """
    start = time.perf_counter()
    if classes is None:
        classes = routable_equivalence_classes(network)
    pairs = 0
    unreachable = 0
    checked = 0
    timed_out = False
    for ec in classes:
        if timeout_seconds is not None and time.perf_counter() - start > timeout_seconds:
            timed_out = True
            break
        table = compute_forwarding_table(network, ec)
        for node in network.graph.nodes:
            pairs += 1
            if not table.reachable(node):
                unreachable += 1
        checked += 1
    elapsed = time.perf_counter() - start
    result = VerificationResult(
        network_name=network.name,
        seconds=elapsed,
        classes_checked=checked,
        pairs_checked=pairs,
        unreachable_pairs=unreachable,
        timed_out=timed_out,
    )
    if timed_out and raise_on_timeout:
        raise VerificationTimeout(
            f"all-pairs verification of {network.name} exceeded "
            f"{timeout_seconds}s after {checked} classes",
            partial=result,
        )
    return result


def verify_with_abstraction(
    network: Network,
    classes: Optional[List[EquivalenceClass]] = None,
    timeout_seconds: Optional[float] = None,
    use_bdds: bool = True,
    raise_on_timeout: bool = False,
) -> VerificationResult:
    """Compress each class with Bonsai first, then verify the small network.

    The reported time includes partitioning, BDD construction and
    compression, exactly as in the paper's Figure 12 ("the verification
    time for abstract networks includes the time used to partition the
    network, build the BDDs, and compute the compressed network").

    On budget exhaustion the partial result reports ``timed_out=True``;
    with ``raise_on_timeout`` a :class:`VerificationTimeout` carrying that
    partial result is raised instead (reported, not swallowed).
    """
    start = time.perf_counter()
    bonsai = Bonsai(network, use_bdds=use_bdds)
    if classes is None:
        classes = bonsai.equivalence_classes()
    pairs = 0
    unreachable = 0
    checked = 0
    timed_out = False
    for ec in classes:
        if timeout_seconds is not None and time.perf_counter() - start > timeout_seconds:
            timed_out = True
            break
        result = bonsai.compress(ec, build_network=True)
        abstract_network = result.abstract_network
        if abstract_network is None:
            continue
        abstract_classes = routable_equivalence_classes(abstract_network)
        relevant = [
            abstract_ec
            for abstract_ec in abstract_classes
            if abstract_ec.prefix.overlaps(ec.prefix)
        ] or abstract_classes
        for abstract_ec in relevant:
            table = compute_forwarding_table(abstract_network, abstract_ec)
            for node in abstract_network.graph.nodes:
                pairs += 1
                if not table.reachable(node):
                    unreachable += 1
        checked += 1
    elapsed = time.perf_counter() - start
    result = VerificationResult(
        network_name=f"{network.name} (abstract)",
        seconds=elapsed,
        classes_checked=checked,
        pairs_checked=pairs,
        unreachable_pairs=unreachable,
        timed_out=timed_out,
        compression_seconds=bonsai.bdd_seconds,
    )
    if timed_out and raise_on_timeout:
        raise VerificationTimeout(
            f"abstract verification of {network.name} exceeded "
            f"{timeout_seconds}s after {checked} classes",
            partial=result,
        )
    return result


def single_reachability_query(
    network: Network,
    source: Node,
    destination: Prefix,
    use_abstraction: bool = False,
) -> Tuple[bool, float]:
    """A single source/destination reachability query (§8's Batfish query).

    With ``use_abstraction`` the query first compresses only the relevant
    destination class and then answers on the compressed network.
    Returns ``(reachable, seconds)``.
    """
    start = time.perf_counter()
    if not use_abstraction:
        classes = [
            ec
            for ec in routable_equivalence_classes(network)
            if ec.prefix.overlaps(destination)
        ]
        if not classes:
            return False, time.perf_counter() - start
        table = compute_forwarding_table(network, classes[0])
        return table.reachable(source), time.perf_counter() - start

    bonsai = Bonsai(network)
    classes = [
        ec for ec in bonsai.equivalence_classes() if ec.prefix.overlaps(destination)
    ]
    if not classes:
        return False, time.perf_counter() - start
    result = bonsai.compress(classes[0], build_network=True)
    abstract_network = result.abstract_network
    assert abstract_network is not None
    abstract_source = result.abstraction.f(source)
    abstract_classes = [
        ec
        for ec in routable_equivalence_classes(abstract_network)
        if ec.prefix.overlaps(destination)
    ]
    if not abstract_classes:
        return False, time.perf_counter() - start
    table = compute_forwarding_table(abstract_network, abstract_classes[0])
    reachable = any(
        table.reachable(copy)
        for copy in result.abstraction.copies_of(abstract_source)
    )
    return reachable, time.perf_counter() - start
