"""Batch property verification over the compression pipeline.

This is the subsystem that turns the paper's soundness claim into a
measurable, testable artefact: run the *whole* property catalogue
(:data:`~repro.analysis.properties.PROPERTY_REGISTRY`) per destination
equivalence class across every node, on both the concrete network and the
Bonsai-compressed network, and check node by node that the two give the
same verdict (§4.4: CP-equivalence preserves these properties).

The per-class work -- simulate the concrete control plane, compress,
simulate the abstract control plane, evaluate every property on every
node, lift abstract verdicts back through the abstraction mapping -- is
registered as the ``"verify"`` task of the generic
:class:`~repro.pipeline.core.ClassFanOut` engine, so it fans out over the
same serial/thread/process executors as compression itself.

Verdict lifting
---------------
A concrete node ``n`` corresponds to the abstract node ``f(n)``; with BGP
case splitting (Theorem 4.5) ``f(n)`` may have several copies, and the
concrete solution is represented by *some* copy.  Each registered
property therefore declares its quantifier: existential properties
(reachability) hold for ``n`` iff they hold on *any* copy, universal ones
(loop freedom, waypointing, ...) iff they hold on *all* copies.  Without
splitting both quantifiers coincide and the comparison is exact.

Counterexamples are lifted the other way: an abstract witness path is
mapped to the sets of concrete nodes each abstract hop stands for, so a
report can name real devices (see :func:`lift_counterexample`).

The aggregated :class:`VerificationReport` is JSON-serialisable and is
what ``python -m repro.pipeline --verify``, the differential test harness
and the CI benchmark artifact all consume.
"""

from __future__ import annotations

import importlib
import json
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.abstraction.ec import EquivalenceClass, routable_equivalence_classes
from repro.abstraction.mapping import NetworkAbstraction
from repro.analysis.dataplane import compute_forwarding_table
from repro.analysis.properties import (
    Counterexample,
    PropertyContext,
    PropertyResult,
    PropertySpec,
    get_property,
    registered_properties,
)
from repro.analysis.verifier import VerificationTimeout
from repro.config.network import Network
from repro.obs import trace
from repro.pipeline.core import EXECUTORS, ClassFanOut, register_class_task
from repro.pipeline.encoded import EncodedNetwork
from repro.reporting import ReportEnvelope, register_report

#: Format version for the JSON verification reports.
VERIFICATION_REPORT_VERSION = 1

#: Structured counterexamples kept per property per class (the failing
#: node *lists* are always complete; only the path-level witnesses are
#: capped to keep reports small).
MAX_COUNTEREXAMPLES = 3


# ----------------------------------------------------------------------
# Suite selection
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PropertySuite:
    """A selection of registered properties plus their parameters.

    Parameters
    ----------
    names:
        Registered property names, evaluated in this order.
    path_bound:
        Hop bound for ``bounded-path-length``.  ``None`` defaults to the
        *concrete* network's node count (shared by both networks so the
        verdicts stay comparable).
    waypoints:
        Device names for ``waypointing``.  ``None`` defaults to each
        class's originating devices; explicit waypoints are mapped through
        the abstraction (``f`` plus case-split copies) on the abstract side.
    register_modules:
        Importable module names that call
        :func:`~repro.analysis.properties.register_property` at import
        time.  Pool workers resolve property names against *their own*
        registry, so a suite using user-registered properties must name
        the registering modules here (the built-in catalogue needs
        nothing); each worker imports them before evaluating.
    """

    names: Tuple[str, ...]
    path_bound: Optional[int] = None
    waypoints: Optional[Tuple[str, ...]] = None
    register_modules: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        for module in self.register_modules:
            importlib.import_module(module)
        for name in self.names:
            get_property(name)  # raises on unknown names

    @classmethod
    def default(cls, **params) -> "PropertySuite":
        """The full registered catalogue."""
        return cls(names=tuple(registered_properties()), **params)

    @classmethod
    def from_names(cls, names: Sequence[str], **params) -> "PropertySuite":
        """A suite of explicitly selected properties (order preserved)."""
        if not names:
            raise ValueError("a property suite needs at least one property")
        return cls(names=tuple(names), **params)

    def specs(self) -> List[PropertySpec]:
        return [get_property(name) for name in self.names]

    # Pickleable wire form handed to pool workers via task options.
    def to_options(self) -> Dict[str, object]:
        return {
            "properties": list(self.names),
            "path_bound": self.path_bound,
            "waypoints": None if self.waypoints is None else list(self.waypoints),
            "register_modules": list(self.register_modules),
        }

    @classmethod
    def from_options(cls, options: Dict[str, object]) -> "PropertySuite":
        names = options.get("properties") or registered_properties()
        waypoints = options.get("waypoints")
        return cls(
            names=tuple(names),
            path_bound=options.get("path_bound"),
            waypoints=None if waypoints is None else tuple(waypoints),
            register_modules=tuple(options.get("register_modules") or ()),
        )


# ----------------------------------------------------------------------
# Records
# ----------------------------------------------------------------------
@dataclass
class PropertyVerdict:
    """Differential outcome of one property on one equivalence class.

    The three node lists use *concrete* node names: ``abstract_failing``
    holds the concrete nodes whose verdict, lifted from their abstract
    copies, is False.  ``mismatched`` is the soundness oracle -- it must
    stay empty for every effective abstraction.
    """

    property: str
    nodes_checked: int
    concrete_failing: List[str] = field(default_factory=list)
    abstract_failing: List[str] = field(default_factory=list)
    mismatched: List[str] = field(default_factory=list)
    counterexamples: List[Dict] = field(default_factory=list)
    #: False when the property's parameters cannot be expressed on the
    #: abstract network (e.g. a waypoint set that is not a union of
    #: abstraction groups): the abstract verdict is then informational
    #: only and excluded from the soundness oracle.  ``note`` says why.
    comparable: bool = True
    note: str = ""

    @property
    def concrete_passed(self) -> int:
        return self.nodes_checked - len(self.concrete_failing)

    @property
    def abstract_passed(self) -> int:
        return self.nodes_checked - len(self.abstract_failing)

    def agrees(self) -> bool:
        """Whether the abstract and concrete verdicts coincide on every node
        (vacuously true for non-comparable parameterisations)."""
        return (not self.comparable) or not self.mismatched

    def canonical(self) -> Tuple:
        """Everything except witnesses, for executor parity checks."""
        return (
            self.property,
            self.nodes_checked,
            self.comparable,
            tuple(self.concrete_failing),
            tuple(self.abstract_failing),
            tuple(self.mismatched),
        )


@dataclass
class ClassVerificationRecord:
    """All property verdicts for one destination equivalence class."""

    prefix: str
    origins: List[str]
    concrete_nodes: int
    abstract_nodes: int
    concrete_seconds: float
    abstract_seconds: float
    compression_seconds: float
    verdicts: List[PropertyVerdict] = field(default_factory=list)
    timed_out: bool = False

    def agrees(self) -> bool:
        return all(verdict.agrees() for verdict in self.verdicts)

    def canonical(self) -> Tuple:
        return (
            self.prefix,
            tuple(self.origins),
            self.timed_out,
            tuple(verdict.canonical() for verdict in self.verdicts),
        )


# ----------------------------------------------------------------------
# Aggregated report
# ----------------------------------------------------------------------
@register_report
@dataclass
class VerificationReport(ReportEnvelope):
    """Run-level aggregation of every per-class verification record.

    ``speedup`` is the paper-style headline number: total concrete
    verification seconds over total abstract seconds, where the abstract
    side *includes* the compression time (as in Figure 12).
    """

    kind = "verification"

    network_name: str
    executor: str
    workers: int
    num_classes: int
    properties: List[str]
    path_bound: Optional[int]
    encode_seconds: float
    total_seconds: float
    records: List[ClassVerificationRecord] = field(default_factory=list)
    timed_out: bool = False
    version: int = VERIFICATION_REPORT_VERSION

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def concrete_seconds(self) -> float:
        return sum(r.concrete_seconds for r in self.records)

    @property
    def abstract_seconds(self) -> float:
        return sum(r.abstract_seconds for r in self.records)

    @property
    def speedup(self) -> Optional[float]:
        if self.abstract_seconds <= 0:
            return None
        return self.concrete_seconds / self.abstract_seconds

    def verdicts_agree(self) -> bool:
        """The executable soundness theorem: no node disagrees anywhere."""
        return all(record.agrees() for record in self.records)

    def mismatches(self) -> List[Tuple[str, str, List[str]]]:
        """Every divergence as ``(prefix, property, nodes)`` triples."""
        out = []
        for record in self.records:
            for verdict in record.verdicts:
                if verdict.mismatched:
                    out.append((record.prefix, verdict.property, list(verdict.mismatched)))
        return out

    _TOTAL_KEYS = (
        "checked",
        "concrete_passed",
        "concrete_failed",
        "abstract_passed",
        "abstract_failed",
        "mismatched",
    )

    def property_totals(self) -> Dict[str, Dict[str, int]]:
        """Per-property pass/fail/mismatch counts summed over all classes."""
        totals: Dict[str, Dict[str, int]] = {
            name: dict.fromkeys(self._TOTAL_KEYS, 0) for name in self.properties
        }
        for record in self.records:
            for verdict in record.verdicts:
                bucket = totals.setdefault(
                    verdict.property, dict.fromkeys(self._TOTAL_KEYS, 0)
                )
                bucket["checked"] += verdict.nodes_checked
                bucket["concrete_passed"] += verdict.concrete_passed
                bucket["concrete_failed"] += len(verdict.concrete_failing)
                bucket["abstract_passed"] += verdict.abstract_passed
                bucket["abstract_failed"] += len(verdict.abstract_failing)
                bucket["mismatched"] += len(verdict.mismatched)
        return totals

    def canonical_records(self) -> Tuple[Tuple, ...]:
        """Timing-free per-class outcomes, in prefix order, for parity checks."""
        return tuple(
            record.canonical()
            for record in sorted(self.records, key=lambda r: r.prefix)
        )

    def ok(self) -> bool:
        """The report-level gate: verdicts agree and nothing timed out."""
        return self.verdicts_agree() and not self.timed_out

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        data = asdict(self)
        data.update(self.envelope_dict())
        data["aggregate"] = {
            "concrete_seconds": self.concrete_seconds,
            "abstract_seconds": self.abstract_seconds,
            "speedup": self.speedup,
            "verdicts_agree": self.verdicts_agree(),
            "property_totals": self.property_totals(),
        }
        return data

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict) -> "VerificationReport":
        payload = cls.strip_envelope(data)
        payload.pop("aggregate", None)
        records = []
        for raw in payload.pop("records", []):
            raw = dict(raw)
            verdicts = [PropertyVerdict(**verdict) for verdict in raw.pop("verdicts", [])]
            records.append(ClassVerificationRecord(verdicts=verdicts, **raw))
        return cls(records=records, **payload)

    @classmethod
    def from_json(cls, text: str) -> "VerificationReport":
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------
    def summary_lines(self) -> List[str]:
        agree = self.verdicts_agree()
        lines = [
            f"network: {self.network_name}",
            f"executor: {self.executor} (workers={self.workers})",
            f"equivalence classes: {self.num_classes}",
            f"properties: {', '.join(self.properties)}",
            f"concrete verification: {self.concrete_seconds:.3f}s",
            f"abstract verification (incl. compression): {self.abstract_seconds:.3f}s",
        ]
        if self.speedup is not None:
            lines.append(f"abstract-vs-concrete speedup: {self.speedup:.2f}x")
        totals = self.property_totals()
        for name in self.properties:
            bucket = totals[name]
            lines.append(
                f"  {name}: {bucket['concrete_passed']}/{bucket['checked']} pass "
                f"(abstract {bucket['abstract_passed']}/{bucket['checked']}, "
                f"mismatches {bucket['mismatched']})"
            )
        lines.append(
            "abstract and concrete verdicts AGREE on every node"
            if agree
            else f"VERDICTS DIVERGE: {self.mismatches()}"
        )
        if self.timed_out:
            lines.append("run TIMED OUT before checking every class")
        return lines


# ----------------------------------------------------------------------
# Counterexample lifting
# ----------------------------------------------------------------------
def lift_counterexample(
    abstraction: NetworkAbstraction, counterexample: Counterexample
) -> Dict[str, object]:
    """Map an abstract counterexample back through the abstraction mapping.

    Every abstract node mentioned by the witness (its offending node, path
    and cycle) is expanded to the sorted set of concrete nodes it stands
    for, so a report on the compressed network can name real devices.
    """
    mentioned = set(counterexample.path) | set(counterexample.cycle)
    if counterexample.node is not None:
        mentioned.add(counterexample.node)
    candidates: Dict[str, List[str]] = {}
    for abstract_node in sorted(mentioned, key=str):
        members = abstraction.concrete_nodes(str(abstract_node))
        candidates[str(abstract_node)] = sorted(str(node) for node in members)
    return {
        "abstract": counterexample.to_dict(),
        "concrete_candidates": candidates,
    }


# ----------------------------------------------------------------------
# The per-class "verify" task (runs inside pipeline workers)
# ----------------------------------------------------------------------
def _waypoints_for(
    suite: PropertySuite, equivalence_class: EquivalenceClass
) -> FrozenSet[str]:
    if suite.waypoints is not None:
        return frozenset(suite.waypoints)
    return frozenset(str(origin) for origin in equivalence_class.origins)


def _abstract_waypoints(
    abstraction: NetworkAbstraction, waypoints: FrozenSet[str]
) -> FrozenSet[str]:
    lifted = set()
    for waypoint in waypoints:
        if waypoint not in abstraction.node_map:
            continue
        for copy in abstraction.copies_of(abstraction.f(waypoint)):
            lifted.add(copy)
    return frozenset(lifted)


def verify_class_task(bonsai, equivalence_class: EquivalenceClass, options: dict):
    """Differentially verify one equivalence class (the ``"verify"`` task).

    Steps: simulate the concrete forwarding table, evaluate every suite
    property on every node; compress the class (``build_network=True``),
    simulate the abstract forwarding table, evaluate the same properties
    on the abstract nodes and lift the verdicts back to concrete nodes via
    the abstraction mapping; record failures, mismatches and structured
    counterexamples.

    A ``deadline`` (epoch seconds) in ``options`` turns classes reached
    after the budget into ``timed_out`` marker records instead of silently
    dropping them.
    """
    with trace.span("verify", cls=str(equivalence_class.prefix)):
        suite = PropertySuite.from_options(options)
        deadline = options.get("deadline")
        prefix = equivalence_class.prefix
        origins = sorted(str(origin) for origin in equivalence_class.origins)

        if deadline is not None and time.time() >= deadline:
            return ClassVerificationRecord(
                prefix=str(prefix),
                origins=origins,
                concrete_nodes=0,
                abstract_nodes=0,
                concrete_seconds=0.0,
                abstract_seconds=0.0,
                compression_seconds=0.0,
                timed_out=True,
            )

        network: Network = bonsai.network
        nodes = sorted(network.graph.nodes, key=str)
        waypoints = _waypoints_for(suite, equivalence_class)
        path_bound = (
            suite.path_bound if suite.path_bound is not None else network.graph.num_nodes()
        )
        specs = suite.specs()

        # -- concrete side ---------------------------------------------------
        concrete_start = time.perf_counter()
        concrete_table = compute_forwarding_table(
            network,
            equivalence_class,
            compiled=bonsai.compile_for(equivalence_class.prefix),
        )
        concrete_context = PropertyContext(
            table=concrete_table, waypoints=waypoints, path_bound=path_bound
        )
        concrete_results: Dict[str, Dict[str, PropertyResult]] = {
            spec.name: {
                str(node): spec.evaluate(concrete_context, node) for node in nodes
            }
            for spec in specs
        }
        concrete_seconds = time.perf_counter() - concrete_start

        # -- abstract side (compression included in the timing) --------------
        abstract_start = time.perf_counter()
        result = bonsai.compress(equivalence_class, build_network=True)
        abstraction = result.abstraction
        abstract_network = result.abstract_network
        abstract_ec = next(
            candidate
            for candidate in routable_equivalence_classes(abstract_network)
            if candidate.prefix.overlaps(prefix)
        )
        abstract_table = compute_forwarding_table(abstract_network, abstract_ec)
        abstract_context = PropertyContext(
            table=abstract_table,
            waypoints=_abstract_waypoints(abstraction, waypoints),
            path_bound=path_bound,
        )

        # Explicit waypoint sets are only expressible on the abstract network
        # when they are a union of abstraction groups (f⁻¹(f(W)) == W); the
        # class's own origins always are.  A non-closed set still gets both
        # verdicts, but they are flagged as non-comparable rather than counted
        # as a soundness violation.
        waypoints_closed = True
        if suite.waypoints is not None:
            closure = {
                str(member)
                for waypoint in waypoints
                if waypoint in abstraction.node_map
                for member in abstraction.concrete_nodes(abstraction.f(waypoint))
            }
            waypoints_closed = closure <= set(waypoints)

        abstract_cache: Dict[Tuple[str, str], PropertyResult] = {}

        def abstract_result(spec: PropertySpec, abstract_node: str) -> PropertyResult:
            key = (spec.name, abstract_node)
            if key not in abstract_cache:
                abstract_cache[key] = spec.evaluate(abstract_context, abstract_node)
            return abstract_cache[key]

        # Evaluate every property on every abstract node *inside* the timed
        # window, so abstract_seconds measures compression + abstract
        # verification only; the differential comparison below (which scales
        # with the concrete node count) runs against this cache, untimed --
        # otherwise the reported speedup would measure harness overhead.
        for spec in specs:
            for abstract_node in sorted(abstract_network.graph.nodes, key=str):
                abstract_result(spec, abstract_node)
        abstract_seconds = time.perf_counter() - abstract_start

        verdicts: List[PropertyVerdict] = []
        for spec in specs:
            comparable = (not spec.uses_waypoints) or waypoints_closed
            note = (
                ""
                if comparable
                else "waypoint set is not a union of abstraction groups; "
                "abstract verdict is informational only"
            )
            concrete_failing: List[str] = []
            abstract_failing: List[str] = []
            mismatched: List[str] = []
            counterexamples: List[Dict] = []
            for node in nodes:
                name = str(node)
                concrete = concrete_results[spec.name][name]
                copies = abstraction.copies_of(abstraction.f(node))
                copy_results = [abstract_result(spec, copy) for copy in copies]
                if spec.lift == "any":
                    lifted_holds = any(r.holds for r in copy_results)
                else:
                    lifted_holds = all(r.holds for r in copy_results)
                if not concrete.holds:
                    concrete_failing.append(name)
                if not lifted_holds:
                    abstract_failing.append(name)
                if comparable and concrete.holds != lifted_holds:
                    mismatched.append(name)
                if (not concrete.holds or not lifted_holds) and (
                    len(counterexamples) < MAX_COUNTEREXAMPLES
                ):
                    abstract_witness = next(
                        (
                            r.counterexample
                            for r in copy_results
                            if not r.holds and r.counterexample is not None
                        ),
                        None,
                    )
                    counterexamples.append(
                        {
                            "node": name,
                            "concrete": (
                                None
                                if concrete.counterexample is None
                                else concrete.counterexample.to_dict()
                            ),
                            "abstract": (
                                None
                                if abstract_witness is None
                                else lift_counterexample(abstraction, abstract_witness)
                            ),
                        }
                    )
            # A path-quantified verdict built from a truncated enumeration is
            # not exhaustive: the concrete network may hide a violation (or a
            # mismatch artefact) past the cap, so flag rather than gate on it.
            # The check runs after this spec's evaluations, so both tables'
            # truncation sets are populated for it.
            if spec.path_quantified and (
                concrete_table.truncated_sources or abstract_table.truncated_sources
            ):
                if comparable:
                    comparable = False
                    mismatched = []
                note = (note + "; " if note else "") + (
                    "path enumeration hit the max_paths cap; verdict is not exhaustive"
                )
            verdicts.append(
                PropertyVerdict(
                    property=spec.name,
                    nodes_checked=len(nodes),
                    concrete_failing=concrete_failing,
                    abstract_failing=abstract_failing,
                    mismatched=mismatched,
                    counterexamples=counterexamples,
                    comparable=comparable,
                    note=note,
                )
            )

        return ClassVerificationRecord(
            prefix=str(prefix),
            origins=origins,
            concrete_nodes=network.graph.num_nodes(),
            abstract_nodes=result.abstract_nodes,
            concrete_seconds=concrete_seconds,
            abstract_seconds=abstract_seconds,
            compression_seconds=result.compression_seconds,
            verdicts=verdicts,
        )


register_class_task("verify", "repro.analysis.batch:verify_class_task")


# ----------------------------------------------------------------------
# The batch engine
# ----------------------------------------------------------------------
class BatchVerifier:
    """Run a property suite differentially over every equivalence class.

    The per-class work is dispatched through the pipeline's
    :class:`~repro.pipeline.core.ClassFanOut` engine, so it scales over the
    same ``serial`` / ``thread`` / ``process`` executors as compression,
    and the one-time :class:`~repro.pipeline.encoded.EncodedNetwork`
    artifact can be shared between arms.

    Parameters mirror :class:`~repro.pipeline.core.ClassFanOut`, plus:

    suite:
        The :class:`PropertySuite` to run (default: the full catalogue).
    timeout_seconds:
        Wall-clock budget.  Classes started after the budget become
        ``timed_out`` marker records; by default :meth:`run` then raises
        :class:`~repro.analysis.verifier.VerificationTimeout` carrying the
        partial report on its ``partial`` attribute (pass
        ``raise_on_timeout=False`` to get the flagged report back instead
        -- the timeout is reported either way, never swallowed).
    """

    def __init__(
        self,
        network: Optional[Network] = None,
        *,
        artifact: Optional[EncodedNetwork] = None,
        suite: Optional[PropertySuite] = None,
        executor: str = "process",
        workers: int = 4,
        batch_size: Optional[int] = None,
        limit: Optional[int] = None,
        timeout_seconds: Optional[float] = None,
        use_bdds: bool = True,
        scheduler: str = "stealing",
        cost_store=None,
    ):
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of {EXECUTORS}"
            )
        self.suite = suite or PropertySuite.default()
        self.timeout_seconds = timeout_seconds
        self._fanout_kwargs = dict(
            artifact=artifact,
            executor=executor,
            workers=workers,
            batch_size=batch_size,
            limit=limit,
            use_bdds=use_bdds,
            scheduler=scheduler,
            cost_store=cost_store,
        )
        self.network = network
        self.executor = executor
        self.workers = workers

    def run(self, raise_on_timeout: bool = True) -> VerificationReport:
        """Verify every class and aggregate the differential verdicts."""
        from repro import obs

        counters_before = obs.snapshot_run()
        start = time.perf_counter()
        options = self.suite.to_options()
        if self.timeout_seconds is not None:
            options["deadline"] = time.time() + self.timeout_seconds
        fanout = ClassFanOut(
            self.network,
            task="verify",
            task_options=options,
            **self._fanout_kwargs,
        )
        records: List[ClassVerificationRecord] = fanout.execute()
        artifact = fanout.artifact
        num_classes = len(fanout.last_classes)
        report = VerificationReport(
            network_name=fanout.network.name,
            executor=self.executor,
            workers=1 if self.executor == "serial" else self.workers,
            num_classes=num_classes,
            properties=list(self.suite.names),
            path_bound=self.suite.path_bound,
            encode_seconds=artifact.encode_seconds,
            total_seconds=time.perf_counter() - start,
            records=records,
            timed_out=any(record.timed_out for record in records),
        )
        obs.finish_run(report, counters_before)
        if report.timed_out and raise_on_timeout:
            skipped = sum(1 for record in records if record.timed_out)
            raise VerificationTimeout(
                f"batch verification of {report.network_name} exceeded "
                f"{self.timeout_seconds}s ({skipped}/{len(records)} classes "
                f"not checked)",
                partial=report,
            )
        return report


def verify_network(
    network: Network,
    properties: Optional[Sequence[str]] = None,
    **kwargs,
) -> VerificationReport:
    """One-call batch verification (serial by default).

    ``properties`` selects registry names; remaining keyword arguments are
    forwarded to :class:`BatchVerifier`.
    """
    suite = (
        PropertySuite.default()
        if properties is None
        else PropertySuite.from_names(properties)
    )
    kwargs.setdefault("executor", "serial")
    return BatchVerifier(network, suite=suite, **kwargs).run()
