"""Downstream analyses run on concrete or compressed networks."""

from repro.analysis.dataplane import (
    DataPlane,
    ForwardingTable,
    compute_data_plane,
    compute_forwarding_table,
    forwarding_table_from_solution,
)
from repro.analysis.properties import (
    PropertyResult,
    check_all_paths_reach,
    check_black_hole,
    check_multipath_consistency,
    check_path_length,
    check_reachability,
    check_routing_loop,
    check_waypointing,
    path_lengths,
    reachable_sources,
)
from repro.analysis.verifier import (
    ReachabilityMatrix,
    VerificationResult,
    VerificationTimeout,
    single_reachability_query,
    verify_all_pairs_reachability,
    verify_with_abstraction,
)

__all__ = [
    "DataPlane",
    "ForwardingTable",
    "compute_data_plane",
    "compute_forwarding_table",
    "forwarding_table_from_solution",
    "PropertyResult",
    "check_all_paths_reach",
    "check_black_hole",
    "check_multipath_consistency",
    "check_path_length",
    "check_reachability",
    "check_routing_loop",
    "check_waypointing",
    "path_lengths",
    "reachable_sources",
    "ReachabilityMatrix",
    "VerificationResult",
    "VerificationTimeout",
    "single_reachability_query",
    "verify_all_pairs_reachability",
    "verify_with_abstraction",
]
