"""Process-level performance measurement shared by the benchmarks.

The scale benchmark (``benchmarks/bench_scale.py``), the hot-path
benchmark (``benchmarks/bench_hotpaths.py``) and the ``--memory-budget``
CLI gate all need one number: the peak resident set of the work that just
ran, including any worker processes a pool spawned.  :func:`peak_rss_mb`
is that number, measured the cheap way the platform provides:

* on POSIX, ``resource.getrusage`` -- ``ru_maxrss`` of the calling
  process plus (optionally) the summed high-water mark of its reaped
  children.  ``ru_maxrss`` is kilobytes on Linux and bytes on macOS;
  both are normalised to MiB;
* where :mod:`resource` is unavailable (non-POSIX builds), a
  :mod:`tracemalloc` fallback reports the Python-heap peak instead --
  an under-estimate, but still monotone in the workload, which is all
  the regression gates need.

``ru_maxrss`` is a high-water mark for the *process lifetime*: it never
goes down.  Benchmarks that want a clean per-stage peak therefore run
each stage in a fresh child process (see ``bench_scale.py``) rather than
trying to reset the counter.
"""

from __future__ import annotations

import sys

try:  # POSIX only; Windows builds fall back to tracemalloc.
    import resource
except ImportError:  # pragma: no cover - non-POSIX
    resource = None  # type: ignore[assignment]


def _maxrss_to_mb(ru_maxrss: int) -> float:
    # Linux reports kilobytes, macOS bytes (both "since process start").
    if sys.platform == "darwin":  # pragma: no cover - platform specific
        return ru_maxrss / (1024.0 * 1024.0)
    return ru_maxrss / 1024.0


def peak_rss_mb(include_children: bool = True) -> float:
    """The peak resident set of this process, in MiB.

    ``include_children`` adds the summed high-water mark of reaped child
    processes (pool workers).  Self and children peak at different
    moments, so the sum is an upper estimate of the true combined peak --
    the conservative direction for a memory *budget* check.
    """
    if resource is not None:
        total = _maxrss_to_mb(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
        if include_children:
            total += _maxrss_to_mb(
                resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
            )
        return total
    return _tracemalloc_peak_mb()


def _tracemalloc_peak_mb() -> float:  # pragma: no cover - non-POSIX fallback
    import tracemalloc

    if not tracemalloc.is_tracing():
        # Nothing was traced: start now so at least future calls in this
        # process see real numbers, and report the current heap.
        tracemalloc.start()
    _, peak = tracemalloc.get_traced_memory()
    return peak / (1024.0 * 1024.0)
