"""Synthetic substitute for the paper's operational datacenter (§8).

The paper's first real network is a 197-router datacenter "organized into
multiple clusters, each with a Clos-like topology", running eBGP and static
routing with extensive route filters, ACLs and BGP communities -- including
many community tags that are attached but never matched on.  Those
configurations are proprietary, so this generator builds a synthetic
network with the same structural ingredients:

* a small core layer connecting several clusters;
* each cluster is a Clos of spine and leaf (ToR) switches;
* every device runs eBGP (its own private AS) with destination prefix
  filters; spines additionally filter exports towards the core to their
  cluster's aggregate;
* each leaf attaches a cluster-identifying community that nothing ever
  matches (the "irrelevant tags" that inflate role counts);
* a few leaves per cluster carry static routes, and core routers apply an
  ACL towards the clusters for a quarantined prefix.

With the default parameters the network has 197 devices, mirroring the
paper's node count; the interface count is much smaller than the paper's
16k because virtual interfaces are not modelled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.config.acl import Acl, AclLine
from repro.config.device import DeviceConfig, StaticRouteConfig
from repro.config.network import Network
from repro.config.prefix import Prefix
from repro.config.routemap import (
    PrefixList,
    PrefixListEntry,
    RouteMap,
    RouteMapClause,
)
from repro.netgen.base import make_bgp_device, IMPORT_MAP
from repro.topology.graph import Graph

#: Prefix that core ACLs quarantine (data-plane only).
QUARANTINE_PREFIX = Prefix.parse("10.200.0.0/16")

CLUSTER_EXPORT_MAP = "EXPORT-CLUSTER"
LEAF_EXPORT_MAP = "EXPORT-LEAF"
CORE_ACL = "QUARANTINE"


@dataclass(frozen=True)
class DatacenterParams:
    """Size knobs for the synthetic datacenter."""

    clusters: int = 8
    spines_per_cluster: int = 4
    leaves_per_cluster: int = 20
    core_routers: int = 5
    static_leaves_per_cluster: int = 2

    @property
    def total_devices(self) -> int:
        per_cluster = self.spines_per_cluster + self.leaves_per_cluster
        return self.core_routers + self.clusters * per_cluster


#: The default parameters give the paper's 197 devices.
PAPER_SCALE = DatacenterParams()

#: A small instance for tests and examples.
SMALL_SCALE = DatacenterParams(
    clusters=3, spines_per_cluster=2, leaves_per_cluster=4, core_routers=2,
    static_leaves_per_cluster=1,
)


def _cluster_aggregate(cluster: int) -> Prefix:
    return Prefix.parse(f"10.{cluster}.0.0/16")


def _leaf_prefix(cluster: int, leaf: int) -> Prefix:
    return Prefix.parse(f"10.{cluster}.{leaf}.0/24")


def _cluster_export_map(cluster: int) -> RouteMap:
    """Spine-to-core export policy: only the cluster's aggregate space."""
    return RouteMap(
        name=f"{CLUSTER_EXPORT_MAP}-{cluster}",
        clauses=(
            RouteMapClause(
                sequence=10,
                action="permit",
                match_prefix_lists=(f"CLUSTER-{cluster}",),
            ),
        ),
    )


def _cluster_prefix_list(cluster: int) -> PrefixList:
    return PrefixList(
        name=f"CLUSTER-{cluster}",
        entries=(
            PrefixListEntry(
                prefix=_cluster_aggregate(cluster), action="permit", ge=16, le=32
            ),
        ),
    )


def _leaf_export_map(cluster: int) -> RouteMap:
    """Leaf export policy: advertise site space, tagging announcements with
    the cluster community -- which nothing ever matches on.  These
    irrelevant tags are what inflated the role count of the paper's real
    datacenter before the attribute abstraction stripped them (§8)."""
    return RouteMap(
        name=LEAF_EXPORT_MAP,
        clauses=(
            RouteMapClause(
                sequence=10,
                action="permit",
                match_prefix_lists=("SITE-PREFIXES",),
                set_communities=(f"65001:{1000 + cluster}",),
            ),
        ),
    )


def datacenter_network(params: DatacenterParams = PAPER_SCALE) -> Network:
    """Build the synthetic multi-cluster Clos datacenter."""
    graph = Graph()
    cores = [f"core{i}" for i in range(params.core_routers)]
    for core in cores:
        graph.add_node(core)

    spine_names: Dict[int, List[str]] = {}
    leaf_names: Dict[int, List[str]] = {}
    for cluster in range(params.clusters):
        spines = [f"c{cluster}spine{i}" for i in range(params.spines_per_cluster)]
        leaves = [f"c{cluster}leaf{i}" for i in range(params.leaves_per_cluster)]
        spine_names[cluster] = spines
        leaf_names[cluster] = leaves
        for spine in spines:
            graph.add_node(spine)
            for core in cores:
                graph.add_undirected_edge(spine, core)
            for leaf in leaves:
                graph.add_undirected_edge(spine, leaf)

    devices: Dict[str, DeviceConfig] = {}

    # --- core routers --------------------------------------------------
    quarantine_acl = Acl(
        name=CORE_ACL,
        lines=(AclLine(action="deny", prefix=QUARANTINE_PREFIX),),
        default_action="permit",
    )
    for core in cores:
        device = make_bgp_device(name=core, neighbours=graph.successors(core))
        device.acls[CORE_ACL] = quarantine_acl
        for peer in graph.successors(core):
            device.interface_acls[peer] = CORE_ACL
        devices[core] = device

    # --- clusters -------------------------------------------------------
    for cluster in range(params.clusters):
        cluster_list = _cluster_prefix_list(cluster)
        spine_export = _cluster_export_map(cluster)
        leaf_export = _leaf_export_map(cluster)

        for spine in spine_names[cluster]:
            import_maps = {peer: IMPORT_MAP for peer in graph.successors(spine)}
            device = make_bgp_device(
                name=spine,
                neighbours=graph.successors(spine),
                import_maps=import_maps,
                extra_route_maps={spine_export.name: spine_export},
            )
            device.prefix_lists[cluster_list.name] = cluster_list
            # Exports towards the core use the cluster filter; exports to
            # leaves keep the default site filter.
            for core in cores:
                device.bgp_neighbors[core].export_policy = spine_export.name
            devices[spine] = device

        for index, leaf in enumerate(leaf_names[cluster]):
            device = make_bgp_device(
                name=leaf,
                neighbours=graph.successors(leaf),
                originated=_leaf_prefix(cluster, index),
                extra_route_maps={leaf_export.name: leaf_export},
            )
            device.prefix_lists[cluster_list.name] = cluster_list
            for spine in spine_names[cluster]:
                device.bgp_neighbors[spine].export_policy = leaf_export.name
            if index < params.static_leaves_per_cluster:
                # A handful of leaves pin a management prefix to their first
                # spine with a static route (the paper notes statics are a
                # major source of residual role differences).
                device.static_routes.append(
                    StaticRouteConfig(
                        prefix=Prefix.parse(f"10.250.{cluster}.0/24"),
                        next_hop=spine_names[cluster][0],
                    )
                )
            devices[leaf] = device

    return Network(graph=graph, devices=devices, name="datacenter")
