"""A size-parameterised registry of the generated topology families.

The compression pipeline CLI (``python -m repro.pipeline``) and the scaling
benchmark address every generator through one ``(family, size)`` interface,
so this module maps each family name to a builder taking a single integer:

* ``fattree`` -- ``size`` is the arity ``k`` (must be even);
* ``mesh`` / ``ring`` -- ``size`` is the number of routers;
* ``datacenter`` -- ``size`` is the number of clusters (other knobs follow
  the small test scale);
* ``wan`` -- ``size`` is the number of regions (other knobs follow the
  small test scale).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.config.network import Network
from repro.netgen.datacenter import DatacenterParams, datacenter_network
from repro.netgen.fattree import fattree_network
from repro.netgen.mesh import full_mesh_network
from repro.netgen.ring import ring_network
from repro.netgen.wan import WanParams, wan_network


def _datacenter(size: int) -> Network:
    return datacenter_network(
        DatacenterParams(
            clusters=size,
            spines_per_cluster=2,
            leaves_per_cluster=4,
            core_routers=2,
            static_leaves_per_cluster=1,
        )
    )


def _wan(size: int) -> Network:
    return wan_network(
        WanParams(
            core_routers=2,
            regions=size,
            access_per_region=4,
            static_access_per_region=1,
        )
    )


#: family name -> (builder, human description of the size parameter).
TOPOLOGY_FAMILIES: Dict[str, Tuple[Callable[[int], Network], str]] = {
    "fattree": (fattree_network, "fat-tree arity k (even)"),
    "mesh": (full_mesh_network, "number of routers"),
    "ring": (ring_network, "number of routers"),
    "datacenter": (_datacenter, "number of clusters"),
    "wan": (_wan, "number of regions"),
}

#: The size each family defaults to when the CLI is invoked without
#: ``--size`` (small enough for smoke runs, large enough to compress).
DEFAULT_FAMILY_SIZES: Dict[str, int] = {
    "fattree": 4,
    "mesh": 6,
    "ring": 8,
    "datacenter": 2,
    "wan": 2,
}


#: Scenario-aware failure-sweep defaults: how many scenarios a
#: ``--failures`` run samples per family when the user does not say.
#: ``None`` means "enumerate exhaustively" -- right for sparse families
#: whose ≤k spaces stay small (fat-trees, rings); dense or large families
#: (the full mesh most of all: C(n*(n-1)/2, k) scenarios) get a
#: deterministic seeded sample so default sweeps stay interactive.
DEFAULT_FAILURE_SAMPLES: Dict[str, Optional[int]] = {
    "fattree": None,
    "ring": None,
    "mesh": 24,
    "datacenter": 32,
    "wan": 32,
}


def default_size(family: str) -> int:
    """The default size parameter for ``family``."""
    try:
        return DEFAULT_FAMILY_SIZES[family]
    except KeyError:
        known = ", ".join(sorted(TOPOLOGY_FAMILIES))
        raise ValueError(
            f"unknown topology family {family!r}; expected one of: {known}"
        ) from None


def default_failure_sample(family: str, k: int = 1) -> Optional[int]:
    """The default scenario-sample cap for a failure sweep of ``family``.

    Exhaustive single-link sweeps are the audit operators actually run, so
    ``k=1`` enumerates exhaustively everywhere; beyond that the per-family
    cap applies (``None`` keeps exhaustive enumeration).
    """
    try:
        cap = DEFAULT_FAILURE_SAMPLES[family]
    except KeyError:
        known = ", ".join(sorted(TOPOLOGY_FAMILIES))
        raise ValueError(
            f"unknown topology family {family!r}; expected one of: {known}"
        ) from None
    if k <= 1:
        return None
    return cap


def build_topology(family: str, size: Optional[int] = None) -> Network:
    """Build a configured network of ``family`` at ``size`` (default size
    per :data:`DEFAULT_FAMILY_SIZES` when omitted)."""
    try:
        builder, _ = TOPOLOGY_FAMILIES[family]
    except KeyError:
        known = ", ".join(sorted(TOPOLOGY_FAMILIES))
        raise ValueError(f"unknown topology family {family!r}; expected one of: {known}")
    return builder(size if size is not None else default_size(family))
