"""Configured fat-tree networks (Table 1(a) and Figure 11 workloads).

Two routing-policy flavours are supported, matching Figure 11:

* ``shortest_path`` -- plain eBGP shortest (AS-path) routing with the
  standard destination prefix filters; every device plays one of three
  roles (core / aggregation / edge), so compression is maximal.
* ``prefer_bottom`` -- the middle (aggregation) tier assigns a higher
  local preference to routes learned from the edge tier below it.  This
  gives aggregation routers two possible local-preference values, which
  triggers the BGP-effective machinery (∀∀ refinement + case splitting)
  and yields a larger abstract network, as the paper's figure shows.
"""

from __future__ import annotations

from typing import Dict

from repro.config.device import DeviceConfig
from repro.config.network import Network
from repro.config.routemap import RouteMap, RouteMapClause
from repro.netgen.base import (
    IMPORT_MAP,
    make_bgp_device,
    prefix_for_index,
)
from repro.topology.builders import fattree_topology

#: Local preference the aggregation tier assigns to routes from the edge tier.
PREFER_BOTTOM_LOCAL_PREF = 200
PREFER_BOTTOM_MAP = "PREFER-BOTTOM"

#: The policy flavours understood by :func:`fattree_network`.
POLICIES = ("shortest_path", "prefer_bottom")


def _prefer_bottom_map() -> RouteMap:
    return RouteMap(
        name=PREFER_BOTTOM_MAP,
        clauses=(
            RouteMapClause(
                sequence=10, action="permit", set_local_pref=PREFER_BOTTOM_LOCAL_PREF
            ),
        ),
    )


def fattree_network(k: int, policy: str = "shortest_path") -> Network:
    """A configured k-ary fat-tree running eBGP.

    Every edge (top-of-rack) switch originates one /24; aggregation and
    core switches only transit.  ``policy`` selects the Figure 11 variant.
    """
    if policy not in POLICIES:
        raise ValueError(f"unknown fat-tree policy {policy!r}; expected one of {POLICIES}")
    graph, roles = fattree_topology(k)

    edge_nodes = sorted(node for node, role in roles.items() if role == "edge")
    origin_index = {node: i for i, node in enumerate(edge_nodes)}

    devices: Dict[str, DeviceConfig] = {}
    for node in graph.nodes:
        role = roles[node]
        originated = prefix_for_index(origin_index[node]) if node in origin_index else None
        import_maps = None
        extra_maps = None
        if policy == "prefer_bottom" and role == "aggregation":
            # Sessions towards the edge tier get the higher local preference.
            import_maps = {
                peer: (PREFER_BOTTOM_MAP if roles[peer] == "edge" else IMPORT_MAP)
                for peer in graph.successors(node)
            }
            extra_maps = {PREFER_BOTTOM_MAP: _prefer_bottom_map()}
        devices[node] = make_bgp_device(
            name=str(node),
            neighbours=graph.successors(node),
            originated=originated,
            import_maps=import_maps,
            extra_route_maps=extra_maps,
        )
    return Network(graph=graph, devices=devices, name=f"fattree-k{k}-{policy}")


def fattree_roles(k: int) -> Dict[str, str]:
    """The role (core / aggregation / edge) of each node in the k-ary fat-tree."""
    _, roles = fattree_topology(k)
    return {str(node): role for node, role in roles.items()}
