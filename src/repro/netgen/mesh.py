"""Configured full-mesh networks (Table 1(a) workload).

Every pair of routers shares an eBGP session; each router originates one
/24.  Because every non-destination router is symmetric to every other,
Bonsai compresses a full mesh of any size to two abstract nodes (the
destination plus one node for everyone else), with a single abstract edge
-- the most favourable case in Table 1(a).
"""

from __future__ import annotations

from repro.config.network import Network
from repro.netgen.base import uniform_bgp_network
from repro.topology.builders import full_mesh_topology


def full_mesh_network(size: int) -> Network:
    """A configured full mesh of ``size`` eBGP routers."""
    graph, _roles = full_mesh_topology(size)
    return uniform_bgp_network(graph, name=f"mesh-{size}")
