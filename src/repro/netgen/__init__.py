"""Configured-network generators for the evaluation workloads."""

from repro.netgen.base import (
    EXPORT_MAP,
    IMPORT_MAP,
    SITE_AGGREGATE,
    SITE_PREFIX_LIST,
    make_bgp_device,
    permit_all_map,
    prefix_for_index,
    site_prefix_list,
    standard_export_map,
    uniform_bgp_network,
)
from repro.netgen.fattree import (
    PREFER_BOTTOM_LOCAL_PREF,
    POLICIES,
    fattree_network,
    fattree_roles,
)
from repro.netgen.ring import ring_network
from repro.netgen.mesh import full_mesh_network
from repro.netgen.datacenter import (
    DatacenterParams,
    PAPER_SCALE as DATACENTER_PAPER_SCALE,
    SMALL_SCALE as DATACENTER_SMALL_SCALE,
    datacenter_network,
)
from repro.netgen.families import (
    DEFAULT_FAMILY_SIZES,
    TOPOLOGY_FAMILIES,
    build_topology,
    default_size,
)
from repro.netgen.wan import (
    PAPER_SCALE as WAN_PAPER_SCALE,
    SMALL_SCALE as WAN_SMALL_SCALE,
    WanParams,
    wan_network,
)

__all__ = [
    "EXPORT_MAP",
    "IMPORT_MAP",
    "SITE_AGGREGATE",
    "SITE_PREFIX_LIST",
    "make_bgp_device",
    "permit_all_map",
    "prefix_for_index",
    "site_prefix_list",
    "standard_export_map",
    "uniform_bgp_network",
    "PREFER_BOTTOM_LOCAL_PREF",
    "POLICIES",
    "fattree_network",
    "fattree_roles",
    "ring_network",
    "full_mesh_network",
    "DatacenterParams",
    "DATACENTER_PAPER_SCALE",
    "DATACENTER_SMALL_SCALE",
    "datacenter_network",
    "WAN_PAPER_SCALE",
    "WAN_SMALL_SCALE",
    "WanParams",
    "wan_network",
    "DEFAULT_FAMILY_SIZES",
    "TOPOLOGY_FAMILIES",
    "build_topology",
    "default_size",
]
