"""Change-scenario samplers: deterministic change scripts per family.

``python -m repro.pipeline --delta`` needs realistic what-if scripts for
every generated topology family without the operator writing JSON by
hand.  This module derives them from the network itself, covering the
change classes an operator actually ships:

* a **compression-invariant** edit (an interface ACL that never matches
  the site's destination space): the control plane and every class
  signature are untouched, so a sweep must report *zero* re-compressed
  classes -- the abstraction-reuse showcase;
* a **route-map tightening** (a deny clause, guarded by a new prefix
  list, for one origin's /24 on a transit device's export map): breaks
  reachability for exactly that destination class and dirties only it;
* a **local-preference override** on the highest-degree device's first
  session;
* a **link decommission** of the busiest link (a topology change: every
  class re-compresses);
* an **anycast origination** of the first origin's prefix from a second
  device (an origin-set change: exercises the scratch path).

Scripts are deterministic for a fixed ``(network, seed)``; the ``seed``
rotates which devices and links are picked so sweeps can cover different
corners of the same topology.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.config.acl import AclLine
from repro.config.network import Network
from repro.config.prefix import Prefix
from repro.config.routemap import PrefixListEntry, RouteMapClause
from repro.delta.changeset import (
    ChangeError,
    ChangeSet,
    InterfaceAclSet,
    LinkCostSet,
    LinkRemove,
    LocalPrefOverride,
    PrefixOriginate,
    PrefixListSet,
    RouteMapClauseInsert,
)

#: Address space the generators never allocate: ACLs and filters over it
#: are guaranteed destination-invariant for every generated class.
OFFSITE_PREFIX = "192.168.0.0/16"

#: The steps :func:`generated_change_script` emits when the caller does
#: not cap them (ordered: benign first, churn last).
DEFAULT_CHANGE_STEPS = 4


def _sorted_devices(network: Network) -> List[str]:
    return sorted(str(name) for name in network.devices)


def _origin_devices(network: Network) -> List[str]:
    return sorted(
        str(name)
        for name, device in network.devices.items()
        if device.originated_prefixes and network.graph.has_node(name)
    )


def _hub(network: Network, rng: random.Random) -> Optional[str]:
    graph = network.graph
    candidates = sorted((str(n) for n in graph.nodes), key=lambda n: (-graph.degree(n), n))
    if not candidates:
        return None
    top = [n for n in candidates if graph.degree(n) == graph.degree(candidates[0])]
    return top[rng.randrange(len(top))]


def _busiest_link(network: Network, rng: random.Random) -> Optional[tuple]:
    graph = network.graph
    links = sorted({tuple(sorted((str(u), str(v)))) for u, v in graph.edges})
    if not links:
        return None
    links.sort(key=lambda link: (-(graph.degree(link[0]) + graph.degree(link[1])), link))
    best_score = graph.degree(links[0][0]) + graph.degree(links[0][1])
    top = [
        link
        for link in links
        if graph.degree(link[0]) + graph.degree(link[1]) == best_score
    ]
    return top[rng.randrange(len(top))]


def invariant_acl_change(network: Network, rng: random.Random) -> Optional[ChangeSet]:
    """An interface ACL over off-site space: compression-invariant."""
    hub = _hub(network, rng)
    if hub is None:
        return None
    neighbours = sorted(str(n) for n in network.graph.successors(hub))
    if not neighbours:
        return None
    peer = neighbours[rng.randrange(len(neighbours))]
    return ChangeSet(
        changes=(
            InterfaceAclSet(
                device=hub,
                peer=peer,
                name="DELTA-OFFSITE",
                lines=(AclLine(action="deny", prefix=Prefix.parse(OFFSITE_PREFIX)),),
                default_action="permit",
            ),
        ),
        name=f"invariant-acl({hub}->{peer})",
    )


def tighten_export_change(network: Network, rng: random.Random) -> Optional[ChangeSet]:
    """Deny one origin's /24 on a transit neighbour's export map.

    Dirties exactly that destination class (the deny clause specialises
    away for every other destination) and typically breaks reachability
    through the tightened device.
    """
    origins = _origin_devices(network)
    if not origins:
        return None
    origin = origins[rng.randrange(len(origins))]
    target = network.devices[origin].originated_prefixes[0]
    # Tighten a transit device next to the origin: the class's routes must
    # actually flow through it for the change to bite.
    neighbours = sorted(str(n) for n in network.graph.successors(origin))
    for candidate in neighbours:
        device = network.devices.get(candidate)
        if device is None:
            continue
        export_names = sorted(
            {
                session.export_policy
                for session in device.bgp_neighbors.values()
                if session.export_policy
            }
        )
        if not export_names:
            continue
        export_map = export_names[0]
        sequences = {
            clause.sequence for clause in device.route_maps[export_map].clauses
        }
        sequence = 1
        while sequence in sequences:
            sequence += 1
        return ChangeSet(
            changes=(
                PrefixListSet(
                    device=candidate,
                    name="DELTA-TIGHTEN",
                    entries=(
                        PrefixListEntry(prefix=target, action="permit"),
                    ),
                ),
                RouteMapClauseInsert(
                    device=candidate,
                    route_map=export_map,
                    clause=RouteMapClause(
                        sequence=sequence,
                        action="deny",
                        match_prefix_lists=("DELTA-TIGHTEN",),
                    ),
                ),
            ),
            name=f"tighten-export({candidate}:{export_map}!{target})",
        )
    return None


def prefer_neighbour_change(network: Network, rng: random.Random) -> Optional[ChangeSet]:
    """Raise the import local preference of the hub's first session."""
    hub = _hub(network, rng)
    if hub is None:
        return None
    sessions = sorted(network.devices[hub].bgp_neighbors)
    if not sessions:
        return None
    peer = sessions[rng.randrange(len(sessions))]
    return ChangeSet(
        changes=(LocalPrefOverride(device=hub, peer=peer, local_pref=300),),
        name=f"prefer-neighbour({hub}<-{peer})",
    )


def decommission_link_change(network: Network, rng: random.Random) -> Optional[ChangeSet]:
    """Decommission the busiest link (sessions removed with it)."""
    link = _busiest_link(network, rng)
    if link is None:
        return None
    return ChangeSet(
        changes=(LinkRemove(u=link[0], v=link[1]),),
        name=f"decommission({link[0]}|{link[1]})",
    )


def anycast_origin_change(network: Network, rng: random.Random) -> Optional[ChangeSet]:
    """Anycast the first origin's prefix from a second originating device."""
    origins = _origin_devices(network)
    if len(origins) < 2:
        return None
    first = origins[0]
    target = network.devices[first].originated_prefixes[0]
    others = [
        name
        for name in origins[1:]
        if target not in network.devices[name].originated_prefixes
    ]
    if not others:
        return None
    twin = others[rng.randrange(len(others))]
    return ChangeSet(
        changes=(PrefixOriginate(device=twin, prefix=target),),
        name=f"anycast({twin}:{target})",
    )


def reweigh_ospf_change(network: Network, rng: random.Random) -> Optional[ChangeSet]:
    """Double the OSPF cost of some adjacency (families that run OSPF)."""
    candidates = []
    for name, device in sorted(network.devices.items()):
        for peer, link in sorted(device.ospf_links.items()):
            if network.graph.has_edge(name, peer):
                other = network.devices.get(peer)
                if other is not None and name in other.ospf_links:
                    candidates.append((str(name), str(peer), link.cost))
    if not candidates:
        return None
    u, v, cost = candidates[rng.randrange(len(candidates))]
    return ChangeSet(
        changes=(LinkCostSet(u=u, v=v, cost=cost * 2),),
        name=f"ospf-reweigh({u}|{v})",
    )


#: Sampler order: benign, per-class, preference, topology, origin churn.
_SAMPLERS = (
    invariant_acl_change,
    tighten_export_change,
    prefer_neighbour_change,
    decommission_link_change,
    anycast_origin_change,
    reweigh_ospf_change,
)


def generated_change_script(
    network: Network,
    family: Optional[str] = None,
    steps: Optional[int] = None,
    seed: int = 0,
) -> List[ChangeSet]:
    """A deterministic what-if script derived from the network itself.

    ``family`` is advisory (kept for symmetry with the topology
    registry); the samplers introspect the network, so unsupported change
    classes -- OSPF reweighing on a pure-BGP fat-tree, say -- simply drop
    out.  ``steps`` caps the script length (default
    :data:`DEFAULT_CHANGE_STEPS`); ``seed`` rotates which devices and
    links the samplers pick.
    """
    rng = random.Random(f"{family or network.name}:{seed}")
    limit = DEFAULT_CHANGE_STEPS if steps is None else steps
    if limit < 1:
        raise ValueError("a change script needs at least one step")
    script: List[ChangeSet] = []
    for sampler in _SAMPLERS:
        if len(script) >= limit:
            break
        changeset = sampler(network, rng)
        if changeset is None:
            continue
        # Validate against the cumulative state so far; a sampler whose
        # pick no longer applies (e.g. the busiest link was already
        # removed) is skipped rather than emitted broken.  Only the
        # documented skip case is caught -- a crashing sampler or
        # apply() is a bug and must surface.
        current = network
        try:
            for prior in script:
                current = prior.apply(current)
            changeset.assert_valid(current)
        except ChangeError:
            continue
        script.append(changeset)
    if not script:
        raise ValueError(
            f"no applicable change scenario could be derived for {network.name}"
        )
    return script


#: family name -> steps the CLI defaults to (None = DEFAULT_CHANGE_STEPS).
DEFAULT_CHANGE_STEP_COUNTS: Dict[str, Optional[int]] = {
    "fattree": None,
    "mesh": 3,
    "ring": None,
    "datacenter": None,
    "wan": None,
}


def default_change_steps(family: str) -> int:
    """The default script length for a ``--delta`` sweep of ``family``."""
    cap = DEFAULT_CHANGE_STEP_COUNTS.get(family)
    return DEFAULT_CHANGE_STEPS if cap is None else cap
