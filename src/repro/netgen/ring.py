"""Configured ring networks (Table 1(a) workload).

Every router on the ring runs eBGP with its two neighbours, originates one
/24 and exports through the standard site filter.  Rings are the hardest
synthetic case for Bonsai: the abstraction must preserve path length, so
the compressed network's size grows with the ring's diameter (roughly n/2
abstract nodes), which is exactly the trend Table 1(a) reports.
"""

from __future__ import annotations

from repro.config.network import Network
from repro.netgen.base import uniform_bgp_network
from repro.topology.builders import ring_topology


def ring_network(size: int) -> Network:
    """A configured ring of ``size`` eBGP routers."""
    graph, _roles = ring_topology(size)
    network = uniform_bgp_network(graph, name=f"ring-{size}")
    return network
