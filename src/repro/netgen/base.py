"""Shared helpers for the configuration generators.

The generators turn bare topologies into fully configured
:class:`~repro.config.network.Network` objects: address allocation, the
standard eBGP session mesh over physical links, and the common
"permit data-centre space" export filter used by the synthetic networks in
the paper's evaluation (each network "uses eBGP to perform shortest path
routing along with destination-based prefix filters to each destination").
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

from repro.config.device import BgpNeighborConfig, DeviceConfig
from repro.config.network import Network
from repro.config.prefix import Prefix
from repro.config.routemap import (
    PrefixList,
    PrefixListEntry,
    RouteMap,
    RouteMapClause,
)
from repro.topology.graph import Graph

#: The aggregate covering every address the generators allocate.
SITE_AGGREGATE = Prefix.parse("10.0.0.0/8")

#: Names shared by all generated devices.
EXPORT_MAP = "EXPORT-FILTER"
IMPORT_MAP = "IMPORT-DEFAULT"
SITE_PREFIX_LIST = "SITE-PREFIXES"


def prefix_for_index(index: int) -> Prefix:
    """The /24 prefix allocated to the ``index``-th originating device."""
    if index < 0 or index >= 256 * 256:
        raise ValueError("prefix index out of range")
    return Prefix.parse(f"10.{index // 256}.{index % 256}.0/24")


def site_prefix_list() -> PrefixList:
    """A prefix list matching every allocated destination prefix."""
    return PrefixList(
        name=SITE_PREFIX_LIST,
        entries=(
            PrefixListEntry(prefix=SITE_AGGREGATE, action="permit", ge=8, le=32),
        ),
    )


def standard_export_map() -> RouteMap:
    """Export filter permitting only site prefixes (implicit deny otherwise)."""
    return RouteMap(
        name=EXPORT_MAP,
        clauses=(
            RouteMapClause(
                sequence=10, action="permit", match_prefix_lists=(SITE_PREFIX_LIST,)
            ),
        ),
    )


def permit_all_map(name: str = IMPORT_MAP) -> RouteMap:
    """An import policy that accepts everything unchanged."""
    return RouteMap(name=name, clauses=(RouteMapClause(sequence=10, action="permit"),))


def make_bgp_device(
    name: str,
    neighbours: Iterable[str],
    originated: Optional[Prefix] = None,
    export_map: Optional[RouteMap] = None,
    import_maps: Optional[Dict[str, str]] = None,
    extra_route_maps: Optional[Dict[str, RouteMap]] = None,
) -> DeviceConfig:
    """Build a device running eBGP with every physical neighbour.

    Parameters
    ----------
    neighbours:
        The adjacent devices to establish sessions with.
    originated:
        The prefix this device announces into BGP, if any.
    export_map:
        The export policy applied on every session (defaults to the
        standard site filter).
    import_maps:
        Optional per-neighbour import route-map names (the route maps
        themselves must be provided via ``extra_route_maps``); neighbours
        not listed use the permissive default.
    extra_route_maps:
        Additional route maps to install on the device.
    """
    export = export_map or standard_export_map()
    device = DeviceConfig(name=name, asn=name)
    device.prefix_lists[SITE_PREFIX_LIST] = site_prefix_list()
    device.route_maps[export.name] = export
    device.route_maps[IMPORT_MAP] = permit_all_map()
    for map_name, route_map in (extra_route_maps or {}).items():
        device.route_maps[map_name] = route_map
    if originated is not None:
        device.originated_prefixes.append(originated)
    for peer in sorted(neighbours, key=str):
        import_policy = (import_maps or {}).get(peer, IMPORT_MAP)
        device.bgp_neighbors[peer] = BgpNeighborConfig(
            peer=peer, import_policy=import_policy, export_policy=export.name
        )
    return device


def uniform_bgp_network(
    graph: Graph,
    name: str,
    originators: Optional[Sequence[str]] = None,
) -> Network:
    """A network where every device runs plain shortest-path eBGP.

    Every device (or only ``originators`` when given) announces its own /24
    and exports through the standard site filter; imports are permissive.
    This is the configuration style of the paper's synthetic networks.
    """
    nodes = graph.nodes
    if originators is None:
        originators = list(nodes)
    origin_index = {node: i for i, node in enumerate(originators)}
    devices: Dict[str, DeviceConfig] = {}
    for node in nodes:
        originated = (
            prefix_for_index(origin_index[node]) if node in origin_index else None
        )
        devices[node] = make_bgp_device(
            name=str(node),
            neighbours=graph.successors(node),
            originated=originated,
        )
    return Network(graph=graph, devices=devices, name=name)
