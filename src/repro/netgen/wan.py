"""Synthetic substitute for the paper's operational WAN (§8).

The paper's second real network is a 1086-device wide-area network running
eBGP, iBGP, OSPF and static routes, with neighbour-specific prefix filters
and ACLs accounting for most of the 137 distinct device roles.  As with the
datacenter, the real configurations are proprietary; this generator builds
a hierarchical WAN with the same protocol mix:

* a small full-mesh **core** running OSPF and iBGP among itself;
* per-region **hub** routers, each homed to two core routers over eBGP and
  applying a region-specific export filter towards the core;
* per-region **access** routers running eBGP to their hub; a fraction of
  them also carry a static default route towards the hub;
* hubs filter what they accept from access routers with a region prefix
  list.

With the default parameters the network has 1086 devices, matching the
paper's device count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.config.device import (
    BgpNeighborConfig,
    DeviceConfig,
    OspfLinkConfig,
    StaticRouteConfig,
)
from repro.config.network import Network
from repro.config.prefix import Prefix
from repro.config.routemap import (
    PrefixList,
    PrefixListEntry,
    RouteMap,
    RouteMapClause,
)
from repro.netgen.base import IMPORT_MAP, make_bgp_device
from repro.topology.graph import Graph

REGION_EXPORT_MAP = "EXPORT-REGION"


@dataclass(frozen=True)
class WanParams:
    """Size knobs for the synthetic WAN."""

    core_routers: int = 6
    regions: int = 30
    access_per_region: int = 35
    static_access_per_region: int = 5

    @property
    def total_devices(self) -> int:
        return self.core_routers + self.regions * (1 + self.access_per_region)


#: Default parameters give the paper's 1086 devices (6 + 30 * 36).
PAPER_SCALE = WanParams()

#: A small instance for tests and examples.
SMALL_SCALE = WanParams(core_routers=2, regions=3, access_per_region=4,
                        static_access_per_region=1)


def _region_aggregate(region: int) -> Prefix:
    return Prefix.parse(f"10.{100 + region // 100}.{region % 100}.0/24")


def _access_prefix(region: int, access: int) -> Prefix:
    # Give every access router a /32 loopback-style destination inside the
    # region aggregate so region filters stay meaningful.
    base = _region_aggregate(region)
    return Prefix(base.address | access, 32)


def _region_prefix_list(region: int) -> PrefixList:
    return PrefixList(
        name=f"REGION-{region}",
        entries=(
            PrefixListEntry(prefix=_region_aggregate(region), action="permit", ge=24, le=32),
        ),
    )


def _region_export_map(region: int) -> RouteMap:
    return RouteMap(
        name=f"{REGION_EXPORT_MAP}-{region}",
        clauses=(
            RouteMapClause(
                sequence=10, action="permit", match_prefix_lists=(f"REGION-{region}",)
            ),
        ),
    )


def wan_network(params: WanParams = PAPER_SCALE) -> Network:
    """Build the synthetic WAN."""
    graph = Graph()
    cores = [f"wcore{i}" for i in range(params.core_routers)]
    for core in cores:
        graph.add_node(core)
    for i, a in enumerate(cores):
        for b in cores[i + 1:]:
            graph.add_undirected_edge(a, b)

    hubs: List[str] = []
    access_names: Dict[int, List[str]] = {}
    for region in range(params.regions):
        hub = f"hub{region}"
        hubs.append(hub)
        graph.add_node(hub)
        # Dual-home each hub to two core routers.
        graph.add_undirected_edge(hub, cores[region % len(cores)])
        graph.add_undirected_edge(hub, cores[(region + 1) % len(cores)])
        accesses = [f"r{region}a{i}" for i in range(params.access_per_region)]
        access_names[region] = accesses
        for access in accesses:
            graph.add_undirected_edge(access, hub)

    devices: Dict[str, DeviceConfig] = {}

    # --- core: OSPF + iBGP full mesh, eBGP towards hubs -----------------
    for core in cores:
        device = make_bgp_device(name=core, neighbours=graph.successors(core))
        device.asn = "65000"
        for peer in graph.successors(core):
            if peer in cores:
                device.ospf_links[peer] = OspfLinkConfig(peer=peer, cost=10, area=0)
                device.bgp_neighbors[peer] = BgpNeighborConfig(
                    peer=peer,
                    import_policy=IMPORT_MAP,
                    export_policy=device.bgp_neighbors[peer].export_policy,
                    ibgp=True,
                )
        devices[core] = device

    # --- hubs ------------------------------------------------------------
    for region, hub in enumerate(hubs):
        region_list = _region_prefix_list(region)
        export_map = _region_export_map(region)
        import_maps = {
            peer: IMPORT_MAP for peer in graph.successors(hub)
        }
        device = make_bgp_device(
            name=hub,
            neighbours=graph.successors(hub),
            originated=_region_aggregate(region),
            import_maps=import_maps,
            extra_route_maps={export_map.name: export_map},
        )
        device.prefix_lists[region_list.name] = region_list
        for core in cores:
            if core in device.bgp_neighbors:
                device.bgp_neighbors[core].export_policy = export_map.name
        devices[hub] = device

    # --- access routers ----------------------------------------------------
    for region, accesses in access_names.items():
        hub = hubs[region]
        region_list = _region_prefix_list(region)
        export_map = _region_export_map(region)
        for index, access in enumerate(accesses):
            device = make_bgp_device(
                name=access,
                neighbours=graph.successors(access),
                originated=_access_prefix(region, index),
                extra_route_maps={export_map.name: export_map},
            )
            device.prefix_lists[region_list.name] = region_list
            device.bgp_neighbors[hub].export_policy = export_map.name
            if index < params.static_access_per_region:
                device.static_routes.append(
                    StaticRouteConfig(prefix=Prefix.parse("0.0.0.0/0"), next_hop=hub)
                )
            devices[access] = device

    return Network(graph=graph, devices=devices, name="wan")
