"""Topology builders for the synthetic networks used in the evaluation.

The paper evaluates Bonsai on three synthetic topology families (§8):

* **Fattree** -- the standard k-ary fat-tree of Al-Fares et al. [1]; the
  paper's 180-, 500- and 1125-node instances correspond to k = 12, 20, 30.
* **Ring** -- a simple cycle of n routers.
* **Full mesh** -- every pair of routers connected.

Additional builders (chain, star, grid) are used by the examples and tests.

All builders return a :class:`~repro.topology.graph.Graph` with undirected
connectivity (both edge directions present) plus a metadata dictionary that
records the role of each node (``core`` / ``aggregation`` / ``edge`` for
fat-trees and so on).  Roles are used by the configuration generators in
:mod:`repro.netgen` to assign per-role policy.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.topology.graph import Graph, Node


def chain_topology(length: int, prefix: str = "r") -> Tuple[Graph, Dict[Node, str]]:
    """A line of ``length`` routers ``r0 - r1 - ... - r{length-1}``."""
    if length < 1:
        raise ValueError("chain length must be >= 1")
    g = Graph()
    roles: Dict[Node, str] = {}
    names = [f"{prefix}{i}" for i in range(length)]
    for name in names:
        g.add_node(name)
        roles[name] = "chain"
    for left, right in zip(names, names[1:]):
        g.add_undirected_edge(left, right)
    return g, roles


def ring_topology(size: int, prefix: str = "r") -> Tuple[Graph, Dict[Node, str]]:
    """A cycle of ``size`` routers.

    Used for the Ring rows of Table 1(a).  Compression of a ring grows with
    its diameter because path length must be preserved.
    """
    if size < 3:
        raise ValueError("ring size must be >= 3")
    g = Graph()
    roles: Dict[Node, str] = {}
    names = [f"{prefix}{i}" for i in range(size)]
    for name in names:
        g.add_node(name)
        roles[name] = "ring"
    for i, name in enumerate(names):
        g.add_undirected_edge(name, names[(i + 1) % size])
    return g, roles


def full_mesh_topology(size: int, prefix: str = "r") -> Tuple[Graph, Dict[Node, str]]:
    """A complete graph on ``size`` routers (Full Mesh rows of Table 1(a))."""
    if size < 2:
        raise ValueError("mesh size must be >= 2")
    g = Graph()
    roles: Dict[Node, str] = {}
    names = [f"{prefix}{i}" for i in range(size)]
    for name in names:
        g.add_node(name)
        roles[name] = "mesh"
    for i, u in enumerate(names):
        for v in names[i + 1:]:
            g.add_undirected_edge(u, v)
    return g, roles


def star_topology(leaves: int, prefix: str = "r") -> Tuple[Graph, Dict[Node, str]]:
    """One hub router connected to ``leaves`` leaf routers."""
    if leaves < 1:
        raise ValueError("star must have at least one leaf")
    g = Graph()
    roles: Dict[Node, str] = {}
    hub = f"{prefix}hub"
    g.add_node(hub)
    roles[hub] = "hub"
    for i in range(leaves):
        leaf = f"{prefix}leaf{i}"
        g.add_undirected_edge(hub, leaf)
        roles[leaf] = "leaf"
    return g, roles


def grid_topology(rows: int, cols: int, prefix: str = "r") -> Tuple[Graph, Dict[Node, str]]:
    """A rows x cols grid; useful as a moderately symmetric WAN-like mesh."""
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be >= 1")
    g = Graph()
    roles: Dict[Node, str] = {}

    def name(r: int, c: int) -> str:
        return f"{prefix}{r}_{c}"

    for r in range(rows):
        for c in range(cols):
            g.add_node(name(r, c))
            roles[name(r, c)] = "grid"
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                g.add_undirected_edge(name(r, c), name(r, c + 1))
            if r + 1 < rows:
                g.add_undirected_edge(name(r, c), name(r + 1, c))
    return g, roles


def fattree_topology(k: int) -> Tuple[Graph, Dict[Node, str]]:
    """The k-ary fat-tree of Al-Fares et al.

    The topology has ``(k/2)^2`` core switches, ``k`` pods each containing
    ``k/2`` aggregation and ``k/2`` edge switches, for ``5 k^2 / 4`` nodes
    total.  ``k`` must be even.

    Node naming:

    * ``core{i}``            -- core switches, ``i in [0, (k/2)^2)``
    * ``agg{p}_{i}``         -- aggregation switch ``i`` of pod ``p``
    * ``edge{p}_{i}``        -- edge (top-of-rack) switch ``i`` of pod ``p``

    Roles returned are ``"core"``, ``"aggregation"`` and ``"edge"``.
    """
    if k < 2 or k % 2 != 0:
        raise ValueError("fat-tree parameter k must be an even integer >= 2")
    half = k // 2
    g = Graph()
    roles: Dict[Node, str] = {}

    cores: List[str] = []
    for i in range(half * half):
        name = f"core{i}"
        g.add_node(name)
        roles[name] = "core"
        cores.append(name)

    for pod in range(k):
        aggs = []
        edges = []
        for i in range(half):
            agg = f"agg{pod}_{i}"
            edge = f"edge{pod}_{i}"
            g.add_node(agg)
            g.add_node(edge)
            roles[agg] = "aggregation"
            roles[edge] = "edge"
            aggs.append(agg)
            edges.append(edge)
        # Full bipartite connection between aggregation and edge layers of a pod.
        for agg in aggs:
            for edge in edges:
                g.add_undirected_edge(agg, edge)
        # Each aggregation switch i connects to core switches i*half .. i*half+half-1.
        for i, agg in enumerate(aggs):
            for j in range(half):
                g.add_undirected_edge(agg, cores[i * half + j])

    return g, roles


def fattree_size_for_nodes(target_nodes: int) -> int:
    """Smallest even ``k`` whose fat-tree has at least ``target_nodes`` nodes."""
    k = 2
    while 5 * k * k // 4 < target_nodes:
        k += 2
    return k
