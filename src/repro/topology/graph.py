"""Directed graph model used by the Stable Routing Problem.

The paper models the network as a graph ``G = (V, E, d)`` with a set of
vertices ``V``, directed edges ``E`` and a destination vertex ``d``.  This
module provides a small, dependency-free graph class tailored to that use:
node names are arbitrary hashable values (router names in practice), edges
are ordered pairs, and the graph supports the queries the abstraction
algorithm needs (successors, predecessors, edge membership, subgraph
extraction).

The class is deliberately simple: Bonsai's algorithm never needs edge
weights on the graph itself because all routing semantics live in the SRP
transfer function.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Set, Tuple

Node = Hashable
Edge = Tuple[Node, Node]


class GraphError(Exception):
    """Raised on malformed graph operations (duplicate nodes, bad edges)."""


class Graph:
    """A directed graph with named nodes.

    Parameters
    ----------
    nodes:
        Optional iterable of node names to add immediately.
    edges:
        Optional iterable of ``(u, v)`` pairs to add immediately.  Endpoints
        are added implicitly if missing.
    """

    def __init__(self, nodes: Iterable[Node] = (), edges: Iterable[Edge] = ()):
        self._succ: Dict[Node, Set[Node]] = {}
        self._pred: Dict[Node, Set[Node]] = {}
        self._version = 0
        for node in nodes:
            self.add_node(node)
        for u, v in edges:
            self.add_edge(u, v)

    @property
    def version(self) -> int:
        """A counter bumped by every structural mutation.

        Fingerprint-guarded caches (e.g. the memoised whole-network views
        on :class:`~repro.config.network.Network`) include this value so
        that removing an edge or node transparently invalidates them.
        """
        return self._version

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        """Add ``node`` to the graph; adding an existing node is a no-op."""
        if node not in self._succ:
            self._succ[node] = set()
            self._pred[node] = set()
            self._version += 1

    def add_edge(self, u: Node, v: Node) -> None:
        """Add the directed edge ``(u, v)``, creating endpoints as needed."""
        self.add_node(u)
        self.add_node(v)
        self._succ[u].add(v)
        self._pred[v].add(u)
        self._version += 1

    def add_undirected_edge(self, u: Node, v: Node) -> None:
        """Add both ``(u, v)`` and ``(v, u)``.

        Physical links are bidirectional, and routing announcements can flow
        in either direction, so topology builders typically use this helper.
        """
        self.add_edge(u, v)
        self.add_edge(v, u)

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove the directed edge ``(u, v)``.

        Raises
        ------
        GraphError
            If the edge is not present.
        """
        if not self.has_edge(u, v):
            raise GraphError(f"edge ({u!r}, {v!r}) not in graph")
        self._succ[u].discard(v)
        self._pred[v].discard(u)
        self._version += 1

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and every edge incident to it."""
        if node not in self._succ:
            raise GraphError(f"node {node!r} not in graph")
        for v in list(self._succ[node]):
            self.remove_edge(node, v)
        for u in list(self._pred[node]):
            self.remove_edge(u, node)
        del self._succ[node]
        del self._pred[node]
        self._version += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> List[Node]:
        """All nodes, in insertion order."""
        return list(self._succ.keys())

    @property
    def edges(self) -> List[Edge]:
        """All directed edges ``(u, v)``."""
        return [(u, v) for u, succ in self._succ.items() for v in succ]

    def has_node(self, node: Node) -> bool:
        return node in self._succ

    def has_edge(self, u: Node, v: Node) -> bool:
        return u in self._succ and v in self._succ[u]

    def successors(self, node: Node) -> Set[Node]:
        """Nodes ``v`` such that ``(node, v)`` is an edge."""
        return set(self._succ[node])

    def predecessors(self, node: Node) -> Set[Node]:
        """Nodes ``u`` such that ``(u, node)`` is an edge."""
        return set(self._pred[node])

    def out_edges(self, node: Node) -> List[Edge]:
        return [(node, v) for v in self._succ[node]]

    def in_edges(self, node: Node) -> List[Edge]:
        return [(u, node) for u in self._pred[node]]

    def degree(self, node: Node) -> int:
        """Total (in + out) degree of ``node``."""
        return len(self._succ[node]) + len(self._pred[node])

    def num_nodes(self) -> int:
        return len(self._succ)

    def num_edges(self) -> int:
        return sum(len(s) for s in self._succ.values())

    def num_undirected_edges(self) -> int:
        """Number of unordered node pairs connected by at least one edge.

        The paper reports undirected edge counts for topologies (e.g. a
        180-node fattree has 2124 edges); this helper makes those numbers
        directly comparable.
        """
        seen = set()
        for u, v in self.edges:
            seen.add(frozenset((u, v)))
        return len(seen)

    def has_self_loop(self) -> bool:
        """True if any edge ``(v, v)`` exists (forbidden in well-formed SRPs)."""
        return any(u == v for u, v in self.edges)

    def __contains__(self, node: Node) -> bool:
        return self.has_node(node)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._succ)

    def __len__(self) -> int:
        return self.num_nodes()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(nodes={self.num_nodes()}, edges={self.num_edges()})"

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> "Graph":
        """Return an independent copy of this graph."""
        g = Graph()
        for node in self._succ:
            g.add_node(node)
        for u, v in self.edges:
            g.add_edge(u, v)
        return g

    def subgraph(self, nodes: Iterable[Node]) -> "Graph":
        """The induced subgraph on ``nodes`` (edges with both endpoints kept)."""
        keep = set(nodes)
        g = Graph()
        for node in keep:
            if node not in self._succ:
                raise GraphError(f"node {node!r} not in graph")
            g.add_node(node)
        for u, v in self.edges:
            if u in keep and v in keep:
                g.add_edge(u, v)
        return g

    def reverse(self) -> "Graph":
        """A graph with every edge direction flipped."""
        g = Graph()
        for node in self._succ:
            g.add_node(node)
        for u, v in self.edges:
            g.add_edge(v, u)
        return g

    # ------------------------------------------------------------------
    # Traversal helpers
    # ------------------------------------------------------------------
    def bfs_distances(self, source: Node) -> Dict[Node, int]:
        """Hop distances from ``source`` along directed edges (BFS)."""
        if source not in self._succ:
            raise GraphError(f"node {source!r} not in graph")
        dist = {source: 0}
        frontier = [source]
        while frontier:
            nxt: List[Node] = []
            for u in frontier:
                for v in self._succ[u]:
                    if v not in dist:
                        dist[v] = dist[u] + 1
                        nxt.append(v)
            frontier = nxt
        return dist

    def reachable_from(self, source: Node) -> Set[Node]:
        """All nodes reachable from ``source`` along directed edges."""
        return set(self.bfs_distances(source))

    def is_connected_to(self, source: Node, target: Node) -> bool:
        return target in self.bfs_distances(source)

    def find_cycle(self) -> List[Node]:
        """Return one directed cycle as a node list, or ``[]`` if acyclic."""
        color: Dict[Node, int] = {}
        stack: List[Node] = []

        def visit(node: Node) -> List[Node]:
            color[node] = 1
            stack.append(node)
            for v in self._succ[node]:
                if color.get(v, 0) == 1:
                    return stack[stack.index(v):] + [v]
                if color.get(v, 0) == 0:
                    cycle = visit(v)
                    if cycle:
                        return cycle
            stack.pop()
            color[node] = 2
            return []

        for node in self._succ:
            if color.get(node, 0) == 0:
                cycle = visit(node)
                if cycle:
                    return cycle
        return []

    def is_dag(self) -> bool:
        """True if the graph has no directed cycle."""
        return not self.find_cycle()
