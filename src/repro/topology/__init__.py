"""Network topology substrate: directed graphs and topology builders."""

from repro.topology.graph import Edge, Graph, GraphError, Node
from repro.topology.builders import (
    chain_topology,
    fattree_topology,
    full_mesh_topology,
    grid_topology,
    ring_topology,
    star_topology,
)

__all__ = [
    "Edge",
    "Graph",
    "GraphError",
    "Node",
    "chain_topology",
    "fattree_topology",
    "full_mesh_topology",
    "grid_topology",
    "ring_topology",
    "star_topology",
]
