"""Incremental re-solve of an SRP under an arbitrary configuration delta.

This generalises :mod:`repro.failures.incremental` from "edges
disappeared" to "the compiled transfer of some edges changed": a config
change (route-map edit, local-pref override, ACL, origination, link or
device churn) perturbs routing only through the edges whose *compiled,
destination-specialised* behaviour actually differs.  Those edges are
detected by per-edge policy-key comparison -- the specialized syntactic
keys produced through :func:`repro.config.transfer.compile_base_edges` /
:func:`~repro.config.transfer.specialize_compiled_edges` are canonical
summaries of an edge's behaviour for one destination, so equal keys mean
the transfer is unchanged on that edge even if the underlying route-map
objects were rewritten.

The re-solve then reuses the failure machinery wholesale:

* **taint** -- the reverse closure, under the baseline forwarding
  relation, of nodes forwarding over a *removed or changed* edge
  (:func:`repro.failures.incremental.tainted_nodes` with changed edges
  treated as removed: a changed edge's old offer may no longer exist, so
  labels derived through it cannot be trusted);
* **dirty** -- taint plus the surviving endpoints of every
  removed/changed/added edge (their offer sets shrank, changed or grew),
  nodes offering into a tainted node, neighbours of removed devices, and
  newly added devices (which start with no label);
* the baseline's transfer memo seeds the new solve *minus* the entries
  of changed and removed edges (their cached values describe the old
  policy) -- unchanged edges reference configuration objects the
  copy-on-write :meth:`~repro.delta.changeset.ChangeSet.apply` shares
  with the baseline, so their memo entries remain exact.

As in the failure subsystem, :func:`repro.srp.solver.solve_seeded`
re-verifies the stability of every node before returning and the scratch
solver remains the per-change oracle; a bad seed can never silently
produce a wrong answer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Set

from repro.config.network import Network
from repro.config.prefix import Prefix
from repro.config.transfer import syntactic_policy_keys
from repro.failures.incremental import BaselineIndex, tainted_nodes
from repro.srp.instance import SRP
from repro.srp.solution import Solution
from repro.srp.solver import ConvergenceError, TransferCache, solve, solve_seeded
from repro.topology.graph import Edge, Node


@dataclass(frozen=True)
class EdgeDiff:
    """How one destination's compiled edges differ between two networks."""

    #: Directed edges present before but not after.
    removed: FrozenSet[Edge]
    #: Directed edges present after but not before.
    added: FrozenSet[Edge]
    #: Directed edges present in both whose specialized policy key differs.
    changed: FrozenSet[Edge]
    #: Devices present before but not after.
    removed_nodes: FrozenSet[str]
    #: Devices present after but not before.
    added_nodes: FrozenSet[str]

    def is_empty(self) -> bool:
        return not (
            self.removed or self.added or self.changed
            or self.removed_nodes or self.added_nodes
        )

    @property
    def perturbed(self) -> FrozenSet[Edge]:
        """The edges whose baseline-derived labels cannot be trusted."""
        return self.removed | self.changed


def diff_network_edges(
    old_network: Network,
    new_network: Network,
    destination: Prefix,
    old_keys: Optional[Dict[Edge, object]] = None,
    new_keys: Optional[Dict[Edge, object]] = None,
) -> EdgeDiff:
    """Diff two networks' compiled edges for one destination.

    Comparison runs on the specialized syntactic policy keys (each
    network's own unused-community set folded in), so a rewritten route
    map that specialises to the same behaviour for this destination --
    e.g. a clause guarded by a prefix list not matching it -- is correctly
    reported as *unchanged*.  Callers that already hold either key map
    (the sweep threads each step's keys into the next step's diff) pass
    them in to skip the recomputation.
    """
    if old_keys is None:
        old_keys = syntactic_policy_keys(old_network, destination)
    if new_keys is None:
        new_keys = syntactic_policy_keys(new_network, destination)
    removed = frozenset(edge for edge in old_keys if edge not in new_keys)
    added = frozenset(edge for edge in new_keys if edge not in old_keys)
    changed = frozenset(
        edge
        for edge, key in new_keys.items()
        if edge in old_keys and old_keys[edge] != key
    )
    old_nodes = {str(node) for node in old_network.graph.nodes}
    new_nodes = {str(node) for node in new_network.graph.nodes}
    return EdgeDiff(
        removed=removed,
        added=added,
        changed=changed,
        removed_nodes=frozenset(old_nodes - new_nodes),
        added_nodes=frozenset(new_nodes - old_nodes),
    )


@dataclass
class DeltaSolve:
    """The outcome of one change-incremental re-solve."""

    solution: Solution
    #: False when the seeded solve failed (``ConvergenceError``) and the
    #: result came from the scratch fallback instead.
    incremental_used: bool
    #: Nodes whose baseline labels were reset before solving.
    tainted: FrozenSet[Node]
    #: Size of the initial worklist handed to the seeded solver.
    dirty_count: int
    seconds: float


def seed_transfer_cache(
    baseline: Solution, diff: EdgeDiff, transfer_cache: Optional[TransferCache] = None
) -> TransferCache:
    """A transfer memo seeded from the baseline minus stale edges.

    Entries for changed and removed edges describe the *old* compiled
    policy and are evicted; everything else is exact in the changed
    network because unchanged edges share their configuration objects
    with the baseline (copy-on-write application).
    """
    if transfer_cache is None:
        transfer_cache = TransferCache().seeded_from(baseline.transfer_cache)
    stale = diff.perturbed
    if stale:
        for key in [k for k in transfer_cache if k[0] in stale]:
            del transfer_cache[key]
    return transfer_cache


def delta_resolve(
    changed_srp: SRP,
    baseline: Solution,
    diff: EdgeDiff,
    transfer_cache: Optional[TransferCache] = None,
    index: Optional[BaselineIndex] = None,
    max_rounds: int = 1000,
) -> DeltaSolve:
    """Solve ``changed_srp`` seeded from the baseline solution.

    ``changed_srp`` must share its destination structure with the
    baseline SRP (same origin set, hence the same virtual-destination
    shape); the sweep driver falls back to a scratch solve when a change
    alters the origin set.  ``diff`` is the compiled-edge diff between the
    baseline and changed networks for this destination
    (:func:`diff_network_edges`).
    """
    start = time.perf_counter()
    transfer_cache = seed_transfer_cache(baseline, diff, transfer_cache)

    tainted = tainted_nodes(
        baseline, diff.perturbed, diff.removed_nodes, index=index
    )
    graph = changed_srp.graph
    seed_labeling = {
        node: (
            None
            if node in tainted or str(node) in diff.added_nodes
            else baseline.labeling.get(node)
        )
        for node in graph.nodes
    }

    dirty: Set[Node] = set(tainted)
    # A removed or changed out-edge perturbs the node's offer set even off
    # the forwarding paths (the lost/altered offer may have been the
    # tie-broken runner-up); an added edge grows it.  Re-examine every
    # surviving endpoint.
    for u, v in diff.removed | diff.changed | diff.added:
        if graph.has_node(u):
            dirty.add(u)
        if graph.has_node(v):
            dirty.add(v)
    # Offers into a tainted (reset) node were computed from its old label.
    for node in tainted:
        if graph.has_node(node):
            for upstream, _ in graph.in_edges(node):
                dirty.add(upstream)
    # Neighbours of removed devices lost an offer each; added devices have
    # no label yet and must compute one.
    for node in diff.removed_nodes:
        if baseline.srp.graph.has_node(node):
            for upstream in baseline.srp.graph.predecessors(node):
                if graph.has_node(upstream):
                    dirty.add(upstream)
    for node in diff.added_nodes:
        if graph.has_node(node):
            dirty.add(node)
            for upstream, _ in graph.in_edges(node):
                dirty.add(upstream)

    try:
        solution = solve_seeded(
            changed_srp,
            seed_labeling,
            sorted(dirty, key=str),
            transfer_cache=transfer_cache,
            max_rounds=max_rounds,
        )
        used = True
    except ConvergenceError:
        # Defensive: a seed the worklist cannot repair (or a genuinely
        # oscillating changed network).  Fall back to the scratch solver
        # so the caller still gets an answer -- or the scratch solver's
        # own ConvergenceError, which is then a property of the network.
        from repro.obs import events as _events
        from repro.obs import metrics as _metrics

        _metrics.counter("incremental.scratch_fallbacks").inc()
        _events.emit("fallback.scratch", solver="delta", dirty=len(dirty))
        solution = solve(
            changed_srp, max_rounds=max_rounds, transfer_cache=transfer_cache
        )
        used = False
    return DeltaSolve(
        solution=solution,
        incremental_used=used,
        tainted=frozenset(tainted),
        dirty_count=len(dirty),
        seconds=time.perf_counter() - start,
    )
