"""Configuration change-impact analysis: what-if sweeps over compression.

The fifth pillar of the system next to compression, verification,
hot-paths and failure analysis: model configuration *changes* as typed
first-class values, re-verify the changed control plane *incrementally*
from the unchanged baseline, and decide -- per destination class --
whether the baseline Bonsai abstraction survives the change (reuse) or
must be re-compressed (dirty classes only).
"""

from repro.delta.changeset import (
    CHANGE_KINDS,
    Change,
    ChangeError,
    ChangeSet,
    DeviceAdd,
    DeviceRemove,
    InterfaceAclSet,
    LinkAdd,
    LinkCostSet,
    LinkRemove,
    LocalPrefOverride,
    PrefixListSet,
    PrefixOriginate,
    PrefixWithdraw,
    RouteMapClauseDelete,
    RouteMapClauseEdit,
    RouteMapClauseInsert,
    change_from_dict,
    load_change_script,
)
from repro.delta.incremental import (
    DeltaSolve,
    EdgeDiff,
    delta_resolve,
    diff_network_edges,
    seed_transfer_cache,
)
from repro.delta.revalidate import (
    RevalidationOutcome,
    class_signature,
    revalidate_class,
)
from repro.delta.sweep import (
    ChangeOutcome,
    ClassDeltaRecord,
    DeltaReport,
    DeltaSweep,
    delta_class_task,
    sweep_changes,
)

__all__ = [
    "CHANGE_KINDS",
    "Change",
    "ChangeError",
    "ChangeSet",
    "DeviceAdd",
    "DeviceRemove",
    "InterfaceAclSet",
    "LinkAdd",
    "LinkCostSet",
    "LinkRemove",
    "LocalPrefOverride",
    "PrefixListSet",
    "PrefixOriginate",
    "PrefixWithdraw",
    "RouteMapClauseDelete",
    "RouteMapClauseEdit",
    "RouteMapClauseInsert",
    "change_from_dict",
    "load_change_script",
    "DeltaSolve",
    "EdgeDiff",
    "delta_resolve",
    "diff_network_edges",
    "seed_transfer_cache",
    "RevalidationOutcome",
    "class_signature",
    "revalidate_class",
    "ChangeOutcome",
    "ClassDeltaRecord",
    "DeltaReport",
    "DeltaSweep",
    "delta_class_task",
    "sweep_changes",
]
