"""Typed configuration changes: the vocabulary of change-impact analysis.

Bonsai's routine workload at scale is *change validation*: an operator
edits a route map, withdraws a prefix, or decommissions a link and wants
to know what breaks before the change ships.  This module models such
edits as first-class values:

* a :class:`Change` is one typed, JSON-serialisable configuration edit
  (link add/remove/cost, prefix origination add/withdraw, route-map
  clause insert/edit/delete, local-preference override, interface-ACL
  change, device add/remove);
* a :class:`ChangeSet` is an ordered bundle of changes applied
  atomically, with validation against a concrete
  :class:`~repro.config.network.Network` and a **non-mutating**
  :meth:`ChangeSet.apply` in the style of
  :meth:`repro.failures.scenario.FailureScenario.apply`: the derived
  network gets a fresh graph and copy-on-write device configurations --
  only devices a change touches are copied, every other
  :class:`~repro.config.device.DeviceConfig` object is shared with the
  original, so the baseline's fingerprint-guarded memos stay valid and
  "unchanged device" is literally pointer equality.

Changes travel through the pipeline's pickled task options in their wire
form (:meth:`ChangeSet.to_dict`), so change sweeps fan out over the same
serial/thread/process executors as everything else.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Type

from repro.config.acl import Acl, AclLine
from repro.config.device import BgpNeighborConfig, DeviceConfig, OspfLinkConfig
from repro.config.network import Network
from repro.config.prefix import Prefix
from repro.config.routemap import (
    PrefixList,
    PrefixListEntry,
    RouteMap,
    RouteMapClause,
)
from repro.topology.graph import Graph


class ChangeError(ValueError):
    """Raised for changes that do not fit the network they are applied to."""


# ----------------------------------------------------------------------
# Copy-on-write editing
# ----------------------------------------------------------------------
def _copy_device(device: DeviceConfig) -> DeviceConfig:
    """A private editable copy of one device configuration.

    Containers are copied; the contained route maps, prefix lists, ACLs
    and sessions are immutable (or replaced wholesale on edit), so they
    are shared.
    """
    return DeviceConfig(
        name=device.name,
        asn=device.asn,
        route_maps=dict(device.route_maps),
        community_lists=dict(device.community_lists),
        prefix_lists=dict(device.prefix_lists),
        acls=dict(device.acls),
        bgp_neighbors=dict(device.bgp_neighbors),
        ospf_links=dict(device.ospf_links),
        static_routes=list(device.static_routes),
        originated_prefixes=list(device.originated_prefixes),
        interface_acls=dict(device.interface_acls),
    )


class NetworkEditor:
    """Mutable scratch state a :class:`ChangeSet` application runs against.

    Devices are copy-on-write: :meth:`edit` hands out a private copy the
    first time a device is touched and the same copy afterwards, while
    untouched devices remain the original's objects.
    """

    def __init__(self, network: Network):
        self.graph: Graph = network.graph.copy()
        self.devices: Dict[str, DeviceConfig] = dict(network.devices)
        self.touched: Set[str] = set()

    def has_device(self, name: str) -> bool:
        return name in self.devices

    def device(self, name: str) -> DeviceConfig:
        return self.devices[name]

    def edit(self, name: str) -> DeviceConfig:
        """The editable (copy-on-write) configuration of ``name``."""
        if name not in self.touched:
            self.devices[name] = _copy_device(self.devices[name])
            self.touched.add(name)
        return self.devices[name]

    def add_device(self, name: str, config: DeviceConfig) -> None:
        self.devices[name] = config
        self.touched.add(name)
        self.graph.add_node(name)

    def remove_device(self, name: str) -> None:
        self.graph.remove_node(name)
        self.devices.pop(name, None)
        self.touched.discard(name)

    def build(self, name: str) -> Network:
        return Network(graph=self.graph, devices=dict(self.devices), name=name)


def _clone_session(
    device: DeviceConfig, peer: str
) -> BgpNeighborConfig:
    """A session towards ``peer`` styled after the device's existing ones.

    Link/device additions need BGP sessions to carry routes; cloning the
    policies of the device's first (name-sorted) existing session keeps
    the new session consistent with the device's role instead of
    inventing a policy out of thin air.  A device with no sessions gets a
    policy-free (permit-everything) session.
    """
    template: Optional[BgpNeighborConfig] = None
    for existing_peer in sorted(device.bgp_neighbors):
        template = device.bgp_neighbors[existing_peer]
        break
    return BgpNeighborConfig(
        peer=peer,
        import_policy=template.import_policy if template else None,
        export_policy=template.export_policy if template else None,
        ibgp=template.ibgp if template else False,
    )


# ----------------------------------------------------------------------
# Wire helpers
# ----------------------------------------------------------------------
def _clause_to_dict(clause: RouteMapClause) -> Dict[str, object]:
    return {
        "sequence": clause.sequence,
        "action": clause.action,
        "match_community_lists": list(clause.match_community_lists),
        "match_prefix_lists": list(clause.match_prefix_lists),
        "set_local_pref": clause.set_local_pref,
        "set_communities": list(clause.set_communities),
        "delete_communities": list(clause.delete_communities),
        "prepend_as": clause.prepend_as,
    }


def _clause_from_dict(data: Dict[str, object]) -> RouteMapClause:
    return RouteMapClause(
        sequence=int(data["sequence"]),
        action=str(data.get("action", "permit")),
        match_community_lists=tuple(data.get("match_community_lists", ())),
        match_prefix_lists=tuple(data.get("match_prefix_lists", ())),
        set_local_pref=data.get("set_local_pref"),
        set_communities=tuple(data.get("set_communities", ())),
        delete_communities=tuple(data.get("delete_communities", ())),
        prepend_as=int(data.get("prepend_as", 0)),
    )


def _entry_to_dict(entry: PrefixListEntry) -> Dict[str, object]:
    return {
        "prefix": str(entry.prefix),
        "action": entry.action,
        "ge": entry.ge,
        "le": entry.le,
    }


def _entry_from_dict(data: Dict[str, object]) -> PrefixListEntry:
    return PrefixListEntry(
        prefix=Prefix.parse(str(data["prefix"])),
        action=str(data.get("action", "permit")),
        ge=data.get("ge"),
        le=data.get("le"),
    )


# ----------------------------------------------------------------------
# Change types
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Change:
    """Base class: one typed configuration edit."""

    kind = "change"

    def describe(self) -> str:  # pragma: no cover - overridden everywhere
        return self.kind

    def problems(self, editor: NetworkEditor) -> List[str]:
        """Reasons this change cannot apply to the editor's current state."""
        raise NotImplementedError

    def apply_to(self, editor: NetworkEditor) -> None:
        raise NotImplementedError

    def payload(self) -> Dict[str, object]:
        raise NotImplementedError

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, **self.payload()}


@dataclass(frozen=True)
class LinkAdd(Change):
    """Commission a new physical link (both directed edges).

    With ``with_bgp`` (the default) a BGP session is established in both
    directions, cloning each endpoint's canonical session policies.
    """

    u: str
    v: str
    with_bgp: bool = True

    kind = "link-add"

    def describe(self) -> str:
        return f"link-add({self.u}|{self.v})"

    def problems(self, editor: NetworkEditor) -> List[str]:
        out = []
        for node in (self.u, self.v):
            if not editor.graph.has_node(node):
                out.append(f"link-add endpoint {node!r} is not in the topology")
        if self.u == self.v:
            out.append("link-add endpoints must differ")
        if editor.graph.has_edge(self.u, self.v) or editor.graph.has_edge(self.v, self.u):
            out.append(f"link {self.u}|{self.v} already exists")
        return out

    def apply_to(self, editor: NetworkEditor) -> None:
        editor.graph.add_undirected_edge(self.u, self.v)
        if self.with_bgp:
            for a, b in ((self.u, self.v), (self.v, self.u)):
                device = editor.edit(a)
                device.bgp_neighbors[b] = _clone_session(device, b)

    def payload(self) -> Dict[str, object]:
        return {"u": self.u, "v": self.v, "with_bgp": self.with_bgp}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "LinkAdd":
        return cls(
            u=str(data["u"]), v=str(data["v"]), with_bgp=bool(data.get("with_bgp", True))
        )


@dataclass(frozen=True)
class LinkRemove(Change):
    """Decommission a link: both directed edges plus the sessions over it.

    Unlike a *failure* (links down, configs untouched), a configuration
    change removes the BGP sessions and OSPF adjacencies riding the link
    so the derived network stays referentially consistent.
    """

    u: str
    v: str

    kind = "link-remove"

    def describe(self) -> str:
        return f"link-remove({self.u}|{self.v})"

    def problems(self, editor: NetworkEditor) -> List[str]:
        if not (
            editor.graph.has_edge(self.u, self.v) or editor.graph.has_edge(self.v, self.u)
        ):
            return [f"link {self.u}|{self.v} is not in the topology"]
        return []

    def apply_to(self, editor: NetworkEditor) -> None:
        if editor.graph.has_edge(self.u, self.v):
            editor.graph.remove_edge(self.u, self.v)
        if editor.graph.has_edge(self.v, self.u):
            editor.graph.remove_edge(self.v, self.u)
        for a, b in ((self.u, self.v), (self.v, self.u)):
            if not editor.has_device(a):
                continue
            device = editor.device(a)
            if b in device.bgp_neighbors or b in device.ospf_links:
                device = editor.edit(a)
                device.bgp_neighbors.pop(b, None)
                device.ospf_links.pop(b, None)

    def payload(self) -> Dict[str, object]:
        return {"u": self.u, "v": self.v}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "LinkRemove":
        return cls(u=str(data["u"]), v=str(data["v"]))


@dataclass(frozen=True)
class LinkCostSet(Change):
    """Set the OSPF cost of a link (symmetrically by default)."""

    u: str
    v: str
    cost: int
    symmetric: bool = True

    kind = "link-cost"

    def describe(self) -> str:
        return f"link-cost({self.u}|{self.v}={self.cost})"

    def problems(self, editor: NetworkEditor) -> List[str]:
        out = []
        if self.cost < 1:
            out.append("link cost must be >= 1")
        ends = ((self.u, self.v), (self.v, self.u)) if self.symmetric else ((self.u, self.v),)
        for a, b in ends:
            if not editor.has_device(a) or b not in editor.device(a).ospf_links:
                out.append(f"{a} has no OSPF adjacency towards {b}")
        return out

    def apply_to(self, editor: NetworkEditor) -> None:
        ends = ((self.u, self.v), (self.v, self.u)) if self.symmetric else ((self.u, self.v),)
        for a, b in ends:
            device = editor.edit(a)
            old = device.ospf_links[b]
            device.ospf_links[b] = OspfLinkConfig(peer=b, cost=self.cost, area=old.area)

    def payload(self) -> Dict[str, object]:
        return {"u": self.u, "v": self.v, "cost": self.cost, "symmetric": self.symmetric}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "LinkCostSet":
        return cls(
            u=str(data["u"]),
            v=str(data["v"]),
            cost=int(data["cost"]),
            symmetric=bool(data.get("symmetric", True)),
        )


@dataclass(frozen=True)
class PrefixOriginate(Change):
    """Start originating ``prefix`` from ``device`` (e.g. anycast it)."""

    device: str
    prefix: Prefix

    kind = "prefix-originate"

    def describe(self) -> str:
        return f"originate({self.device}:{self.prefix})"

    def problems(self, editor: NetworkEditor) -> List[str]:
        if not editor.has_device(self.device):
            return [f"device {self.device!r} does not exist"]
        if self.prefix in editor.device(self.device).originated_prefixes:
            return [f"{self.device} already originates {self.prefix}"]
        return []

    def apply_to(self, editor: NetworkEditor) -> None:
        editor.edit(self.device).originated_prefixes.append(self.prefix)

    def payload(self) -> Dict[str, object]:
        return {"device": self.device, "prefix": str(self.prefix)}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PrefixOriginate":
        return cls(device=str(data["device"]), prefix=Prefix.parse(str(data["prefix"])))


@dataclass(frozen=True)
class PrefixWithdraw(Change):
    """Stop originating ``prefix`` from ``device``."""

    device: str
    prefix: Prefix

    kind = "prefix-withdraw"

    def describe(self) -> str:
        return f"withdraw({self.device}:{self.prefix})"

    def problems(self, editor: NetworkEditor) -> List[str]:
        if not editor.has_device(self.device):
            return [f"device {self.device!r} does not exist"]
        if self.prefix not in editor.device(self.device).originated_prefixes:
            return [f"{self.device} does not originate {self.prefix}"]
        return []

    def apply_to(self, editor: NetworkEditor) -> None:
        editor.edit(self.device).originated_prefixes.remove(self.prefix)

    def payload(self) -> Dict[str, object]:
        return {"device": self.device, "prefix": str(self.prefix)}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PrefixWithdraw":
        return cls(device=str(data["device"]), prefix=Prefix.parse(str(data["prefix"])))


@dataclass(frozen=True)
class PrefixListSet(Change):
    """Create or replace a named prefix list on a device."""

    device: str
    name: str
    entries: Tuple[PrefixListEntry, ...]

    kind = "prefix-list-set"

    def describe(self) -> str:
        return f"prefix-list({self.device}:{self.name})"

    def problems(self, editor: NetworkEditor) -> List[str]:
        if not editor.has_device(self.device):
            return [f"device {self.device!r} does not exist"]
        return []

    def apply_to(self, editor: NetworkEditor) -> None:
        editor.edit(self.device).prefix_lists[self.name] = PrefixList(
            name=self.name, entries=tuple(self.entries)
        )

    def payload(self) -> Dict[str, object]:
        return {
            "device": self.device,
            "name": self.name,
            "entries": [_entry_to_dict(entry) for entry in self.entries],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PrefixListSet":
        return cls(
            device=str(data["device"]),
            name=str(data["name"]),
            entries=tuple(_entry_from_dict(raw) for raw in data.get("entries", ())),
        )


def _replace_route_map(
    editor: NetworkEditor, device_name: str, map_name: str, clauses: Sequence[RouteMapClause]
) -> None:
    editor.edit(device_name).route_maps[map_name] = RouteMap(
        name=map_name, clauses=tuple(clauses)
    )


@dataclass(frozen=True)
class RouteMapClauseInsert(Change):
    """Insert a new clause into an existing route map (sequence must be free)."""

    device: str
    route_map: str
    clause: RouteMapClause

    kind = "route-map-insert"

    def describe(self) -> str:
        return f"rm-insert({self.device}:{self.route_map}@{self.clause.sequence})"

    def problems(self, editor: NetworkEditor) -> List[str]:
        if not editor.has_device(self.device):
            return [f"device {self.device!r} does not exist"]
        maps = editor.device(self.device).route_maps
        if self.route_map not in maps:
            return [f"{self.device} has no route-map {self.route_map!r}"]
        if any(c.sequence == self.clause.sequence for c in maps[self.route_map].clauses):
            return [
                f"{self.device}:{self.route_map} already has clause "
                f"{self.clause.sequence} (use route-map-edit)"
            ]
        return []

    def apply_to(self, editor: NetworkEditor) -> None:
        existing = editor.device(self.device).route_maps[self.route_map].clauses
        _replace_route_map(
            editor, self.device, self.route_map, existing + (self.clause,)
        )

    def payload(self) -> Dict[str, object]:
        return {
            "device": self.device,
            "route_map": self.route_map,
            "clause": _clause_to_dict(self.clause),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RouteMapClauseInsert":
        return cls(
            device=str(data["device"]),
            route_map=str(data["route_map"]),
            clause=_clause_from_dict(data["clause"]),
        )


@dataclass(frozen=True)
class RouteMapClauseEdit(Change):
    """Replace the same-sequence clause of an existing route map."""

    device: str
    route_map: str
    clause: RouteMapClause

    kind = "route-map-edit"

    def describe(self) -> str:
        return f"rm-edit({self.device}:{self.route_map}@{self.clause.sequence})"

    def problems(self, editor: NetworkEditor) -> List[str]:
        if not editor.has_device(self.device):
            return [f"device {self.device!r} does not exist"]
        maps = editor.device(self.device).route_maps
        if self.route_map not in maps:
            return [f"{self.device} has no route-map {self.route_map!r}"]
        if not any(
            c.sequence == self.clause.sequence for c in maps[self.route_map].clauses
        ):
            return [
                f"{self.device}:{self.route_map} has no clause "
                f"{self.clause.sequence} (use route-map-insert)"
            ]
        return []

    def apply_to(self, editor: NetworkEditor) -> None:
        existing = editor.device(self.device).route_maps[self.route_map].clauses
        clauses = tuple(
            self.clause if c.sequence == self.clause.sequence else c for c in existing
        )
        _replace_route_map(editor, self.device, self.route_map, clauses)

    def payload(self) -> Dict[str, object]:
        return {
            "device": self.device,
            "route_map": self.route_map,
            "clause": _clause_to_dict(self.clause),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RouteMapClauseEdit":
        return cls(
            device=str(data["device"]),
            route_map=str(data["route_map"]),
            clause=_clause_from_dict(data["clause"]),
        )


@dataclass(frozen=True)
class RouteMapClauseDelete(Change):
    """Delete the clause with ``sequence`` from an existing route map."""

    device: str
    route_map: str
    sequence: int

    kind = "route-map-delete"

    def describe(self) -> str:
        return f"rm-delete({self.device}:{self.route_map}@{self.sequence})"

    def problems(self, editor: NetworkEditor) -> List[str]:
        if not editor.has_device(self.device):
            return [f"device {self.device!r} does not exist"]
        maps = editor.device(self.device).route_maps
        if self.route_map not in maps:
            return [f"{self.device} has no route-map {self.route_map!r}"]
        if not any(c.sequence == self.sequence for c in maps[self.route_map].clauses):
            return [f"{self.device}:{self.route_map} has no clause {self.sequence}"]
        return []

    def apply_to(self, editor: NetworkEditor) -> None:
        existing = editor.device(self.device).route_maps[self.route_map].clauses
        clauses = tuple(c for c in existing if c.sequence != self.sequence)
        _replace_route_map(editor, self.device, self.route_map, clauses)

    def payload(self) -> Dict[str, object]:
        return {
            "device": self.device,
            "route_map": self.route_map,
            "sequence": self.sequence,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RouteMapClauseDelete":
        return cls(
            device=str(data["device"]),
            route_map=str(data["route_map"]),
            sequence=int(data["sequence"]),
        )


@dataclass(frozen=True)
class LocalPrefOverride(Change):
    """Prefer routes learned from ``peer``: import local-preference override.

    Installs a single-clause route map assigning ``local_pref`` and points
    the session's import policy at it (replacing the previous import
    policy, as an operator's ``neighbor ... route-map ... in`` would).
    """

    device: str
    peer: str
    local_pref: int

    kind = "local-pref-override"

    def describe(self) -> str:
        return f"local-pref({self.device}<-{self.peer}={self.local_pref})"

    def problems(self, editor: NetworkEditor) -> List[str]:
        if not editor.has_device(self.device):
            return [f"device {self.device!r} does not exist"]
        if self.local_pref < 1:
            return ["local preference must be >= 1"]
        if self.peer not in editor.device(self.device).bgp_neighbors:
            return [f"{self.device} has no BGP session towards {self.peer}"]
        return []

    def apply_to(self, editor: NetworkEditor) -> None:
        device = editor.edit(self.device)
        map_name = f"DELTA-LP-{self.peer}-{self.local_pref}"
        device.route_maps[map_name] = RouteMap(
            name=map_name,
            clauses=(
                RouteMapClause(
                    sequence=10, action="permit", set_local_pref=self.local_pref
                ),
            ),
        )
        old = device.bgp_neighbors[self.peer]
        device.bgp_neighbors[self.peer] = BgpNeighborConfig(
            peer=self.peer,
            import_policy=map_name,
            export_policy=old.export_policy,
            ibgp=old.ibgp,
        )

    def payload(self) -> Dict[str, object]:
        return {"device": self.device, "peer": self.peer, "local_pref": self.local_pref}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "LocalPrefOverride":
        return cls(
            device=str(data["device"]),
            peer=str(data["peer"]),
            local_pref=int(data["local_pref"]),
        )


@dataclass(frozen=True)
class InterfaceAclSet(Change):
    """Install (or replace) a data-plane ACL on the interface towards ``peer``."""

    device: str
    peer: str
    name: str
    lines: Tuple[AclLine, ...] = ()
    default_action: str = "permit"

    kind = "acl-set"

    def describe(self) -> str:
        return f"acl({self.device}->{self.peer}:{self.name})"

    def problems(self, editor: NetworkEditor) -> List[str]:
        if not editor.has_device(self.device):
            return [f"device {self.device!r} does not exist"]
        if not editor.graph.has_edge(self.device, self.peer):
            return [f"{self.device} has no interface towards {self.peer}"]
        return []

    def apply_to(self, editor: NetworkEditor) -> None:
        device = editor.edit(self.device)
        device.acls[self.name] = Acl(
            name=self.name, lines=tuple(self.lines), default_action=self.default_action
        )
        device.interface_acls[self.peer] = self.name

    def payload(self) -> Dict[str, object]:
        return {
            "device": self.device,
            "peer": self.peer,
            "name": self.name,
            "lines": [
                {"action": line.action, "prefix": str(line.prefix)} for line in self.lines
            ],
            "default_action": self.default_action,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "InterfaceAclSet":
        return cls(
            device=str(data["device"]),
            peer=str(data["peer"]),
            name=str(data["name"]),
            lines=tuple(
                AclLine(action=str(raw["action"]), prefix=Prefix.parse(str(raw["prefix"])))
                for raw in data.get("lines", ())
            ),
            default_action=str(data.get("default_action", "permit")),
        )


@dataclass(frozen=True)
class DeviceAdd(Change):
    """Commission a new device with links (and cloned sessions) to neighbours."""

    name: str
    neighbours: Tuple[str, ...]
    originated: Optional[Prefix] = None

    kind = "device-add"

    def describe(self) -> str:
        return f"device-add({self.name})"

    def problems(self, editor: NetworkEditor) -> List[str]:
        out = []
        if editor.graph.has_node(self.name):
            out.append(f"device {self.name!r} already exists")
        if not self.neighbours:
            out.append("a new device needs at least one neighbour")
        for peer in self.neighbours:
            if not editor.graph.has_node(peer):
                out.append(f"device-add neighbour {peer!r} is not in the topology")
        return out

    def apply_to(self, editor: NetworkEditor) -> None:
        config = DeviceConfig(name=self.name, asn=self.name)
        if self.originated is not None:
            config.originated_prefixes.append(self.originated)
        editor.add_device(self.name, config)
        for peer in sorted(set(self.neighbours)):
            editor.graph.add_undirected_edge(self.name, peer)
            config.bgp_neighbors[peer] = BgpNeighborConfig(peer=peer)
            neighbour = editor.edit(peer)
            neighbour.bgp_neighbors[self.name] = _clone_session(neighbour, self.name)

    def payload(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "neighbours": list(self.neighbours),
            "originated": None if self.originated is None else str(self.originated),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "DeviceAdd":
        originated = data.get("originated")
        return cls(
            name=str(data["name"]),
            neighbours=tuple(str(n) for n in data.get("neighbours", ())),
            originated=None if originated is None else Prefix.parse(str(originated)),
        )


@dataclass(frozen=True)
class DeviceRemove(Change):
    """Decommission a device: its links, and every session pointing at it."""

    name: str

    kind = "device-remove"

    def describe(self) -> str:
        return f"device-remove({self.name})"

    def problems(self, editor: NetworkEditor) -> List[str]:
        if not editor.graph.has_node(self.name):
            return [f"device {self.name!r} is not in the topology"]
        return []

    def apply_to(self, editor: NetworkEditor) -> None:
        neighbours = set(editor.graph.successors(self.name)) | set(
            editor.graph.predecessors(self.name)
        )
        for peer in sorted(neighbours, key=str):
            if not editor.has_device(peer):
                continue
            device = editor.edit(peer)
            device.bgp_neighbors.pop(self.name, None)
            device.ospf_links.pop(self.name, None)
            device.interface_acls.pop(self.name, None)
        editor.remove_device(self.name)

    def payload(self) -> Dict[str, object]:
        return {"name": self.name}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "DeviceRemove":
        return cls(name=str(data["name"]))


#: ``kind`` discriminator -> change class, for the wire form.
CHANGE_KINDS: Dict[str, Type[Change]] = {
    cls.kind: cls
    for cls in (
        LinkAdd,
        LinkRemove,
        LinkCostSet,
        PrefixOriginate,
        PrefixWithdraw,
        PrefixListSet,
        RouteMapClauseInsert,
        RouteMapClauseEdit,
        RouteMapClauseDelete,
        LocalPrefOverride,
        InterfaceAclSet,
        DeviceAdd,
        DeviceRemove,
    )
}


def change_from_dict(data: Dict[str, object]) -> Change:
    """Deserialise one change from its wire form (``kind`` discriminated)."""
    kind = str(data.get("kind", ""))
    cls = CHANGE_KINDS.get(kind)
    if cls is None:
        known = ", ".join(sorted(CHANGE_KINDS))
        raise ChangeError(f"unknown change kind {kind!r}; expected one of: {known}")
    return cls.from_dict(data)


# ----------------------------------------------------------------------
# ChangeSet
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ChangeSet:
    """An ordered bundle of changes applied atomically to a network."""

    changes: Tuple[Change, ...]
    #: Optional human-readable name (defaults to the joined descriptions).
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "changes", tuple(self.changes))
        if not self.name:
            object.__setattr__(self, "name", self.describe())

    def describe(self) -> str:
        return "+".join(change.describe() for change in self.changes) or "noop"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name or self.describe()

    def is_empty(self) -> bool:
        return not self.changes

    # ------------------------------------------------------------------
    # Validation and application
    # ------------------------------------------------------------------
    def validate(self, network: Network) -> List[str]:
        """Problems preventing this set from applying, in change order.

        Later changes are validated against the state earlier ones
        produce, so a script may add a device and then link to it.
        """
        editor = NetworkEditor(network)
        problems: List[str] = []
        for change in self.changes:
            found = change.problems(editor)
            if found:
                problems.extend(f"{change.describe()}: {p}" for p in found)
                continue  # do not apply a broken change; keep checking the rest
            change.apply_to(editor)
        return problems

    def assert_valid(self, network: Network) -> None:
        problems = self.validate(network)
        if problems:
            raise ChangeError("; ".join(problems))

    def apply(self, network: Network) -> Network:
        """The changed network: fresh graph, copy-on-write device configs.

        The original network is not mutated; devices no change touches are
        the *same* :class:`DeviceConfig` objects in both networks, so
        "unchanged" is pointer equality and the baseline's
        fingerprint-guarded memos stay valid.
        """
        editor = NetworkEditor(network)
        for change in self.changes:
            found = change.problems(editor)
            if found:
                raise ChangeError(
                    f"{change.describe()}: " + "; ".join(found)
                )
            change.apply_to(editor)
        return editor.build(f"{network.name}+{self.name}")

    # ------------------------------------------------------------------
    # Wire form
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "changes": [change.to_dict() for change in self.changes],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ChangeSet":
        return cls(
            changes=tuple(change_from_dict(raw) for raw in data.get("changes", ())),
            name=str(data.get("name", "")),
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ChangeSet":
        return cls.from_dict(json.loads(text))


def _changeset_entry(raw: object) -> ChangeSet:
    if not isinstance(raw, dict):
        raise ChangeError(f"each script entry must be a JSON object, got {raw!r}")
    if "changes" in raw:
        return ChangeSet.from_dict(raw)
    if "kind" in raw:
        # A bare change: wrap it in a single-change step.
        return ChangeSet(changes=(change_from_dict(raw),))
    raise ChangeError(
        "each script entry needs either 'changes' (a change set) or "
        "'kind' (a single change)"
    )


def load_change_script(text: str) -> List[ChangeSet]:
    """Parse a change script from JSON text.

    Accepts a list of change sets (or bare changes, each becoming a
    single-change step), a single change set, or an object with a
    ``"script"`` key holding the list -- the formats
    ``python -m repro.pipeline --delta --changes <file>`` understands.
    """
    data = json.loads(text)
    if isinstance(data, dict) and "script" in data:
        data = data["script"]
    if isinstance(data, dict):
        data = [data]
    if not isinstance(data, list):
        raise ChangeError("a change script must be a JSON list of change sets")
    return [_changeset_entry(raw) for raw in data]
