"""Abstraction revalidation: does the baseline Bonsai survive a change?

Compression is the expensive half of change validation, so the sweep
asks, per destination class: can the baseline abstraction be *reused* for
the changed network, or must the class be re-compressed?

The decision is a signature comparison.  Refinement is a pure function of
(graph, per-edge specialized policy keys, origin set, per-node
local-preference sets) -- exactly the inputs the PR-3 cross-class
refinement cache keys on -- so if the changed network's signature for a
class equals the baseline's, the refinement problem is *identical* and
the baseline :class:`~repro.abstraction.bonsai.CompressionResult` is
still an effective abstraction of the changed network.  The signature
uses the specialized *syntactic* keys (canonical per destination): they
are conservative -- syntactically different but semantically equal
policies re-compress unnecessarily -- but never unsound, because
syntactic equality implies transfer equality.

On a mismatch the class is re-compressed from scratch on the changed
network (a fresh :class:`~repro.abstraction.bonsai.Bonsai`; changed
configurations may enlarge the policy universe, so the baseline's BDD
encoder is not blindly reused the way the failure checker can).

Either way the outcome ends in a differential verdict comparison --
abstract verdicts lifted through whichever mapping was used must equal
the concrete ones (reusing
:func:`repro.failures.soundness.lifted_abstract_verdicts`) -- so a wrong
reuse decision would surface as ``agrees=False`` rather than pass
silently.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.abstraction.bonsai import Bonsai, CompressionResult
from repro.abstraction.ec import EquivalenceClass
from repro.analysis.properties import PropertySpec
from repro.config.network import Network
from repro.config.prefix import Prefix
from repro.config.transfer import syntactic_policy_keys
from repro.failures.soundness import (
    VerdictMap,
    compare_verdicts,
    lifted_abstract_verdicts,
)


@dataclass
class RevalidationOutcome:
    """What the revalidator concluded for one (class, change) pair."""

    #: The baseline abstraction survives the change: it was reused without
    #: re-compressing this class.
    reused: bool
    #: Why not, when it was not ("" when it was).
    reason: str = ""
    #: Whether a per-class re-compression of the changed network ran.
    recompressed: bool = False
    #: Differential result: lifted abstract verdicts equal concrete ones.
    agrees: Optional[bool] = None
    #: ``{property: [nodes]}`` where they do not.
    mismatched: Dict[str, List[str]] = field(default_factory=dict)
    #: Abstract node count of whichever abstraction was compared against.
    abstract_nodes: int = 0
    #: Wall-clock of the signature check plus the reuse-side verdict
    #: lifting (the incremental arm's revalidation cost).
    seconds: float = 0.0
    #: Wall-clock of the re-compression, when one ran.
    recompress_seconds: float = 0.0
    #: The lifted verdict map compared against (not serialised; sweeps
    #: cache it across the steps of one class when the abstraction is
    #: reused, since a matching signature fixes the abstract network).
    lifted: Optional[VerdictMap] = field(default=None, repr=False)

    def to_dict(self) -> Dict[str, object]:
        return {
            "reused": self.reused,
            "reason": self.reason,
            "recompressed": self.recompressed,
            "agrees": self.agrees,
            "mismatched": dict(self.mismatched),
            "abstract_nodes": self.abstract_nodes,
            "seconds": self.seconds,
            "recompress_seconds": self.recompress_seconds,
        }


# ----------------------------------------------------------------------
# Signatures
# ----------------------------------------------------------------------
def class_signature(
    network: Network,
    prefix: Prefix,
    origins: FrozenSet[str],
    keys: Optional[Dict] = None,
) -> Tuple:
    """The refinement-input signature of one destination class.

    Two networks with equal signatures for a class pose the identical
    refinement problem: same node set, same directed edges (the key map's
    domain), same specialized per-edge policy keys, same origins (hence
    the same virtual-destination shape) and same per-node local-preference
    sets.  ``keys`` lets a caller that already specialized the network's
    policy keys for this prefix (the sweep's edge diff) share them.

    Signatures are compared with :func:`signature_matches`, not hashed:
    the key maps stay plain dicts so an equality check short-circuits on
    the first difference instead of paying a full deep hash up front.
    """
    if keys is None:
        keys = syntactic_policy_keys(network, prefix)
    return (
        frozenset(str(node) for node in network.graph.nodes),
        keys,
        frozenset(str(origin) for origin in origins),
        network.local_pref_values_by_device(),
    )


def signature_matches(baseline_signature: Tuple, changed_signature: Tuple) -> str:
    """"" when the signatures coincide, else a human-readable reason."""
    base_nodes, base_keys, base_origins, base_lp = baseline_signature
    new_nodes, new_keys, new_origins, new_lp = changed_signature
    if base_nodes != new_nodes:
        return "topology changed: node set differs"
    if base_origins != new_origins:
        added = sorted(new_origins - base_origins)
        gone = sorted(base_origins - new_origins)
        return f"origin set changed (+{added}, -{gone})"
    if set(base_keys) != set(new_keys):
        return "topology changed: edge set differs"
    if base_keys != new_keys:
        differing = sorted(
            str(edge)
            for edge in set(base_keys) | set(new_keys)
            if base_keys.get(edge) != new_keys.get(edge)
        )[:3]
        return f"specialized policy keys differ on {differing}"
    if base_lp != new_lp:
        return "per-device local-preference sets differ"
    return ""


# ----------------------------------------------------------------------
# The revalidator
# ----------------------------------------------------------------------
def revalidate_class(
    baseline: CompressionResult,
    baseline_signature: Tuple,
    changed_network: Network,
    changed_ec: EquivalenceClass,
    concrete_verdicts: VerdictMap,
    specs: List[PropertySpec],
    waypoints: FrozenSet[str],
    path_bound: int,
    recompress_bonsai: Callable[[], Bonsai],
    changed_keys: Optional[Dict] = None,
    baseline_lifted: Optional[VerdictMap] = None,
) -> RevalidationOutcome:
    """Decide reuse-vs-recompress for one class and differentially verify.

    ``concrete_verdicts`` are the per-node verdicts already computed on
    the changed concrete network by the sweep's incremental re-solve;
    ``recompress_bonsai`` lazily supplies a :class:`Bonsai` over the
    changed network (shared across classes by the sweep task) so the
    re-compression path does not rebuild the policy encoder per class.
    ``changed_keys`` shares the sweep's already-specialized policy keys;
    ``baseline_lifted`` shares a previous step's reuse-side lifted
    verdict map (valid because a matching signature fixes the abstract
    network, the node set and the waypoint set).
    """
    start = time.perf_counter()
    changed_signature = class_signature(
        changed_network, changed_ec.prefix, changed_ec.origins, keys=changed_keys
    )
    reason = signature_matches(baseline_signature, changed_signature)
    nodes = sorted(str(n) for n in changed_network.graph.nodes)

    if not reason and baseline.abstract_network is not None:
        lifted = baseline_lifted
        if lifted is None:
            lifted = lifted_abstract_verdicts(
                baseline.abstraction,
                baseline.abstract_network,
                changed_ec,
                specs,
                nodes,
                waypoints,
                path_bound,
            )
        mismatched = compare_verdicts(concrete_verdicts, lifted)
        return RevalidationOutcome(
            reused=True,
            recompressed=False,
            agrees=not mismatched,
            mismatched=mismatched,
            abstract_nodes=baseline.abstract_network.graph.num_nodes(),
            seconds=time.perf_counter() - start,
            lifted=lifted,
        )
    if not reason:
        reason = "baseline compression was run without build_network=True"

    seconds = time.perf_counter() - start
    recompress_start = time.perf_counter()
    result = recompress_bonsai().compress(changed_ec, build_network=True)
    lifted = lifted_abstract_verdicts(
        result.abstraction,
        result.abstract_network,
        changed_ec,
        specs,
        nodes,
        waypoints,
        path_bound,
    )
    mismatched = compare_verdicts(concrete_verdicts, lifted)
    return RevalidationOutcome(
        reused=False,
        reason=reason,
        recompressed=True,
        agrees=not mismatched,
        mismatched=mismatched,
        abstract_nodes=result.abstract_nodes,
        seconds=seconds,
        recompress_seconds=time.perf_counter() - recompress_start,
    )
