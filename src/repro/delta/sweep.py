"""What-if change sweeps: change scripts x equivalence classes.

:class:`DeltaSweep` makes configuration change validation a batch
workload like compression, verification and failure analysis before it:
take an **ordered change script** (a list of
:class:`~repro.delta.changeset.ChangeSet` steps, applied cumulatively),
fan the per-class work out through the generic
:class:`~repro.pipeline.core.ClassFanOut` engine as the ``"delta"``
task, and aggregate a JSON :class:`DeltaReport`.

Each task invocation handles *all* steps of one destination equivalence
class, because that is where the reuse lives: the baseline is solved and
compressed once; each step's incremental re-solve is seeded from the
previous step's solution through the compiled-edge diff
(:func:`repro.delta.incremental.delta_resolve`); and the baseline
abstraction is revalidated per step -- reused outright when the class's
refinement signature is unchanged, re-compressed only when dirty
(:func:`repro.delta.revalidate.revalidate_class`).

Per (class, step) the task records:

* the **incremental re-solve** outcome -- label-for-label agreement with
  the scratch oracle (when ``oracle`` is on), taint/dirty/edge-diff
  sizes, and both wall-clock times;
* the **verdict delta vs. the unchanged baseline** for every suite
  property, with one structured witness per newly broken property;
* the **revalidation** outcome -- abstraction reused or re-compressed,
  and the differential lifted-abstract-vs-concrete comparison either way;
* the **rebuild arm** timings (scratch solve + fresh re-compression)
  behind the report's headline incremental-vs-rebuild speedup.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.abstraction.bonsai import Bonsai
from repro.abstraction.ec import EquivalenceClass, routable_equivalence_classes
from repro.analysis.batch import PropertySuite
from repro.analysis.dataplane import ForwardingTable, forwarding_table_from_solution
from repro.analysis.properties import (
    PropertyContext,
    evaluate_suite,
    failure_witness,
    verdict_delta,
)
from repro.config.network import Network
from repro.config.transfer import (
    build_srp_from_network,
    compile_base_edges,
    specialize_compiled_edges,
    syntactic_policy_keys,
)
from repro.delta.changeset import ChangeSet
from repro.delta.incremental import delta_resolve, diff_network_edges
from repro.delta.revalidate import class_signature, revalidate_class
from repro.failures.incremental import BaselineIndex, divergent_nodes
from repro.obs import trace
from repro.reporting import ReportEnvelope, StreamingReport, register_report
from repro.failures.soundness import lifted_abstract_verdicts
from repro.pipeline.core import EXECUTORS, ClassFanOut, register_class_task
from repro.pipeline.encoded import EncodedNetwork
from repro.srp.solver import ConvergenceError, TransferCache, solve, solve_seeded

#: Format version of the JSON delta reports.
DELTA_REPORT_VERSION = 1


# ----------------------------------------------------------------------
# Records
# ----------------------------------------------------------------------
@dataclass
class ChangeOutcome:
    """Everything recorded for one (equivalence class, change step) pair."""

    step: str
    changes: List[str] = field(default_factory=list)
    #: No device originates the class prefix any more after this step.
    unroutable: bool = False
    #: The origin set (or destination partition) changed: the SRP's
    #: destination structure no longer lines up with the previous step's,
    #: so the scratch result served the solution.
    origins_changed: bool = False
    #: The destination trie no longer has a class at exactly this prefix.
    partition_changed: bool = False
    incremental_used: bool = False
    #: Incremental labeling is identical to the scratch oracle's (``None``
    #: when the oracle was skipped or incremental did not run).
    incremental_matches_scratch: Optional[bool] = None
    divergent: List[str] = field(default_factory=list)
    incremental_seconds: float = 0.0
    scratch_seconds: float = 0.0
    tainted: int = 0
    dirty: int = 0
    edges_removed: int = 0
    edges_added: int = 0
    edges_changed: int = 0
    #: Revalidation verdicts (``None`` when revalidation was off or the
    #: step was unroutable).
    reused: Optional[bool] = None
    recompressed: bool = False
    revalidate_seconds: float = 0.0
    #: Re-compression cost charged to the *incremental* arm (only when the
    #: signature mismatched and the class really was re-compressed).
    recompress_seconds: float = 0.0
    #: Fresh-compression cost of the *rebuild* arm (equals
    #: ``recompress_seconds`` when a re-compression ran; a separately
    #: timed throwaway compression when the abstraction was reused and the
    #: rebuild oracle is on; 0 when unmeasured).
    rebuild_compress_seconds: float = 0.0
    #: Full :class:`~repro.delta.revalidate.RevalidationOutcome` wire form.
    revalidation: Optional[Dict] = None
    #: Per-property verdict delta vs. the unchanged baseline.
    newly_failing: Dict[str, List[str]] = field(default_factory=dict)
    newly_passing: Dict[str, List[str]] = field(default_factory=dict)
    #: One structured counterexample per newly broken property.
    witnesses: Dict[str, Dict] = field(default_factory=dict)

    def abstract_agrees(self) -> Optional[bool]:
        if self.revalidation is None:
            return None
        return self.revalidation.get("agrees")

    def canonical(self) -> Tuple:
        """Timing-free outcome, for executor-parity comparisons."""
        return (
            self.step,
            self.unroutable,
            self.origins_changed,
            self.partition_changed,
            self.incremental_matches_scratch,
            self.reused,
            self.recompressed,
            self.abstract_agrees(),
            tuple(sorted((k, tuple(v)) for k, v in self.newly_failing.items())),
            tuple(sorted((k, tuple(v)) for k, v in self.newly_passing.items())),
        )


@dataclass
class ClassDeltaRecord:
    """All change-step outcomes for one destination equivalence class."""

    prefix: str
    origins: List[str]
    baseline_seconds: float
    compression_seconds: float
    baseline_failing: Dict[str, List[str]] = field(default_factory=dict)
    steps: List[ChangeOutcome] = field(default_factory=list)
    #: True when the baseline labeling (and compression, if revalidating)
    #: came from a stored :class:`~repro.store.BaselineArtifact` instead
    #: of being re-solved in this run.
    baseline_from_store: bool = False

    def canonical(self) -> Tuple:
        return (
            self.prefix,
            tuple(self.origins),
            tuple(sorted((k, tuple(v)) for k, v in self.baseline_failing.items())),
            tuple(outcome.canonical() for outcome in self.steps),
        )


@register_report
@dataclass
class DeltaReport(StreamingReport, ReportEnvelope):
    """Run-level aggregation of a what-if change sweep."""

    kind = "delta"

    network_name: str
    executor: str
    workers: int
    num_classes: int
    num_steps: int
    properties: List[str]
    path_bound: Optional[int]
    oracle: bool
    revalidate: bool
    rebuild_oracle: bool
    encode_seconds: float
    total_seconds: float
    step_names: List[str] = field(default_factory=list)
    records: List[ClassDeltaRecord] = field(default_factory=list)
    #: Content fingerprint of the stored baseline artifact this run
    #: validated against, when one was supplied.
    baseline_fingerprint: Optional[str] = None
    #: Peak resident set of the producing run in MiB, when measured
    #: (``--memory-budget`` runs and the scale benchmark fill this).
    peak_rss_mb: Optional[float] = None
    version: int = DELTA_REPORT_VERSION

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def _outcomes(self):
        for record in self.iter_records():
            for outcome in record.steps:
                yield record, outcome

    @property
    def incremental_seconds(self) -> float:
        return sum(o.incremental_seconds for _, o in self._outcomes())

    @property
    def scratch_seconds(self) -> float:
        return sum(o.scratch_seconds for _, o in self._outcomes())

    @property
    def incremental_speedup(self) -> Optional[float]:
        """Rebuild-vs-incremental wall-clock ratio over measured steps.

        The incremental arm is what change validation actually pays:
        seeded re-solve plus revalidation (including any per-class
        re-compression the signature check forced).  The rebuild arm is
        what a from-scratch pipeline pays for the same answer: a fresh
        solve plus a fresh compression.  Only (class, step) pairs where
        both arms were measured contribute.
        """
        inc = 0.0
        rebuild = 0.0
        for _, o in self._outcomes():
            if not o.incremental_used or o.scratch_seconds <= 0:
                continue
            if o.rebuild_compress_seconds <= 0:
                continue
            inc += o.incremental_seconds + o.revalidate_seconds + o.recompress_seconds
            rebuild += o.scratch_seconds + o.rebuild_compress_seconds
        if inc <= 0 or rebuild <= 0:
            return None
        return rebuild / inc

    def incremental_all_match(self) -> bool:
        """Every compared step re-solved bit-identically to scratch."""
        return all(
            o.incremental_matches_scratch is not False for _, o in self._outcomes()
        )

    def incremental_divergences(self) -> List[Tuple[str, str, List[str]]]:
        return [
            (record.prefix, outcome.step, list(outcome.divergent))
            for record, outcome in self._outcomes()
            if outcome.incremental_matches_scratch is False
        ]

    def reuse_counts(self) -> Dict[str, int]:
        """How (class, step) pairs fared against the baseline abstraction."""
        counts = {"checked": 0, "reused": 0, "recompressed": 0, "disagreed": 0}
        for _, outcome in self._outcomes():
            if outcome.reused is None:
                continue
            counts["checked"] += 1
            if outcome.reused:
                counts["reused"] += 1
            if outcome.recompressed:
                counts["recompressed"] += 1
            if outcome.abstract_agrees() is False:
                counts["disagreed"] += 1
        return counts

    def abstract_disagreements(self) -> List[Tuple[str, str, Dict]]:
        return [
            (record.prefix, outcome.step, dict(outcome.revalidation or {}))
            for record, outcome in self._outcomes()
            if outcome.abstract_agrees() is False
        ]

    def first_breaking_change(self) -> Dict[str, Optional[str]]:
        """Per property: the first step (script order) breaking it anywhere."""
        order = {name: index for index, name in enumerate(self.step_names)}
        first: Dict[str, Optional[str]] = {name: None for name in self.properties}
        for _, outcome in self._outcomes():
            for prop, nodes in outcome.newly_failing.items():
                if not nodes:
                    continue
                current = first.get(prop)
                if current is None or order.get(outcome.step, 1 << 30) < order.get(
                    current, 1 << 30
                ):
                    first[prop] = outcome.step
        return first

    def first_property_broken(self) -> Optional[Tuple[str, str]]:
        """The earliest ``(property, step)`` break of the whole sweep."""
        order = {name: index for index, name in enumerate(self.step_names)}
        best: Optional[Tuple[str, str]] = None
        for prop, step in self.first_breaking_change().items():
            if step is None:
                continue
            if best is None or order.get(step, 1 << 30) < order.get(best[1], 1 << 30):
                best = (prop, step)
        return best

    def property_break_counts(self) -> Dict[str, int]:
        """Per property: how many (class, step) pairs newly break it."""
        counts = {name: 0 for name in self.properties}
        for _, outcome in self._outcomes():
            for prop, nodes in outcome.newly_failing.items():
                if nodes:
                    counts[prop] = counts.get(prop, 0) + 1
        return counts

    def ok(self) -> bool:
        """The sweep-level gate: no divergence, no abstract disagreement."""
        return self.incremental_all_match() and not self.abstract_disagreements()

    def canonical_records(self) -> Tuple[Tuple, ...]:
        return tuple(
            record.canonical()
            for record in sorted(self.iter_records(), key=lambda r: r.prefix)
        )

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------
    @classmethod
    def record_from_payload(cls, payload: Dict) -> ClassDeltaRecord:
        raw = dict(payload)
        steps = [ChangeOutcome(**outcome) for outcome in raw.pop("steps", [])]
        return ClassDeltaRecord(steps=steps, **raw)

    def to_dict(self, include_records: bool = True) -> Dict:
        data = asdict(self)
        data.pop("records", None)
        if include_records:
            data["records"] = self.records_payload()
        data.update(self.envelope_dict())
        data["aggregate"] = {
            "incremental_seconds": self.incremental_seconds,
            "scratch_seconds": self.scratch_seconds,
            "incremental_speedup": self.incremental_speedup,
            "incremental_all_match": self.incremental_all_match(),
            "reuse": self.reuse_counts(),
            "first_breaking_change": self.first_breaking_change(),
            "first_property_broken": self.first_property_broken(),
            "property_break_counts": self.property_break_counts(),
        }
        return data

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict) -> "DeltaReport":
        payload = cls.strip_envelope(data)
        payload.pop("aggregate", None)
        records = [
            cls.record_from_payload(raw) for raw in payload.pop("records", [])
        ]
        return cls(records=records, **payload)

    @classmethod
    def from_json(cls, text: str) -> "DeltaReport":
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------
    def summary_lines(self) -> List[str]:
        lines = [
            f"network: {self.network_name}",
            f"executor: {self.executor} (workers={self.workers})",
            f"change script: {self.num_steps} steps x {self.num_classes} classes",
            f"properties: {', '.join(self.properties)}",
        ]
        if self.oracle:
            speedup = self.incremental_speedup
            lines.append(
                f"incremental re-verify: {self.incremental_seconds:.3f}s vs "
                f"scratch solve {self.scratch_seconds:.3f}s"
                + (
                    f" (vs full rebuild: {speedup:.2f}x)"
                    if speedup is not None
                    else ""
                )
            )
            lines.append(
                "incremental labelings IDENTICAL to the scratch oracle"
                if self.incremental_all_match()
                else f"INCREMENTAL DIVERGED: {self.incremental_divergences()}"
            )
        if self.revalidate:
            counts = self.reuse_counts()
            lines.append(
                f"abstraction revalidation: {counts['reused']}/{counts['checked']} "
                f"(class, step) pairs reused the baseline abstraction, "
                f"{counts['recompressed']} re-compressed, "
                f"{counts['disagreed']} verdict disagreements"
            )
        first = self.first_breaking_change()
        for prop in self.properties:
            step = first.get(prop)
            lines.append(
                f"  {prop}: "
                + ("survives every change" if step is None else f"first broken by {step}")
            )
        return lines


# ----------------------------------------------------------------------
# Per-worker script state (shared across the classes one worker handles)
# ----------------------------------------------------------------------
#: Step index standing for the unchanged baseline network in the script
#: state's per-network caches.
_BASELINE_STEP = -1


class _ScriptState:
    """The cumulative changed networks (and per-network caches) of one
    script, cached on the worker's Bonsai so every class the worker
    handles shares the applied networks, each step's policy encoder, the
    destination-independent base compilations and the route-map
    specialization memos."""

    __slots__ = (
        "key",
        "steps",
        "bonsais",
        "base_compiled",
        "ignore",
        "spec_caches",
        "compiled",
    )

    def __init__(self, key, steps):
        self.key = key
        #: ``[(ChangeSet, changed Network)]``, cumulative.
        self.steps = steps
        #: ``step index -> Bonsai`` over that step's network (lazy).
        self.bonsais: Dict[int, Bonsai] = {}
        #: ``step index -> destination-independent compiled edges``.
        self.base_compiled: Dict[int, Dict] = {}
        #: ``step index -> unused-community set``.
        self.ignore: Dict[int, frozenset] = {}
        #: ``(ignore set, prefix) -> specialize_route_map memo``.  Scoped
        #: per destination-and-ignore pair as the memo contract requires;
        #: steps whose ignore set is unchanged share one memo, so route
        #: maps shared across the copy-on-write step networks are
        #: specialized once for the whole script.
        self.spec_caches: Dict[Tuple[frozenset, object], Dict] = {}
        #: ``step index -> (prefix, specialized compiled edges)``: a
        #: single-entry memo per step (one class runs all its steps back
        #: to back) shared by the SRP builds of both oracle arms and the
        #: policy-key computation.
        self.compiled: Dict[int, Tuple[object, Dict]] = {}

    def network_for(self, step: int, baseline: Network) -> Network:
        return baseline if step == _BASELINE_STEP else self.steps[step][1]

    def compiled_for(self, step: int, baseline: Network, prefix) -> Dict:
        """The destination-specialized compiled edges of one step's network."""
        cached = self.compiled.get(step)
        if cached is not None and cached[0] == prefix:
            return cached[1]
        network = self.network_for(step, baseline)
        base = self.base_compiled.get(step)
        if base is None:
            base = self.base_compiled[step] = compile_base_edges(network)
        compiled = specialize_compiled_edges(network, prefix, base)
        self.compiled[step] = (prefix, compiled)
        return compiled

    def policy_keys(self, step: int, baseline: Network, prefix) -> Dict:
        """The specialized syntactic policy keys of one step's network.

        Every layer is cached: the base compilation and unused-community
        set per step network, the specialized compilation per (step,
        current class), and the route-map specialization memo per
        (ignore set, destination) -- shared across steps, since the
        copy-on-write views share the unchanged route-map and device
        objects.
        """
        network = self.network_for(step, baseline)
        ignore = self.ignore.get(step)
        if ignore is None:
            ignore = self.ignore[step] = network.unused_communities()
        spec_cache = self.spec_caches.setdefault((ignore, prefix), {})
        return syntactic_policy_keys(
            network,
            prefix,
            self.compiled_for(step, baseline, prefix),
            ignore,
            specialize_cache=spec_cache,
        )


def _script_state(bonsai: Bonsai, script: Sequence[ChangeSet]) -> _ScriptState:
    key = tuple(json.dumps(cs.to_dict(), sort_keys=True) for cs in script)
    state = getattr(bonsai, "_delta_script_state", None)
    if state is None or state.key != key:
        steps = []
        current = bonsai.network
        for changeset in script:
            current = changeset.apply(current)
            steps.append((changeset, current))
        state = _ScriptState(key, steps)
        bonsai._delta_script_state = state
    return state


def _step_bonsai(state: _ScriptState, step: int, network: Network, use_bdds: bool):
    """A lazy factory for the fresh Bonsai over one step's changed network."""

    def factory() -> Bonsai:
        bonsai = state.bonsais.get(step)
        if bonsai is None:
            bonsai = state.bonsais[step] = Bonsai(network, use_bdds=use_bdds)
        return bonsai

    return factory


# ----------------------------------------------------------------------
# The per-class "delta" task (runs inside pipeline workers)
# ----------------------------------------------------------------------
def _class_on(network: Network, prefix) -> Tuple[Optional[EquivalenceClass], bool]:
    """The changed network's class for ``prefix``: ``(class, reshaped)``.

    ``reshaped`` is True when the destination partition no longer has a
    class at exactly this prefix (origination churn refined or merged the
    trie); the most specific overlapping routable class stands in, so the
    swept destination still gets verdicts.
    """
    classes = routable_equivalence_classes(network)
    for candidate in classes:
        if candidate.prefix == prefix:
            return candidate, False
    overlapping = [c for c in classes if c.prefix.overlaps(prefix)]
    if not overlapping:
        return None, True
    return max(overlapping, key=lambda c: c.prefix.length), True


def delta_class_task(bonsai, equivalence_class: EquivalenceClass, options: dict):
    """Run every change step against one equivalence class."""
    suite = PropertySuite.from_options(options)
    script = [ChangeSet.from_dict(raw) for raw in options.get("script", [])]
    oracle = bool(options.get("oracle", True))
    revalidate_on = bool(options.get("revalidate", True))
    rebuild_oracle = bool(options.get("rebuild_oracle", True))
    max_rounds = int(options.get("max_rounds", 1000))

    network: Network = bonsai.network
    prefix = equivalence_class.prefix
    origins = set(equivalence_class.origins)
    specs = suite.specs()
    nodes = sorted(network.graph.nodes, key=str)
    node_names = [str(n) for n in nodes]
    path_bound = (
        suite.path_bound if suite.path_bound is not None else network.graph.num_nodes()
    )
    waypoints = (
        frozenset(suite.waypoints)
        if suite.waypoints is not None
        else frozenset(str(origin) for origin in origins)
    )

    # -- unchanged baseline ----------------------------------------------
    # With a stored baseline the labeling comes from the artifact: a
    # zero-dirty seeded solve validates it against the live SRP (the
    # no-update round plus the O(E) stability scan) without a single
    # fixed-point iteration, and the stored transfer memo makes the offer
    # tables pure cache hits.  A bad seed (ConvergenceError) falls back to
    # a scratch solve instead of failing the run.
    stored = options.get("baseline") or {}
    class_baseline = stored.get(str(prefix))
    baseline_start = time.perf_counter()
    compiled = bonsai.compile_for(prefix)
    baseline_srp = build_srp_from_network(
        network, prefix, origins, compiled=compiled, include_syntactic_keys=False
    )
    baseline_solution = None
    if class_baseline is not None:
        try:
            baseline_solution = solve_seeded(
                baseline_srp,
                class_baseline.labeling,
                dirty=(),
                transfer_cache=TransferCache().seeded_from(
                    class_baseline.transfer_memo
                ),
                max_rounds=max_rounds,
            )
        except ConvergenceError:
            class_baseline = None
    if baseline_solution is None:
        baseline_solution = solve(baseline_srp)
    baseline_table = forwarding_table_from_solution(
        network, baseline_solution, equivalence_class
    )
    baseline_verdicts = evaluate_suite(
        specs, baseline_table, nodes, waypoints, path_bound
    )
    baseline_seconds = time.perf_counter() - baseline_start

    state = _script_state(bonsai, script)

    compression = None
    baseline_signature = None
    compression_seconds = 0.0
    if revalidate_on:
        if (
            class_baseline is not None
            and class_baseline.compression is not None
            and class_baseline.compression.abstract_network is not None
        ):
            compression = class_baseline.compression
            baseline_signature = class_baseline.signature
        else:
            compression = bonsai.compress(equivalence_class, build_network=True)
            compression_seconds = compression.compression_seconds
            baseline_signature = class_signature(
                network,
                prefix,
                equivalence_class.origins,
                keys=state.policy_keys(_BASELINE_STEP, network, prefix),
            )

    record = ClassDeltaRecord(
        prefix=str(prefix),
        origins=sorted(str(origin) for origin in origins),
        baseline_seconds=baseline_seconds,
        compression_seconds=compression_seconds,
        baseline_failing={
            prop: [n for n in node_names if not per_node[n]]
            for prop, per_node in baseline_verdicts.items()
        },
        baseline_from_store=class_baseline is not None,
    )

    # The incremental chain: each step seeds from the previous step's
    # solution, so a ten-step script never re-solves from scratch.
    prev_step = _BASELINE_STEP
    prev_network = network
    prev_solution = baseline_solution
    prev_origins = frozenset(str(origin) for origin in origins)
    prev_prefix = prefix
    prev_keys = None
    prev_index = BaselineIndex.from_solution(baseline_solution)
    #: Reuse-side lifted verdicts, fixed across steps by a matching
    #: signature; computed at most once per class.
    baseline_lifted = None

    # Sub-class chunking (the shard coordinator's ``step_range`` patches):
    # run only steps ``[range_start, range_end)``.  A chunk starting
    # mid-script fast-forwards the incremental chain by scratch-solving
    # the step just before it -- SRP labelings are unique fixed points,
    # so the seeded state (and hence every chunk outcome) is identical to
    # the chained serial run's; only timings differ.
    range_start, range_end = 0, len(state.steps)
    if options.get("step_range") is not None:
        range_start, range_end = (int(bound) for bound in options["step_range"])
        range_start = max(0, range_start)
        range_end = min(range_end, len(state.steps))
    if range_start > 0:
        prev_step = range_start - 1
        prev_network = state.steps[prev_step][1]
        prev_ec, _ = _class_on(prev_network, prefix)
        if prev_ec is None:
            # Serial left the chain unseedable after an unroutable step.
            prev_solution = None
            prev_keys = None
            prev_index = None
        else:
            sim_prefix = prev_ec.prefix
            sim_origins = set(prev_ec.origins)
            forward_srp = build_srp_from_network(
                prev_network,
                sim_prefix,
                sim_origins,
                compiled=state.compiled_for(prev_step, network, sim_prefix),
                include_syntactic_keys=False,
            )
            prev_solution = solve(forward_srp, max_rounds=max_rounds)
            prev_keys = state.policy_keys(prev_step, network, sim_prefix)
            prev_index = BaselineIndex.from_solution(prev_solution)
            prev_prefix = sim_prefix
            prev_origins = frozenset(str(origin) for origin in sim_origins)

    for step_index in range(range_start, range_end):
        changeset, changed_network = state.steps[step_index]
        # One span per *in-range* step -- the chunk fast-forward replay
        # above is deliberately unspanned, so a step-range chunk's trace
        # holds exactly its own steps and the chunk-merged tree matches
        # the chained serial run span for span.
        with trace.span("step", name=changeset.name):
            outcome = ChangeOutcome(
                step=changeset.name,
                changes=[change.describe() for change in changeset.changes],
            )
            changed_ec, reshaped = _class_on(changed_network, prefix)
            outcome.partition_changed = reshaped
            # The delta universe is the *changed* network's nodes: devices a
            # change removed drop out, devices it added are included (an
            # added device failing a property is newly failing -- absent
            # baseline nodes default to passing in verdict_delta).
            surviving = sorted(str(n) for n in changed_network.graph.nodes)
            # Default waypoints follow the *changed* class's origins (the batch
            # verifier convention: origin sets are unions of abstraction
            # groups by construction, arbitrary sets need not be); explicit
            # suite waypoints are kept, restricted to surviving devices.
            if suite.waypoints is None and changed_ec is not None:
                step_waypoints = frozenset(str(o) for o in changed_ec.origins)
            else:
                step_waypoints = frozenset(
                    w for w in waypoints if changed_network.graph.has_node(w)
                )

            if changed_ec is None:
                # Nothing originates the destination any more: no control
                # plane to solve, every property trivially fails everywhere.
                outcome.unroutable = True
                empty = ForwardingTable(
                    destination=prefix,
                    origins=set(),
                    next_hops={node: set() for node in changed_network.graph.nodes},
                )
                verdicts = evaluate_suite(
                    specs, empty, changed_network.graph.nodes, step_waypoints, path_bound
                )
                outcome.newly_failing, outcome.newly_passing = verdict_delta(
                    baseline_verdicts, verdicts, surviving
                )
                record.steps.append(outcome)
                prev_step = step_index
                prev_network = changed_network
                prev_solution = None
                prev_keys = None
                prev_index = None
                continue

            sim_prefix = changed_ec.prefix
            sim_origins = set(changed_ec.origins)
            sim_origin_names = frozenset(str(origin) for origin in sim_origins)
            can_seed = (
                prev_solution is not None
                and sim_prefix == prev_prefix
                and sim_origin_names == prev_origins
            )
            outcome.origins_changed = not can_seed

            def build_changed_srp():
                # Both oracle arms (and the policy-key computation) share one
                # specialized compilation per (step, class) via the script
                # state; compiling is destination-work a real rebuild pays
                # once, not per arm.
                return build_srp_from_network(
                    changed_network,
                    sim_prefix,
                    set(sim_origins),
                    compiled=state.compiled_for(step_index, network, sim_prefix),
                    include_syntactic_keys=False,
                )

            scratch_solution = None
            if oracle or not can_seed:
                scratch_srp = build_changed_srp()
                scratch_start = time.perf_counter()
                scratch_solution = solve(scratch_srp, max_rounds=max_rounds)
                outcome.scratch_seconds = time.perf_counter() - scratch_start

            new_keys = state.policy_keys(step_index, network, sim_prefix)
            if not can_seed:
                solution = scratch_solution
            else:
                if prev_keys is None:
                    prev_keys = state.policy_keys(prev_step, network, sim_prefix)
                diff = diff_network_edges(
                    prev_network,
                    changed_network,
                    sim_prefix,
                    old_keys=prev_keys,
                    new_keys=new_keys,
                )
                outcome.edges_removed = len(diff.removed)
                outcome.edges_added = len(diff.added)
                outcome.edges_changed = len(diff.changed)
                result = delta_resolve(
                    build_changed_srp(),
                    prev_solution,
                    diff,
                    index=prev_index,
                    max_rounds=max_rounds,
                )
                solution = result.solution
                outcome.incremental_used = result.incremental_used
                outcome.incremental_seconds = result.seconds
                outcome.tainted = len(result.tainted)
                outcome.dirty = result.dirty_count
                if scratch_solution is not None:
                    matches = solution.labeling == scratch_solution.labeling
                    outcome.incremental_matches_scratch = matches
                    if not matches:
                        outcome.divergent = [
                            str(n) for n in divergent_nodes(solution, scratch_solution)
                        ]

            table = forwarding_table_from_solution(changed_network, solution, changed_ec)
            verdicts = evaluate_suite(
                specs, table, changed_network.graph.nodes, step_waypoints, path_bound
            )
            outcome.newly_failing, outcome.newly_passing = verdict_delta(
                baseline_verdicts, verdicts, surviving
            )
            if outcome.newly_failing:
                context = PropertyContext(
                    table=table, waypoints=step_waypoints, path_bound=path_bound
                )
                for spec in specs:
                    broken = outcome.newly_failing.get(spec.name)
                    if broken:
                        witness = failure_witness(spec, context, broken[0])
                        if witness is not None:
                            outcome.witnesses[spec.name] = witness

            if revalidate_on and compression is not None:
                factory = _step_bonsai(
                    state, step_index, changed_network, bonsai.use_bdds
                )
                reval = revalidate_class(
                    compression,
                    baseline_signature,
                    changed_network,
                    changed_ec,
                    verdicts,
                    specs,
                    step_waypoints,
                    path_bound,
                    recompress_bonsai=factory,
                    changed_keys=new_keys,
                    baseline_lifted=baseline_lifted,
                )
                if reval.reused and baseline_lifted is None:
                    baseline_lifted = reval.lifted
                outcome.reused = reval.reused
                outcome.recompressed = reval.recompressed
                outcome.revalidate_seconds = reval.seconds
                outcome.recompress_seconds = reval.recompress_seconds
                outcome.revalidation = reval.to_dict()
                if reval.recompressed:
                    outcome.rebuild_compress_seconds = reval.recompress_seconds
                elif rebuild_oracle:
                    # The abstraction was reused, so the incremental arm paid
                    # no compression.  Time what a full rebuild would have
                    # paid for the same answer -- a fresh per-class
                    # compression of the changed network plus the abstract
                    # re-verification on it (mirroring what the dirty path's
                    # ``recompress_seconds`` measures) -- for the report's
                    # speedup denominator.
                    rebuild_start = time.perf_counter()
                    rebuilt = factory().compress(changed_ec, build_network=True)
                    lifted_abstract_verdicts(
                        rebuilt.abstraction,
                        rebuilt.abstract_network,
                        changed_ec,
                        specs,
                        surviving,
                        step_waypoints,
                        path_bound,
                    )
                    outcome.rebuild_compress_seconds = (
                        time.perf_counter() - rebuild_start
                    )

            record.steps.append(outcome)
            prev_step = step_index
            prev_network = changed_network
            prev_solution = solution
            prev_origins = sim_origin_names
            prev_prefix = sim_prefix
            prev_keys = new_keys
            prev_index = (
                BaselineIndex.from_solution(solution) if solution is not None else None
            )

    return record


register_class_task("delta", "repro.delta.sweep:delta_class_task")


# ----------------------------------------------------------------------
# The sweep driver
# ----------------------------------------------------------------------
class DeltaSweep:
    """Run a change script over every destination equivalence class.

    Parameters mirror :class:`~repro.pipeline.core.ClassFanOut`
    (``executor`` / ``workers`` / ``batch_size`` / ``limit`` /
    ``use_bdds`` / ``artifact``), plus:

    script:
        The ordered change script: a sequence of
        :class:`~repro.delta.changeset.ChangeSet` steps applied
        cumulatively.  Every step is validated against the network state
        the previous steps produce before any work is dispatched.
    suite:
        The :class:`~repro.analysis.batch.PropertySuite` to evaluate
        (default: the full registered catalogue).
    oracle:
        Also scratch-solve every step and compare labelings (default
        True -- the incremental solver's soundness gate and the source of
        the reported speedup).
    revalidate:
        Run the per-step abstraction revalidator (default True).
    rebuild_oracle:
        When the abstraction is reused, additionally time a fresh
        per-class compression so the incremental-vs-rebuild speedup has a
        measured denominator (default True; disable for the fastest
        possible smoke runs).
    """

    def __init__(
        self,
        network: Optional[Network] = None,
        *,
        artifact: Optional[EncodedNetwork] = None,
        baseline=None,
        script: Sequence[ChangeSet] = (),
        suite: Optional[PropertySuite] = None,
        oracle: bool = True,
        revalidate: bool = True,
        rebuild_oracle: bool = True,
        executor: str = "serial",
        workers: int = 4,
        batch_size: Optional[int] = None,
        limit: Optional[int] = None,
        use_bdds: bool = True,
        scheduler: str = "stealing",
        cost_store=None,
        unit_costs: Optional[Dict[str, float]] = None,
        spill: bool = False,
        spill_path: Optional[str] = None,
    ):
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of {EXECUTORS}"
            )
        if baseline is not None:
            # A stored BaselineArtifact supplies both the one-time encoding
            # (skipping the re-encode) and the per-class labelings /
            # compressions (skipping every baseline re-solve).  A network
            # passed alongside must be the artifact's own network by
            # content, or the stored labelings would be silently wrong.
            if artifact is None:
                artifact = baseline.encoded
            if network is not None and network is not baseline.network:
                if not baseline.matches(network):
                    raise ValueError(
                        "stored baseline artifact does not match the network "
                        "(content fingerprints differ); rebuild the artifact"
                    )
        self.baseline = baseline
        if network is None and artifact is None:
            raise ValueError("either a network or an EncodedNetwork is required")
        self.network = artifact.network if artifact is not None else network
        self.script: List[ChangeSet] = list(script)
        if not self.script:
            raise ValueError("a delta sweep needs at least one change step")
        current = self.network
        for changeset in self.script:
            current = changeset.apply(current)  # raises ChangeError when invalid
        self.suite = suite or PropertySuite.default()
        self.oracle = oracle
        self.revalidate = revalidate
        self.rebuild_oracle = rebuild_oracle
        self.executor = executor
        self.workers = workers
        self.spill = spill
        self.spill_path = spill_path
        self._fanout_kwargs = dict(
            artifact=artifact,
            executor=executor,
            workers=workers,
            batch_size=batch_size,
            limit=limit,
            use_bdds=use_bdds,
            scheduler=scheduler,
            cost_store=cost_store,
            unit_costs=unit_costs,
        )

    def run(self) -> DeltaReport:
        from repro import obs

        counters_before = obs.snapshot_run()
        start = time.perf_counter()
        options = self.suite.to_options()
        options["script"] = [changeset.to_dict() for changeset in self.script]
        options["oracle"] = self.oracle
        options["revalidate"] = self.revalidate
        options["rebuild_oracle"] = self.rebuild_oracle
        if self.baseline is not None:
            options["baseline"] = self.baseline.baselines
        fanout = ClassFanOut(
            self.network,
            task="delta",
            task_options=options,
            **self._fanout_kwargs,
        )
        artifact, classes = fanout.prepare()
        report = DeltaReport(
            network_name=fanout.network.name,
            executor=self.executor,
            workers=1 if self.executor == "serial" else self.workers,
            num_classes=len(classes),
            num_steps=len(self.script),
            properties=list(self.suite.names),
            path_bound=self.suite.path_bound,
            oracle=self.oracle,
            revalidate=self.revalidate,
            rebuild_oracle=self.rebuild_oracle,
            encode_seconds=artifact.encode_seconds,
            total_seconds=0.0,
            step_names=[changeset.name for changeset in self.script],
            baseline_fingerprint=(
                self.baseline.fingerprint if self.baseline is not None else None
            ),
        )
        if self.spill:
            from repro.pipeline.stream import RecordSpill

            report.attach_spill(RecordSpill(self.spill_path))

        # Records merge into the report as they stream off the pool (in
        # class order at merge time, whatever order the scheduler
        # completed them in) instead of collecting the whole sweep first.
        def on_result(index: int, record: ClassDeltaRecord, seconds: float) -> None:
            report.merge_partial(index, record)

        fanout.execute(on_result=on_result, collect=False)
        report.total_seconds = time.perf_counter() - start
        obs.finish_run(report, counters_before)
        return report


def sweep_changes(
    network: Network,
    script: Sequence[ChangeSet],
    properties: Optional[Sequence[str]] = None,
    **kwargs,
) -> DeltaReport:
    """One-call change-impact sweep (serial by default)."""
    suite = (
        PropertySuite.default()
        if properties is None
        else PropertySuite.from_names(properties)
    )
    return DeltaSweep(network, script=script, suite=suite, **kwargs).run()
