"""The pickleable one-time encoding artifact shared by all workers.

Compressing a network involves two very different kinds of work: a
*one-time* phase (discovering the destination equivalence classes and
encoding every interface policy as a BDD) and a *per-class* phase
(specialize, refine, emit).  The per-class work is embarrassingly parallel
-- classes never interact (§5.1) -- but only if the one-time artifacts can
be handed to each worker instead of being recomputed there.

:class:`EncodedNetwork` is that artifact: the configured network, its
equivalence classes and the fully encoded policy-BDD store, all in plain
pickleable data.  Each worker unpickles its own copy, which also gives it
its own :class:`~repro.bdd.manager.BddManager` so hash-consing stays
process-local (BDD node ids are only meaningful relative to one manager).
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass
from typing import List, Optional

from repro.abstraction.bonsai import Bonsai
from repro.abstraction.ec import EquivalenceClass, routable_equivalence_classes
from repro.bdd.policy import PolicyBddEncoder
from repro.config.network import Network

#: Default bound on each pipeline manager's ``ite`` memo cache.  Generous
#: enough that realistic workloads never overflow it (the k=8 fat-tree run
#: peaks around a few thousand entries); it exists so unbounded growth over
#: thousands of destination classes cannot exhaust worker memory.
DEFAULT_BDD_CACHE_LIMIT = 1_000_000


@dataclass
class EncodedNetwork:
    """Everything a compression worker needs, encoded once."""

    network: Network
    classes: List[EquivalenceClass]
    use_bdds: bool
    encoder: Optional[PolicyBddEncoder]
    encode_seconds: float

    @classmethod
    def build(
        cls,
        network: Network,
        use_bdds: bool = True,
        encoder: Optional[PolicyBddEncoder] = None,
        bdd_cache_limit: Optional[int] = DEFAULT_BDD_CACHE_LIMIT,
    ) -> "EncodedNetwork":
        """Run the one-time phase: enumerate classes and encode the BDDs.

        A pre-built ``encoder`` (for example from an existing
        :class:`~repro.abstraction.bonsai.Bonsai`) is reused as-is.
        ``bdd_cache_limit`` bounds each worker manager's ``ite`` memo cache
        so long many-destination runs cannot grow it without bound; pass
        ``None`` for an unbounded cache.
        """
        start = time.perf_counter()
        classes = routable_equivalence_classes(network)
        if use_bdds and encoder is None:
            encoder = PolicyBddEncoder(network, bdd_cache_limit=bdd_cache_limit)
            encoder.encode_all_edges()
        if not use_bdds:
            encoder = None
        return cls(
            network=network,
            classes=classes,
            use_bdds=use_bdds,
            encoder=encoder,
            encode_seconds=time.perf_counter() - start,
        )

    def make_bonsai(self) -> Bonsai:
        """A :class:`Bonsai` wired to this artifact's pre-built encoder."""
        bonsai = Bonsai(self.network, use_bdds=self.use_bdds, encoder=self.encoder)
        bonsai.bdd_seconds = self.encode_seconds
        return bonsai

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialise the artifact for shipping to workers."""
        return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def from_bytes(cls, payload: bytes) -> "EncodedNetwork":
        artifact = pickle.loads(payload)
        if not isinstance(artifact, cls):
            raise TypeError(f"expected a pickled {cls.__name__}, got {type(artifact)!r}")
        return artifact
